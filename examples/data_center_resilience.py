#!/usr/bin/env python3
"""The F10 data-center case study (§7): k-resilience and refinement tables.

Reproduces Figure 11(b) and 11(c) on a p=4 AB FatTree: the ECMP-style
``F10_0`` scheme is 0-resilient, adding 3-hop rerouting (``F10_3``) makes
it 2-resilient, and adding 5-hop rerouting (``F10_3,5``) makes it
3-resilient.  Also prints the delivery probabilities under unbounded
failures (the left end of Figure 12(a)).

Run with::

    python examples/data_center_resilience.py [p]
"""

from __future__ import annotations

import sys

from repro.analysis.resilience import (
    format_refinement_table,
    format_resilience_table,
    refinement_table,
    resilience_table,
)
from repro.routing import f10_model
from repro.topology import ab_fat_tree

FAILURE_PROBABILITY = 1 / 4
SCHEMES = ["f10_0", "f10_3", "f10_3_5"]


def main(p: int = 4) -> None:
    topo = ab_fat_tree(p)
    dest = 1
    print(f"AB FatTree p={p}: {len(topo.switches())} switches, destination sw={dest}")
    print()

    def factory(scheme: str, k: int | None):
        return f10_model(
            topo, dest, scheme=scheme, failure_probability=FAILURE_PROBABILITY, max_failures=k
        )

    bounds = [0, 1, 2, 3, 4, None]
    print("Figure 11(b) — k-resilience (≡ teleport under at most k failures):")
    print(format_resilience_table(resilience_table(factory, SCHEMES, bounds)))
    print()

    pairs = [("f10_0", "f10_3"), ("f10_3", "f10_3_5"), ("f10_3_5", "teleport")]
    print("Figure 11(c) — refinement relationships:")
    print(format_refinement_table(refinement_table(factory, pairs, bounds)))
    print()

    print(f"Delivery probability with unbounded failures (pr = {FAILURE_PROBABILITY}):")
    for scheme in SCHEMES:
        model = factory(scheme, None)
        print(f"  {scheme:9s}: {model.delivery_probability():.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
