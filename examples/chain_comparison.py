#!/usr/bin/env python3
"""Backend comparison on the chain topology (§6, Figures 9 and 10).

Computes the probability that a packet injected at H1 reaches H2 across a
chain of diamonds whose lower links fail with probability 1/1000, using
three engines of decreasing domain-specificity:

* the native backend (forward interpreter + sparse absorbing-chain solve),
* the PRISM backend (syntactic translation + bundled mini DTMC engine),
* the Bayonet-style exact-inference baseline (whole-state-space, bounded
  unrolling).

The native backend scales furthest, the baseline runs out of steam first —
the shape of Figure 10.

Run with::

    python examples/chain_comparison.py
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.backends.prism import PrismBackend
from repro.baselines import ExactInferenceBaseline
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP
from repro.topology import chain_model

PFAIL = Fraction(1, 1000)
SIZES = [1, 2, 4, 8, 16]
BASELINE_LIMIT = 4  # the baseline becomes impractically slow beyond this


def native_probability(chain) -> float:
    out = Interpreter().run_packet(chain.policy, chain.ingress)
    return float(out.prob_of(lambda o: o is not DROP and o.get("sw") == 4 * chain.diamonds))


def main() -> None:
    print(f"{'diamonds':>9s} {'switches':>9s} {'engine':>10s} {'P[deliver]':>12s} {'time (s)':>10s}")
    for diamonds in SIZES:
        chain = chain_model(diamonds, PFAIL)
        engines = {"native": lambda c=chain: native_probability(c)}
        engines["prism"] = lambda c=chain: float(
            PrismBackend().probability(c.policy, c.ingress, c.delivered)
        )
        if diamonds <= BASELINE_LIMIT:
            engines["baseline"] = lambda c=chain: ExactInferenceBaseline(
                max_states=500_000
            ).delivery_probability(c.policy, c.ingress, c.delivered)
        for name, run in engines.items():
            start = time.perf_counter()
            probability = run()
            elapsed = time.perf_counter() - start
            print(
                f"{diamonds:>9d} {4 * diamonds:>9d} {name:>10s} "
                f"{probability:>12.6f} {elapsed:>10.3f}"
            )


if __name__ == "__main__":
    main()
