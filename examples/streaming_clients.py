#!/usr/bin/env python3
"""Concurrent asyncio clients streaming queries at one coalescing server.

Starts a :class:`repro.service.QueryServer` (the asyncio JSON-lines
front end) over a FatTree running ECMP, then demonstrates the streaming
serving loop end to end:

1. several concurrent clients each stream their own slice of the
   all-pairs delivery workload — queries landing in the same admission
   window are coalesced *across clients* into shared multi-RHS solves
   (watch the ``batched`` field of the replies);
2. a query with a 1 ms deadline inside a long admission window comes
   back as an explicit ``deadline-exceeded`` error, never a silent drop;
3. the ``stats`` control op reports the admission counters (mean
   coalesced batch size, deadline misses, queue depth);
4. the server drains gracefully: every in-flight reply is written before
   connections close.

The same server is reachable from the shell::

    python -m repro.service serve --topology fattree:4 --scheme ecmp \\
        --dest 1 --dest 2 --port 9000 --window-ms 4

Run with::

    python examples/streaming_clients.py [n_clients]
"""

from __future__ import annotations

import asyncio
import sys

from repro.network.model import build_model
from repro.routing import ecmp_policy
from repro.service import AnalysisSession, Query, QueryServer, StreamClient
from repro.topology import edge_switches, fat_tree


def wire(query: Query) -> dict:
    return {
        "kind": query.kind,
        "ingress": [query.ingress["sw"], query.ingress["pt"]],
        "dest": query.dest,
    }


async def stream_slice(port: int, name: str, share: list[Query]) -> None:
    """One client: open-loop streaming of its share of the workload."""
    conn = await StreamClient.connect("127.0.0.1", port)
    pending = [await conn.send(wire(query)) for query in share]
    replies = await asyncio.gather(*pending)
    batched = sorted({reply["batched"] for reply in replies})
    print(
        f"  {name}: {len(replies)} answers, "
        f"values {min(r['value'] for r in replies):.4f}.."
        f"{max(r['value'] for r in replies):.4f}, "
        f"coalesced into batches of {batched}"
    )
    await conn.aclose()


async def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    topo = fat_tree(4)
    dests = edge_switches(topo)[:2]

    def factory(dest: int):
        return build_model(topo, routing=ecmp_policy(topo, dest), dest=dest)

    batch = [
        Query.delivery((sw, pt), dest)
        for dest in dests
        for sw, pt in topo.ingress_locations(exclude=[dest])
    ]

    session = AnalysisSession(
        model_factory=factory, planner="destination", workers=4, pool_size=2
    )
    server = QueryServer(session, window=0.01, owns_session=True)
    await server.start()
    print(f"server listening on 127.0.0.1:{server.port} (admission window 10 ms)")

    print(f"\n{n_clients} clients streaming {len(batch)} queries concurrently:")
    await asyncio.gather(
        *[
            stream_slice(server.port, f"client {i}", batch[i::n_clients])
            for i in range(n_clients)
        ]
    )

    print("\na 1 ms deadline inside a 200 ms window fails loudly:")
    server.coalescer.window = 0.2
    conn = await StreamClient.connect("127.0.0.1", server.port)
    reply = await conn.request({**wire(batch[0]), "deadline_ms": 1})
    print(f"  -> {reply['error']['code']}: {reply['error']['message']}")

    stats = (await conn.request({"op": "stats"}))["stats"]
    coalescer = stats["coalescer"]
    print(
        f"\nserver stats: {coalescer['answered']} answered in "
        f"{coalescer['batches']} batches (mean {coalescer['batch_mean']:.1f}, "
        f"max {coalescer['batch_max']}), "
        f"{coalescer['deadline_exceeded']} deadline-exceeded"
    )
    await conn.aclose()

    await server.stop()  # drains in-flight replies, then closes the session
    print("server drained and stopped")


if __name__ == "__main__":
    asyncio.run(main())
