#!/usr/bin/env python3
"""End-to-end span tracing across the process boundary.

Opens a :class:`repro.service.AnalysisSession` with tracing enabled
(``telemetry=Telemetry(tracing=True)``) over a FatTree running ECMP,
serves the all-pairs delivery batch on a two-worker **process** pool,
then:

1. prints the collected span tree — one ``request`` root per batch,
   with ``shard -> lease -> worker:query -> phase:*`` children whose
   worker spans carry the *worker process* pids;
2. writes the trace as Chrome trace event JSON (open it in
   https://ui.perfetto.dev or ``chrome://tracing``);
3. scrapes the session's metrics registry in Prometheus text format.

Equivalent CLI::

    python -m repro.service --topology fattree:4 --scheme ecmp \\
        --all-pairs --dest 1 --pool-size 2 --pool-mode process \\
        --trace-out trace.json --metrics

Run with::

    python examples/tracing_demo.py [trace.json]
"""

from __future__ import annotations

import os
import sys

from repro.network.model import build_model
from repro.routing import ecmp_policy
from repro.service import AnalysisSession, Query, Telemetry, span_tree
from repro.topology import edge_switches, fat_tree


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    topo = fat_tree(4)

    def factory(dest: int):
        return build_model(topo, routing=ecmp_policy(topo, dest), dest=dest)

    dests = edge_switches(topo)[:3]
    batch = [
        Query.delivery((sw, pt), dest)
        for dest in dests
        for sw, pt in topo.ingress_locations(exclude=[dest])
    ]

    telemetry = Telemetry(tracing=True)  # off by default; sample= thins roots
    with AnalysisSession(
        model_factory=factory,
        planner="destination",
        workers=4,
        pool_size=2,
        pool_mode="process",
        telemetry=telemetry,
    ) as session:
        print(f"serving {len(batch)} delivery queries with tracing on ...")
        results = session.query_batch(batch)
        print(
            f"  {results.seconds:.3f}s ({results.queries_per_second:.0f} q/s, "
            f"{len(results.shards)} shards)"
        )

        # 1. Walk the span tree.  Worker spans were recorded inside the
        # worker processes, shipped back in the reply stats, and adopted
        # by the parent tracer with their parentage intact — one tree.
        records = telemetry.tracer.spans()
        tree = span_tree(records)

        def show(record: dict, depth: int) -> None:
            ms = (record["end"] - record["start"]) * 1e3
            print(f"  {'  ' * depth}{record['name']:<14} {ms:8.2f} ms  pid={record['pid']}")
            for child in tree.get(record["span"], ()):
                show(child, depth + 1)

        print(f"span tree ({len(records)} spans, parent pid {os.getpid()}):")
        for root in tree.get(None, ()):
            show(root, 1)

        # 2. Export for Perfetto / chrome://tracing.
        events = telemetry.tracer.export_chrome(out)
        print(f"wrote {events} trace events to {out}")

        # 3. Scrape the metrics registry (the streaming server exposes the
        # same text through its `metrics` op).
        scrape = session.metrics_text()
        wanted = (
            "repro_requests_total",
            "repro_queries_total",
            "repro_request_latency_seconds_count",
        )
        print("metrics scrape (excerpt):")
        for line in scrape.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")


if __name__ == "__main__":
    main()
