#!/usr/bin/env python3
"""Routing verification on a wide-area topology (Internet Topology Zoo style).

The paper's evaluation uses data-center fabrics, but the library works on
arbitrary topologies.  This example loads the bundled Abilene topology,
routes all traffic towards New York with ECMP, verifies full delivery in
the absence of failures, and exports both a Graphviz description of the
topology and the PRISM source of the model for external tooling.

Run with::

    python examples/wan_topology.py
"""

from __future__ import annotations

from repro.backends.prism import PrismBackend
from repro.core.fields import FieldTable
from repro.network.model import build_model
from repro.routing import ecmp_policy
from repro.topology import zoo
from repro.topology.dot import to_dot


def main() -> None:
    topo = zoo.load("abilene")
    city_of = {sw: topo.attributes(sw)["city"] for sw in topo.switches()}
    dest = next(sw for sw, city in city_of.items() if city == "NewYork")

    print(f"Topology: {topo.name} — {len(topo.switches())} switches, {topo.link_count()} links")
    print(f"Destination: switch {dest} ({city_of[dest]})")

    model = build_model(topo, ecmp_policy(topo, dest), dest=dest, count_hops=True)
    print(f"Ingress locations: {len(model.ingress_packets)}")
    print(f"Certain delivery without failures: {model.certainly_delivers()}")

    per_ingress = model.delivery_probabilities()
    worst = min(per_ingress.values())
    print(f"Worst-case per-ingress delivery probability: {worst:.3f}")

    from repro.analysis import expected_hop_count

    print(f"Expected hop count towards {city_of[dest]}: {expected_hop_count(model):.2f}")

    dot_source = to_dot(topo)
    prism_source = PrismBackend().source(
        model.policy, fields=FieldTable.from_policy(model.policy), delivered=model.delivered
    )
    print(f"\nGraphviz export: {len(dot_source.splitlines())} lines (topology.dot)")
    print(f"PRISM export   : {len(prism_source.splitlines())} lines (abilene.prism)")
    with open("topology.dot", "w", encoding="utf-8") as handle:
        handle.write(dot_source)
    with open("abilene.prism", "w", encoding="utf-8") as handle:
        handle.write(prism_source)


if __name__ == "__main__":
    main()
