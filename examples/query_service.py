#!/usr/bin/env python3
"""Serving query streams from a persistent analysis session.

Opens one :class:`repro.service.AnalysisSession` over a FatTree running
ECMP with link failures, then serves the all-pairs delivery batch (every
(ingress, destination) pair) three ways:

1. sharded by destination — each shard is one batched absorption solve;
2. the same batch again — answered from the canonical-FDD result cache;
3. a mixed-kind batch (delivery + expected hop count + full output
   distribution) through the ``repro.analysis`` entry points' ``session=``
   parameter.

Equivalent CLI::

    python -m repro.service --topology fattree:4 --scheme ecmp \\
        --dest 1 --dest 2 --dest 3 --all-pairs --workers 4

Run with::

    python examples/query_service.py [p]
"""

from __future__ import annotations

import sys

from repro.analysis import hop_count_cdf
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, Query
from repro.topology import edge_switches, fat_tree

FAILURE_PROBABILITY = 1 / 1000


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    topo = fat_tree(p)
    failable = downward_failable_ports(topo)

    def factory(dest: int):
        return build_model(
            topo,
            routing=ecmp_policy(topo, dest),
            dest=dest,
            failure=independent_failure_program(failable, FAILURE_PROBABILITY),
            failable=failable,
            count_hops=True,
        )

    dests = edge_switches(topo)[:3]
    batch = [
        Query.delivery((sw, pt), dest)
        for dest in dests
        for sw, pt in topo.ingress_locations(exclude=[dest])
    ]

    with AnalysisSession(model_factory=factory, planner="destination", workers=4) as session:
        print(f"serving {len(batch)} (ingress, destination) delivery queries "
              f"over {len(dests)} destinations ...")
        results = session.query_batch(batch)
        print(f"  cold: {results.seconds:.3f}s "
              f"({results.queries_per_second:.0f} q/s, {len(results.shards)} shards)")
        for report in results.shards:
            print(f"    shard [{report.label}]: {report.queries} queries "
                  f"in {report.seconds:.3f}s")

        again = session.query_batch(batch)
        print(f"  warm: {again.seconds:.4f}s "
              f"({again.cache_hits}/{len(again)} served from cache)")

        worst = min(results, key=lambda r: r.value)
        print(f"  lowest delivery probability: {worst.value:.6f} "
              f"at ingress {dict(worst.query.ingress.as_dict())} -> {worst.query.dest}")

        # Mixed kinds and the analysis session= glue share the same cache.
        model = session.model_for(dests[0])
        hops = session.query("hops", model.ingress_packets[0], dests[0])
        cdf = hop_count_cdf(model, max_hops=6, session=session)
        print(f"  expected hops (first ingress -> {dests[0]}): {hops:.3f}")
        print(f"  P[delivered within <=6 hops]: {cdf[6]:.4f}")

        stats = session.stats()
        print(f"  session stats: {stats['queries']} queries, "
              f"{stats['shards']} shards, backend={stats['backend']}")

    # Process-hosted replicas: the same session API, but every replica is
    # a worker process fed by manager-independent plan specs, so matrix
    # assembly and splu overlap across cores, not just the splu phase.
    with AnalysisSession(
        model_factory=factory,
        planner="destination",
        workers=4,
        pool_size=2,
        pool_mode="process",
    ) as session:
        results = session.query_batch(batch)
        pids = sorted({pid for report in results.shards for pid in report.workers})
        print(f"process pool: {results.seconds:.3f}s "
              f"({results.queries_per_second:.0f} q/s) across worker pids {pids}")
        for report in session.pool.worker_reports():
            print(f"    worker pid {report['pid']}: {report['plans']} plan(s) "
                  f"adopted from specs, {report['ast_compilations']} AST compiles")


if __name__ == "__main__":
    main()
