#!/usr/bin/env python3
"""Remote replica hosts: two daemons, one pool, one SIGKILL survived.

Starts two worker-host daemons on ephemeral localhost ports (the same
thing ``python -m repro.service host --bind HOST:PORT --workers N``
runs, here via :func:`repro.service.host.start_host_process` so the
example is self-contained), opens a ``pool_mode="remote"``
:class:`repro.service.AnalysisSession` spread across both, and drives
the FatTree k=4 all-pairs delivery workload:

1. a clean batch — answers agree with per-call analysis to 1e-9, every
   worker is remote (pids belong to the daemons' children), and all of
   them stay spec-fed (``ast_compilations == 0``);
2. the same batch with one daemon SIGKILLed mid-flight — shards held by
   the dead host fail over to the surviving host (over-subscribing it),
   the batch completes exactly, and the pool's stats/trace show the
   failover.

Run with::

    python examples/remote_hosts.py
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.analysis.queries import delivery_probability
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, Query, Telemetry
from repro.service.host import start_host_process
from repro.service.pool import HEALTHY
from repro.topology import edge_switches, fat_tree

FAILURE_PROBABILITY = 1 / 1000


def build_workload():
    topo = fat_tree(4)
    failable = downward_failable_ports(topo)

    def model_for(dest: int):
        return build_model(
            topo,
            routing=ecmp_policy(topo, dest),
            dest=dest,
            failure=independent_failure_program(failable, FAILURE_PROBABILITY),
            failable=failable,
        )

    models = {dest: model_for(dest) for dest in edge_switches(topo)}
    batch = [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]
    return models, batch


def open_session(models, hosts):
    return AnalysisSession(
        models=models.values(),
        pool_size=4,
        pool_mode="remote",
        hosts=hosts,
        workers=4,
        max_attempts=4,
        telemetry=Telemetry(tracing=True),
        remote_options={"heartbeat_interval": 0.1, "reconnect_backoff": 0.05},
    )


def main() -> None:
    models, batch = build_workload()
    print(f"workload: {len(batch)} delivery queries over "
          f"{len(models)} destinations (FatTree k=4 all-pairs)")

    daemon_a, addr_a = start_host_process(workers=2)
    daemon_b, addr_b = start_host_process(workers=2)
    hosts = [f"{addr_a[0]}:{addr_a[1]}", f"{addr_b[0]}:{addr_b[1]}"]
    print(f"host daemons: {hosts[0]} (pid {daemon_a.pid}), "
          f"{hosts[1]} (pid {daemon_b.pid})")
    try:
        # 1. Clean run: remote answers are exact, workers are spec-fed.
        with open_session(models, hosts) as session:
            results = session.query_batch(batch)
            worst = max(
                abs(value - delivery_probability(
                    models[query.dest], inputs=[query.ingress]))
                for query, value in zip(batch, results.values)
            )
            print(f"[1] clean batch: {len(results)} answers in "
                  f"{results.seconds:.2f}s, max |remote - per-call| = {worst:.1e}")
            for report in session.pool.worker_reports():
                print(f"    replica {report['index']} @ {report['host']}"
                      f" pid {report['pid']}: {report['queries']} queries, "
                      f"{report['ast_compilations']} AST compiles")

        # 2. SIGKILL one daemon while the batch is in flight: shards on
        #    the dead host fail over to the survivor mid-batch.
        with open_session(models, hosts) as session:
            for dest in models:
                session.warm(dest, solve=False)

            def kill_host_a_when_busy():
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    for replica in session.pool.replicas:
                        busy_on_a = (replica.busy
                                     and replica.health == HEALTHY
                                     and replica.backend.host == hosts[0])
                        if busy_on_a:
                            os.kill(daemon_a.pid, signal.SIGKILL)
                            print(f"    SIGKILLed daemon {hosts[0]} "
                                  f"(pid {daemon_a.pid}) mid-batch")
                            return
                    time.sleep(0.001)

            print(f"[2] re-running the batch, killing {hosts[0]} mid-flight ...")
            killer = threading.Thread(target=kill_host_a_when_busy)
            killer.start()
            results = session.query_batch(batch)
            killer.join()
            worst = max(
                abs(value - delivery_probability(
                    models[query.dest], inputs=[query.ingress]))
                for query, value in zip(batch, results.values)
            )
            stats = session.pool.stats()
            print(f"  batch completed anyway: {len(results)} answers, "
                  f"max error {worst:.1e}")
            print(f"  supervision: {stats['failovers']} failover(s), "
                  f"{stats['remote_reconnects']} reconnect(s), "
                  f"{stats['failures']} replica failure(s), "
                  f"placement now {stats['hosts']}")
            incident_spans = sorted({
                record["name"]
                for record in session.telemetry.tracer.spans()
                if record["name"] in ("host-failover", "remote-reconnect",
                                      "remote-local-fallback",
                                      "heartbeat-missed")
            })
            print(f"  trace timeline events: {incident_spans}")
    finally:
        for daemon in (daemon_a, daemon_b):
            if daemon.is_alive():
                daemon.terminate()
            daemon.join(timeout=5.0)


if __name__ == "__main__":
    main()
