#!/usr/bin/env python3
"""Self-healing under injected worker crashes: kill → respawn → retry.

Opens a process-pooled :class:`repro.service.AnalysisSession` over a
FatTree running ECMP with link failures, then drives one full
supervision cycle three ways:

1. an armed :class:`repro.service.FaultPlan` (the ``REPRO_FAULTS``
   environment variable) makes worker 1 SIGKILL itself mid-shard — the
   batch still completes, answers intact, and the pool's stats show the
   quarantine, the in-place respawn, and the transparent retry;
2. a raw ``os.kill`` from the outside while a batch is in flight — the
   same healing path, no cooperation from the worker required;
3. exhausted retries — ``kill@all:after=0`` crashes every replica on
   every attempt, so the caller finally sees the typed
   :class:`repro.service.PoolUnavailable` with the worker exit code
   chained onto it.

Equivalent CLI (the batch runner prints a ``supervision:`` line when a
batch survived a failure)::

    REPRO_FAULTS="kill@1:after=0" python -m repro.service \\
        --topology fattree:4 --scheme ecmp --dest 1 --dest 2 \\
        --all-pairs --pool-size 2 --pool-mode process --shard-attempts 3

Run with::

    python examples/fault_injection.py [p]
"""

from __future__ import annotations

import os
import signal
import sys
import time

from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, FaultPlan, PoolUnavailable, Query
from repro.service.faults import REPRO_FAULTS
from repro.service.pool import HEALTHY
from repro.topology import edge_switches, fat_tree

FAILURE_PROBABILITY = 1 / 1000


def build_workload(p: int):
    topo = fat_tree(p)
    failable = downward_failable_ports(topo)

    def factory(dest: int):
        return build_model(
            topo,
            routing=ecmp_policy(topo, dest),
            dest=dest,
            failure=independent_failure_program(failable, FAILURE_PROBABILITY),
            failable=failable,
        )

    dests = edge_switches(topo)[:3]
    batch = [
        Query.delivery((sw, pt), dest)
        for dest in dests
        for sw, pt in topo.ingress_locations(exclude=[dest])
    ]
    return factory, dests, batch


def open_session(factory):
    return AnalysisSession(
        model_factory=factory,
        planner="destination",
        workers=4,
        pool_size=2,
        pool_mode="process",
        max_attempts=3,
    )


def print_supervision(session) -> None:
    stats = session.stats()
    pool = stats["pool"]
    print(f"  supervision: {pool['failures']} failure(s), "
          f"{pool['restarts']} restart(s), "
          f"{stats['retried_shards']} shard(s) transparently retried, "
          f"health={pool['health']}")


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    factory, dests, batch = build_workload(p)

    # 1. A deterministic fault plan: worker 1 SIGKILLs itself on its
    #    first query request.  Workers read REPRO_FAULTS at process
    #    start, so the plan must be in the environment before the pool
    #    spawns them; a respawned worker re-reads the same plan.
    plan = FaultPlan.parse("kill@1:after=0")
    os.environ[REPRO_FAULTS] = plan.spec()
    try:
        with open_session(factory) as session:
            print(f"[1] fault plan {plan.spec()!r}: "
                  f"{len(batch)} queries over {len(dests)} destinations ...")
            results = session.query_batch(batch)
            print(f"  batch completed: {results.seconds:.3f}s, "
                  f"{len(results)} answers, zero caller-visible errors")
            print_supervision(session)
            for report in session.pool.worker_reports():
                print(f"    worker {report['index']} pid {report['pid']}: "
                      f"{report['plans']} plan(s) adopted, "
                      f"{report['ast_compilations']} AST compiles")
    finally:
        del os.environ[REPRO_FAULTS]

    # 2. An uncooperative crash: SIGKILL a busy worker from outside
    #    while the batch is in flight.  Supervision cannot tell the
    #    difference — same quarantine, same respawn, same retry.
    with open_session(factory) as session:
        for dest in dests:
            session.warm(dest, solve=False)
        print("[2] external SIGKILL against a busy worker ...")
        import threading

        def killer():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                for replica in session.pool.replicas:
                    if replica.busy and replica.health == HEALTHY:
                        os.kill(replica.backend.pid, signal.SIGKILL)
                        print(f"    killed worker {replica.index} "
                              f"(pid {replica.backend.pid}) mid-shard")
                        return
                time.sleep(0.001)

        thread = threading.Thread(target=killer)
        thread.start()
        results = session.query_batch(batch)
        thread.join()
        print(f"  batch completed anyway: {len(results)} answers")
        print_supervision(session)

    # 3. When healing cannot help: every replica dies on every attempt,
    #    so after max_attempts the caller gets the typed failure with
    #    the worker's exit code chained onto it.
    os.environ[REPRO_FAULTS] = "kill@all:after=0"
    try:
        with open_session(factory) as session:
            print("[3] fault plan 'kill@all:after=0': retries must exhaust ...")
            probe = batch[0]
            try:
                session.query(probe.kind, probe.ingress, probe.dest)
            except PoolUnavailable as exc:
                cause = exc.__cause__
                print(f"  PoolUnavailable: {exc}")
                print(f"  chained ReplicaFailure: kind={cause.kind!r}, "
                      f"exit_code={cause.exit_code}")
    finally:
        del os.environ[REPRO_FAULTS]


if __name__ == "__main__":
    main()
