#!/usr/bin/env python3
"""Path stretch analysis (§7, Figure 12(b) and 12(c)).

Augments the F10 network models with a hop counter and compares the
latency profile of the three schemes on an AB FatTree, and of ``F10_3,5``
on a standard FatTree (which only has 5-hop detours available).

Run with::

    python examples/path_stretch.py
"""

from __future__ import annotations

from repro.analysis import expected_hop_count, hop_count_cdf
from repro.routing import f10_model
from repro.topology import ab_fat_tree, fat_tree

FAILURE_PROBABILITY = 1 / 4
MAX_HOPS = 14


def build_models():
    abft, ft = ab_fat_tree(4), fat_tree(4)
    return {
        "AB FatTree, F10_0": f10_model(
            abft, 1, "f10_0", FAILURE_PROBABILITY, count_hops=True, max_hops=MAX_HOPS
        ),
        "AB FatTree, F10_3": f10_model(
            abft, 1, "f10_3", FAILURE_PROBABILITY, count_hops=True, max_hops=MAX_HOPS
        ),
        "AB FatTree, F10_3,5": f10_model(
            abft, 1, "f10_3_5", FAILURE_PROBABILITY, count_hops=True, max_hops=MAX_HOPS
        ),
        "FatTree, F10_3,5": f10_model(
            ft, 1, "f10_3_5", FAILURE_PROBABILITY, count_hops=True, max_hops=MAX_HOPS
        ),
    }


def main() -> None:
    models = build_models()

    print(f"Figure 12(b) — fraction of traffic delivered within h hops (pr = {FAILURE_PROBABILITY}):")
    hops = list(range(2, 13, 2))
    header = "hops".ljust(22) + "".join(f"{h:>8d}" for h in hops)
    print(header)
    for label, model in models.items():
        cdf = hop_count_cdf(model, max_hops=max(hops))
        row = label.ljust(22) + "".join(f"{cdf[h]:8.3f}" for h in hops)
        print(row)
    print()

    print("Figure 12(c) — expected hop count conditioned on delivery:")
    for label, model in models.items():
        print(f"  {label:22s}: {expected_hop_count(model):.3f}")


if __name__ == "__main__":
    main()
