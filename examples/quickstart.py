#!/usr/bin/env python3
"""Quickstart: the running example of §2 of the McNetKAT paper.

Builds the three-switch network of Figure 1, verifies the qualitative
claims of the overview (equivalence with teleportation, 1-resilience of
the fault-tolerant scheme), and computes the quantitative delivery
probabilities (80% for the naive scheme, 96% for the resilient one under
independent 20% link failures).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.backends import get_backend
from repro.core import pretty, sugar
from repro.core.equivalence import fdd_equivalent, output_equivalent, strictly_refines
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP
from repro.network import running_example as ex


def delivery_probability(model, packet) -> float:
    out = Interpreter(exact=True).run_packet(model, packet)
    return float(out.prob_of(lambda o: o is not DROP and o.get("sw") == 2))


def main() -> None:
    bundle = ex.build()
    teleport = sugar.locals_in([("up2", 1), ("up3", 1)], ex.teleport())

    print("Forwarding scheme p:")
    print(" ", pretty(bundle.naive))
    print("Fault-tolerant scheme p̂ (switch 1 falls back to port 3):")
    print(" ", pretty(bundle.resilient))
    print()

    print("Equivalence checks (canonical FDDs):")
    print(
        "  M̂(p, t̂, f0) ≡ teleport:",
        fdd_equivalent(bundle.models_naive["f0"], teleport, exact=True),
    )
    print(
        "  M̂(p̂, t̂, f1) ≡ teleport (1-resilience):",
        fdd_equivalent(bundle.models_resilient["f1"], teleport, exact=True),
    )
    print(
        "  M̂(p, t̂, f1) ≡ teleport:",
        output_equivalent(
            bundle.models_naive["f1"], teleport, [bundle.ingress_packet], exact=True
        ),
    )
    print()

    print("Delivery probabilities under f2 (independent 20% link failures):")
    naive = delivery_probability(bundle.models_naive["f2"], bundle.ingress_packet)
    resilient = delivery_probability(bundle.models_resilient["f2"], bundle.ingress_packet)
    print(f"  naive scheme p : {naive:.2%}")
    print(f"  resilient p̂   : {resilient:.2%}")
    print(
        "  M̂(p, t̂, f2) < M̂(p̂, t̂, f2):",
        strictly_refines(
            bundle.models_naive["f2"],
            bundle.models_resilient["f2"],
            [bundle.ingress_packet],
            exact=True,
        ),
    )
    print()

    # The batched matrix backend answers the same query from one sparse
    # factorization — the scalable path for many-ingress models.
    backend = get_backend("matrix")
    dist = backend.output_distribution(bundle.models_resilient["f2"], bundle.ingress_packet)
    via_matrix = float(dist.prob_of(lambda o: o is not DROP and o.get("sw") == 2))
    print("Same query via the batched matrix backend:")
    print(f"  resilient p̂   : {via_matrix:.2%}")
    print("  phase timings  :", {k: f"{v * 1000:.1f}ms" for k, v in backend.timings().items()})


if __name__ == "__main__":
    main()
