"""Equal-Cost Multi-Path routing (ECMP).

ECMP hashes flows onto shortest paths; the paper (and this reproduction)
approximates the hashing behaviour by selecting a port uniformly at
random among the shortest-path next hops (§6, and the ``F10_0`` scheme of
§7).  The resulting policy is failure-oblivious: if the randomly chosen
link happens to be down, the topology program drops the packet.
"""

from __future__ import annotations

from repro.core import syntax as s
from repro.routing.shortest_path import shortest_path_ports
from repro.topology.graph import Topology


def ecmp_policy(
    topology: Topology,
    dest: int,
    sw_field: str = "sw",
    pt_field: str = "pt",
) -> s.Policy:
    """The ECMP forwarding policy towards ``dest``.

    Every switch (except the destination) forwards to a uniformly random
    shortest-path port; switches with no path to the destination drop.
    The policy is a ``case`` over the switch field, the shape the paper
    introduces for parallel compilation (§6).
    """
    ports = shortest_path_ports(topology, dest)
    branches: list[tuple[s.Predicate, s.Policy]] = []
    for switch in sorted(sw for sw in topology.switches() if sw != dest):
        candidates = ports.get(switch, [])
        if not candidates:
            action: s.Policy = s.drop()
        else:
            action = s.uniform(*[s.assign(pt_field, port) for port in candidates])
        branches.append((s.test(sw_field, switch), action))
    return s.case(branches, s.drop())
