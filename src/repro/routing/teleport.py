"""The teleportation specification used as the gold standard for delivery."""

from __future__ import annotations

from repro.core import syntax as s


def teleport_policy(
    dest: int,
    sw_field: str = "sw",
    pt_field: str = "pt",
    egress_port: int = 0,
) -> s.Policy:
    """``sw <- dest ; pt <- egress_port`` — deliver the packet immediately.

    Network models compare against ``in ; teleport`` to verify full
    delivery (§2, §7); :class:`repro.network.model.NetworkModel` builds
    that comparison program automatically, so this helper is mainly useful
    for constructing custom specifications.
    """
    return s.seq(s.assign(sw_field, dest), s.assign(pt_field, egress_port))
