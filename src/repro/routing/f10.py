"""The F10 routing schemes (§7 of the paper, after Liu et al.).

Three schemes of increasing resilience are modelled, all as per-switch
``case`` policies over (AB) FatTree topologies:

* ``F10_0`` — ECMP along shortest paths, failure-oblivious;
* ``F10_3`` — like ``F10_0``, but a core switch whose downward link
  towards the destination pod has failed re-routes to an aggregation
  switch of the *opposite* subtree type (the 3-hop detour that only the
  AB FatTree wiring makes useful);
* ``F10_3,5`` — like ``F10_3``, but when no opposite-type aggregation
  switch is reachable the core falls back to a same-type aggregation
  switch and marks the packet with a detour flag; the marked packet
  descends to an edge switch, bounces back up through a different
  aggregation switch, and resumes normal routing (the 5-hop detour).

Only downward links between the core and aggregation layers are treated
as failable (``downward_failable_ports``), matching the paper's focus on
downward-path failures: upward traversals and the intra-pod downward hop
never fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.core import sugar
from repro.core import syntax as s
from repro.failure.models import failure_program
from repro.network.model import NetworkModel, build_model
from repro.routing.shortest_path import shortest_path_ports
from repro.topology.graph import Topology

#: The recognised scheme names, in increasing order of resilience.
F10_SCHEMES = ("f10_0", "f10_3", "f10_3_5")

#: Field used to mark packets on a 5-hop detour.
DETOUR_FIELD = "detour"


def downward_failable_ports(topology: Topology) -> dict[int, list[int]]:
    """Core-switch ports facing the aggregation layer (the failable links).

    The case study restricts failures to downward links out of the core
    layer; this helper returns, per core switch, the ports whose links may
    fail (all of a core's ports face aggregation switches).
    """
    failable: dict[int, list[int]] = {}
    for switch in topology.switches():
        if topology.attributes(switch).get("level") != "core":
            continue
        ports = [
            port
            for port, peer in sorted(topology.ports(switch).items())
            if topology.is_switch(peer)
            and topology.attributes(peer).get("level") == "agg"
        ]
        if ports:
            failable[switch] = ports
    return failable


@dataclass(frozen=True)
class _SwitchInfo:
    """Pre-computed structural information about one switch."""

    switch: int
    level: str
    pod: int | None
    subtree: str | None
    primary_ports: tuple[int, ...]
    agg_ports_in_pod: tuple[int, ...]
    core_ports: tuple[int, ...]
    edge_ports_in_pod: tuple[int, ...]
    opposite_type_ports: tuple[int, ...]
    same_type_ports: tuple[int, ...]


def _switch_info(topology: Topology, dest: int) -> dict[int, _SwitchInfo]:
    dest_attrs = topology.attributes(dest)
    if dest_attrs.get("level") != "edge":
        raise ValueError("the F10 schemes route towards an edge (ToR) switch")
    dest_pod = dest_attrs["pod"]
    dest_type = dest_attrs.get("subtree", "A")
    primary = shortest_path_ports(topology, dest)

    info: dict[int, _SwitchInfo] = {}
    for switch in topology.switches():
        attrs = topology.attributes(switch)
        level = attrs.get("level", "edge")
        pod = attrs.get("pod")
        subtree = attrs.get("subtree")
        agg_ports_in_pod: list[int] = []
        core_ports: list[int] = []
        edge_ports_in_pod: list[int] = []
        opposite_type: list[int] = []
        same_type: list[int] = []
        for port, peer in sorted(topology.ports(switch).items()):
            if not topology.is_switch(peer):
                continue
            peer_attrs = topology.attributes(peer)
            peer_level = peer_attrs.get("level")
            if peer_level == "agg" and peer_attrs.get("pod") == pod:
                agg_ports_in_pod.append(port)
            if peer_level == "core":
                core_ports.append(port)
            if peer_level == "edge" and peer_attrs.get("pod") == pod:
                edge_ports_in_pod.append(port)
            if level == "core" and peer_level == "agg":
                peer_pod = peer_attrs.get("pod")
                peer_type = peer_attrs.get("subtree")
                if peer_pod == dest_pod:
                    continue
                if peer_type != dest_type:
                    opposite_type.append(port)
                else:
                    same_type.append(port)
        info[switch] = _SwitchInfo(
            switch=switch,
            level=level,
            pod=pod,
            subtree=subtree,
            primary_ports=tuple(primary.get(switch, [])),
            agg_ports_in_pod=tuple(agg_ports_in_pod),
            core_ports=tuple(core_ports),
            edge_ports_in_pod=tuple(edge_ports_in_pod),
            opposite_type_ports=tuple(opposite_type),
            same_type_ports=tuple(same_type),
        )
    return info


def _uniform_ports(ports: Sequence[int], pt_field: str) -> s.Policy:
    if not ports:
        return s.drop()
    return s.uniform(*[s.assign(pt_field, port) for port in ports])


def _core_policy(
    info: _SwitchInfo,
    scheme: str,
    pt_field: str,
    up_prefix: str,
) -> s.Policy:
    """Forwarding at a core switch: primary port, then 3-hop, then 5-hop."""
    if not info.primary_ports:
        return s.drop()
    primary_port = info.primary_ports[0]
    forward_primary = s.assign(pt_field, primary_port)
    if scheme == "f10_0":
        return forward_primary

    # 3-hop rerouting: uniformly pick a live port towards an opposite-type
    # aggregation switch.  No flag is needed — the receiving aggregation
    # switch forwards upwards anyway (its normal behaviour).
    def reroute_action(port: int, mark: int | None) -> s.Policy:
        assign_port = s.assign(pt_field, port)
        if mark is None:
            return assign_port
        return s.seq(s.assign(DETOUR_FIELD, mark), assign_port)

    if scheme == "f10_3":
        fallback: s.Policy = s.drop()
    else:  # f10_3_5: fall back to a same-type aggregation switch, marked.
        fallback = sugar.uniform_among_up(
            [f"{up_prefix}{port}" for port in info.same_type_ports],
            [reroute_action(port, 2) for port in info.same_type_ports],
            fallback=s.drop(),
        )
    reroute = sugar.uniform_among_up(
        [f"{up_prefix}{port}" for port in info.opposite_type_ports],
        [reroute_action(port, None) for port in info.opposite_type_ports],
        fallback=fallback,
    )
    return s.ite(s.test(f"{up_prefix}{primary_port}", 1), forward_primary, reroute)


def _agg_policy(
    info: _SwitchInfo,
    dest_pod: int,
    scheme: str,
    pt_field: str,
) -> s.Policy:
    """Forwarding at an aggregation switch."""
    if info.pod == dest_pod:
        # Inside the destination pod the downward hop cannot fail.
        return _uniform_ports(info.primary_ports, pt_field)
    normal = _uniform_ports(info.core_ports, pt_field)
    if scheme != "f10_3_5":
        return normal
    # A packet on a 5-hop detour descends to an edge switch of this pod and
    # resumes normal routing from there.
    descend = s.seq(
        s.assign(DETOUR_FIELD, 0), _uniform_ports(info.edge_ports_in_pod, pt_field)
    )
    return s.ite(s.test(DETOUR_FIELD, 2), descend, normal)


def _edge_policy(info: _SwitchInfo, pt_field: str) -> s.Policy:
    """Forwarding at a non-destination edge switch: up to an aggregation switch."""
    return _uniform_ports(info.agg_ports_in_pod, pt_field)


def f10_policy(
    topology: Topology,
    dest: int,
    scheme: str = "f10_3_5",
    sw_field: str = "sw",
    pt_field: str = "pt",
    up_prefix: str = "up",
) -> s.Policy:
    """The forwarding policy of one of the F10 schemes towards ``dest``.

    ``scheme`` is one of ``"f10_0"``, ``"f10_3"``, ``"f10_3_5"``.
    """
    if scheme not in F10_SCHEMES:
        raise ValueError(f"unknown F10 scheme {scheme!r}; expected one of {F10_SCHEMES}")
    info = _switch_info(topology, dest)
    dest_pod = topology.attributes(dest)["pod"]
    branches: list[tuple[s.Predicate, s.Policy]] = []
    for switch in sorted(sw for sw in topology.switches() if sw != dest):
        details = info[switch]
        if details.level == "core":
            action = _core_policy(details, scheme, pt_field, up_prefix)
        elif details.level == "agg":
            action = _agg_policy(details, dest_pod, scheme, pt_field)
        else:
            action = _edge_policy(details, pt_field)
        branches.append((s.test(sw_field, switch), action))
    return s.case(branches, s.drop())


def f10_model(
    topology: Topology,
    dest: int,
    scheme: str = "f10_3_5",
    failure_probability: float | Fraction = Fraction(1, 1000),
    max_failures: int | None = None,
    ingress: Sequence[tuple[int, int]] | None = None,
    count_hops: bool = False,
    max_hops: int = 16,
) -> NetworkModel:
    """Build the complete network model for an F10 scheme (§7).

    ``max_failures`` selects the bounded failure model ``f_k`` (``None``
    means unbounded, i.e. ``k = ∞``); ``failure_probability`` is the
    per-link, per-hop failure probability ``pr``.
    """
    failable = downward_failable_ports(topology)
    failure = failure_program(failable, failure_probability, max_failures=max_failures)
    routing = f10_policy(topology, dest, scheme=scheme)
    return build_model(
        topology,
        routing=routing,
        dest=dest,
        failure=failure,
        failable=failable,
        ingress=ingress,
        count_hops=count_hops,
        max_hops=max_hops,
        # Declare the detour flag for every scheme (even those that never
        # set it) so that all three F10 models share one observable field
        # set and can be compared by refinement directly.
        extra_locals=((DETOUR_FIELD, 0),),
    )
