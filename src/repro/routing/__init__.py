"""Routing schemes: shortest paths, ECMP, the F10 family, and baselines."""

from repro.routing.shortest_path import distances_to, shortest_path_ports
from repro.routing.ecmp import ecmp_policy
from repro.routing.static_routing import static_policy
from repro.routing.teleport import teleport_policy
from repro.routing.f10 import (
    F10_SCHEMES,
    downward_failable_ports,
    f10_model,
    f10_policy,
)

__all__ = [
    "F10_SCHEMES",
    "distances_to",
    "downward_failable_ports",
    "ecmp_policy",
    "f10_model",
    "f10_policy",
    "shortest_path_ports",
    "static_policy",
    "teleport_policy",
]
