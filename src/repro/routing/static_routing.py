"""Deterministic single-path routing (a non-probabilistic baseline).

Forwarding always uses the first shortest-path port (lowest port number),
with no randomisation and no failure awareness.  Useful as a baseline in
tests and examples, and as the simplest possible routing scheme for
wide-area topologies.
"""

from __future__ import annotations

from repro.core import syntax as s
from repro.routing.shortest_path import shortest_path_ports
from repro.topology.graph import Topology


def static_policy(
    topology: Topology,
    dest: int,
    sw_field: str = "sw",
    pt_field: str = "pt",
) -> s.Policy:
    """Deterministic forwarding along the lexicographically first shortest path."""
    ports = shortest_path_ports(topology, dest)
    branches: list[tuple[s.Predicate, s.Policy]] = []
    for switch in sorted(sw for sw in topology.switches() if sw != dest):
        candidates = ports.get(switch, [])
        action: s.Policy = s.assign(pt_field, candidates[0]) if candidates else s.drop()
        branches.append((s.test(sw_field, switch), action))
    return s.case(branches, s.drop())
