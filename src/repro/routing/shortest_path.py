"""All-shortest-path next-hop computation on the switch graph."""

from __future__ import annotations

import networkx as nx

from repro.topology.graph import Topology


def distances_to(topology: Topology, dest: int) -> dict[int, int]:
    """Hop distance from every switch to ``dest`` (unreachable switches omitted)."""
    graph = topology.switch_graph()
    if dest not in graph:
        raise KeyError(f"destination switch {dest!r} is not in the topology")
    return dict(nx.single_source_shortest_path_length(graph, dest))


def shortest_path_ports(topology: Topology, dest: int) -> dict[int, list[int]]:
    """For every switch, the local ports that lie on a shortest path to ``dest``.

    A port qualifies when its peer switch is strictly closer to the
    destination.  The destination itself maps to an empty list.
    """
    distance = distances_to(topology, dest)
    result: dict[int, list[int]] = {}
    for switch in topology.switches():
        if switch not in distance:
            result[switch] = []
            continue
        ports = []
        for port, peer in sorted(topology.ports(switch).items()):
            if not topology.is_switch(peer):
                continue
            if distance.get(peer, float("inf")) == distance[switch] - 1:
                ports.append(port)
        result[switch] = ports
    return result
