"""Small-step semantics and the closed form for iteration (§4).

The small-step chain ``S[[p]]`` runs over states ``(a, b)`` where ``a`` is
the current packet set and ``b`` the output accumulator:

    ``S[[p]]_{(a,b),(a',b')} = [b' = b ∪ a] · B[[p]]_{a,a'}``          (§4)

Saturated states are collapsed onto canonical absorbing states ``(∅, b)``
by the auxiliary matrix ``U``; the absorbing chain ``SU`` then yields the
exact limit of iteration via ``A = (I - Q)^{-1} R`` (Theorem 4.7).

These functions operate on the :class:`~repro.core.semantics.bigstep.BigStepMatrix`
representation and exact rational arithmetic; they target tiny universes
and serve as the executable specification validated by the unit tests and
relied upon by the scalable single-packet compiler.
"""

from __future__ import annotations

from fractions import Fraction
from repro.core.distributions import Dist
from repro.core.packet import Packet
from repro.core.semantics.bigstep import BigStepMatrix

PacketSet = frozenset[Packet]
PairState = tuple[PacketSet, PacketSet]


def small_step_matrix(body: BigStepMatrix) -> dict[PairState, Dist[PairState]]:
    """Construct ``S[[p]]`` from ``B[[p]]`` over all pair states ``(a, b)``."""
    subsets = list(body.universe.subsets())
    kernel: dict[PairState, Dist[PairState]] = {}
    for a in subsets:
        row = body.kernel[a]
        for b in subsets:
            b_next = b | a
            kernel[(a, b)] = row.map(lambda a_next, b_next=b_next: (a_next, b_next))
    return kernel


def is_saturated(
    state: PairState, kernel: dict[PairState, Dist[PairState]]
) -> bool:
    """A state ``(a, b)`` is saturated when ``b`` can no longer grow (Def. 4.4)."""
    target = state[1]
    seen: set[PairState] = {state}
    frontier = [state]
    while frontier:
        current = frontier.pop()
        for succ in kernel[current].support():
            if succ[1] != target:
                return False
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return True


def saturation_quotient(
    kernel: dict[PairState, Dist[PairState]]
) -> dict[PairState, Dist[PairState]]:
    """Compose with the matrix ``U`` that collapses saturated states.

    ``U`` sends a saturated state ``(a, b)`` to the canonical absorbing
    state ``(∅, b)`` and is the identity elsewhere; the result ``S·U`` is
    an absorbing Markov chain (Proposition 4.6).
    """
    saturated = {state for state in kernel if is_saturated(state, kernel)}

    def u_image(state: PairState) -> PairState:
        if state in saturated:
            return (frozenset(), state[1])
        return state

    return {
        state: dist.map(u_image) for state, dist in kernel.items()
    }


def absorbing_states(kernel: dict[PairState, Dist[PairState]]) -> set[PairState]:
    """States that transition to themselves with probability one."""
    result = set()
    for state, dist in kernel.items():
        if dist(state) == 1:
            result.add(state)
    return result


def star_closed_form(body: BigStepMatrix) -> BigStepMatrix:
    """Compute ``B[[p*]]`` exactly via the absorbing chain ``SU`` (Thm 4.7).

    For every input set ``a`` the start state is ``(a, ∅)``; the
    probability that ``p*`` outputs ``b`` equals the probability that the
    chain ``SU`` is absorbed in ``(∅, b)``.
    """
    from repro.core.markov import solve_absorption_exact

    universe = body.universe
    s_kernel = small_step_matrix(body)
    su_kernel = saturation_quotient(s_kernel)
    absorbing = absorbing_states(su_kernel)
    transient = [state for state in su_kernel if state not in absorbing]

    transitions = {
        state: {succ: Fraction(prob) for succ, prob in su_kernel[state].items()}
        for state in transient
    }
    result = solve_absorption_exact(transient, sorted(absorbing, key=_state_key), transitions)

    kernel: dict[PacketSet, Dist[PacketSet]] = {}
    for a in universe.subsets():
        start = (a, frozenset())
        if start in absorbing:
            # Already absorbed: the output accumulator is a itself only if
            # the start state is of the canonical form (∅, b).
            kernel[a] = Dist.point(start[1] | start[0])
            continue
        row = result[start]
        out = {b: prob for (empty, b), prob in row.items()}
        lost = result.lost_mass.get(start, Fraction(0))
        if lost != 0:
            raise ArithmeticError(
                "SU is not absorbing from a start state; this contradicts Prop. 4.6"
            )
        kernel[a] = Dist(out)
    return BigStepMatrix(universe, kernel)


def star_approximation(body: BigStepMatrix, steps: int) -> BigStepMatrix:
    """The ``n``-step approximation of ``p*`` via the small-step chain.

    Computes ``Σ_{a'} S^{steps+1}_{(a,∅),(a',b)}`` (Proposition 4.2), i.e.
    the distribution over accumulators after ``steps + 1`` small steps.
    Useful in tests to observe convergence towards the closed form.
    """
    s_kernel = small_step_matrix(body)
    universe = body.universe
    kernel: dict[PacketSet, Dist[PacketSet]] = {}
    for a in universe.subsets():
        dist: Dist[PairState] = Dist.point((a, frozenset()))
        for _ in range(steps + 1):
            dist = dist.bind(lambda state: s_kernel[state])
        kernel[a] = dist.map(lambda state: state[1])
    return BigStepMatrix(universe, kernel)


def _state_key(state: PairState) -> tuple:
    a, b = state
    return (sorted(p.items() for p in a), sorted(p.items() for p in b))
