"""Reference denotational semantics ``[[p]] : 2^Pk -> D(2^Pk)``.

This is the history-free packet-set semantics of Appendix A (Figure 13):
programs map a set of input packets to a discrete distribution over sets
of output packets, using the probability (Giry) monad structure provided
by :class:`repro.core.distributions.Dist`.

The semantics is exponential in the size of the packet universe and is
used only as an executable specification on tiny universes for soundness
tests (Theorem 3.1 and friends).
"""

from __future__ import annotations

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.packet import Packet, PacketUniverse

PacketSet = frozenset[Packet]


class StarDivergenceError(RuntimeError):
    """Raised when iteration of ``p*`` fails to converge within the bound."""


def eval_policy(
    policy: s.Policy,
    packets: PacketSet,
    max_star_iterations: int = 200,
    tolerance: float = 1e-12,
) -> Dist[PacketSet]:
    """Evaluate ``policy`` on the input packet set ``packets``.

    Iteration (``p*`` and ``while``) is evaluated by unrolling until the
    output distribution stops changing; exact (Fraction) fixpoints are
    detected exactly, float fixpoints up to ``tolerance``.
    """
    return _eval(policy, frozenset(packets), max_star_iterations, tolerance)


def _eval(
    policy: s.Policy,
    packets: PacketSet,
    max_iter: int,
    tol: float,
) -> Dist[PacketSet]:
    if isinstance(policy, s.FalseP):
        return Dist.point(frozenset())
    if isinstance(policy, s.TrueP):
        return Dist.point(packets)
    if isinstance(policy, s.Test):
        kept = frozenset(p for p in packets if p.test(policy.field, policy.value))
        return Dist.point(kept)
    if isinstance(policy, s.Not):
        inner = _eval(policy.pred, packets, max_iter, tol)
        return inner.map(lambda b: packets - b)
    if isinstance(policy, s.And):
        return _eval(s.Seq((policy.left, policy.right)), packets, max_iter, tol)
    if isinstance(policy, s.Or):
        return _eval(s.Union((policy.left, policy.right)), packets, max_iter, tol)
    if isinstance(policy, s.Assign):
        updated = frozenset(p.set(policy.field, policy.value) for p in packets)
        return Dist.point(updated)
    if isinstance(policy, s.Seq):
        dist: Dist[PacketSet] = Dist.point(packets)
        for part in policy.parts:
            dist = dist.bind(lambda a, part=part: _eval(part, a, max_iter, tol))
        return dist
    if isinstance(policy, s.Union):
        dist = Dist.point(frozenset())
        for part in policy.parts:
            branch = _eval(part, packets, max_iter, tol)
            dist = dist.product(branch).map(lambda pair: pair[0] | pair[1])
        return dist
    if isinstance(policy, s.Choice):
        return Dist.convex(
            (
                _eval(branch, packets, max_iter, tol),
                prob,
            )
            for branch, prob in policy.branches
        )
    if isinstance(policy, s.IfThenElse):
        expanded = s.union(
            s.seq(policy.guard, policy.then),
            s.seq(s.neg(policy.guard), policy.otherwise),
        )
        return _eval(expanded, packets, max_iter, tol)
    if isinstance(policy, s.Case):
        return _eval(s.case_to_ite(policy), packets, max_iter, tol)
    if isinstance(policy, s.WhileDo):
        expanded = s.seq(s.star(s.seq(policy.guard, policy.body)), s.neg(policy.guard))
        return _eval(expanded, packets, max_iter, tol)
    if isinstance(policy, s.Star):
        return _eval_star(policy.body, packets, max_iter, tol)
    raise TypeError(f"unknown policy node {type(policy)!r}")


def _unroll(body: s.Policy, n: int) -> s.Policy:
    """The n-th unrolling ``p^(n)``: ``p^(0) = skip``, ``p^(n+1) = skip & p ; p^(n)``."""
    result: s.Policy = s.skip()
    for _ in range(n):
        result = s.Union((s.skip(), s.Seq((body, result))))
    return result


def _eval_star(
    body: s.Policy,
    packets: PacketSet,
    max_iter: int,
    tol: float,
) -> Dist[PacketSet]:
    """Evaluate ``p*`` as the limit of its finite unrollings (Lemma A.2).

    ``p^(0) = skip`` and ``p^(n+1) = skip & p ; p^(n)``; the sequence of
    output distributions is monotone in the CPO of Appendix A.1 and we
    stop as soon as two consecutive approximations agree (exactly for
    Fraction-valued distributions, up to ``tol`` otherwise).
    """
    previous: Dist[PacketSet] | None = None
    for n in range(max_iter):
        unrolled = _unroll(body, n)
        current = _eval(unrolled, packets, max_iter, tol)
        if previous is not None and current.close_to(previous, tolerance=tol):
            return current
        previous = current
    raise StarDivergenceError(
        "p* did not converge within the iteration bound; "
        "use the closed-form small-step semantics instead"
    )


def eval_on_universe(
    policy: s.Policy,
    universe: PacketUniverse,
    max_star_iterations: int = 200,
) -> dict[PacketSet, Dist[PacketSet]]:
    """Tabulate ``[[policy]]`` on every input set of a (tiny) universe."""
    table: dict[PacketSet, Dist[PacketSet]] = {}
    for subset in universe.subsets():
        table[subset] = eval_policy(policy, subset, max_star_iterations)
    return table
