"""Reference semantics for ProbNetKAT (Appendix A, §3 and §4 of the paper).

These modules are *executable specifications* used to validate the
scalable backends on small packet universes:

* :mod:`repro.core.semantics.denotational` — the packet-set semantics
  ``[[p]] : 2^Pk -> D(2^Pk)``;
* :mod:`repro.core.semantics.bigstep` — the stochastic-matrix semantics
  ``B[[p]]`` of §3 (Figure 3);
* :mod:`repro.core.semantics.smallstep` — the small-step chain ``S[[p]]``
  and the closed form for iteration of §4.
"""

from repro.core.semantics.bigstep import BigStepMatrix, big_step_matrix
from repro.core.semantics.denotational import eval_policy
from repro.core.semantics.smallstep import (
    small_step_matrix,
    star_closed_form,
)

__all__ = [
    "eval_policy",
    "BigStepMatrix",
    "big_step_matrix",
    "small_step_matrix",
    "star_closed_form",
]
