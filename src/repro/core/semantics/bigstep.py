"""Big-step stochastic-matrix semantics ``B[[p]]`` (§3, Figure 3).

Programs are interpreted as right-stochastic matrices indexed by packet
*sets* of a finite universe.  The matrices are represented as Markov
kernels ``2^Pk -> Dist(2^Pk)`` keyed by frozensets of packets, which is
convenient for the tiny universes these reference semantics target.

The constructors follow Figure 3 literally (independent of the
denotational semantics in :mod:`repro.core.semantics.denotational`), so
comparing the two implementations constitutes an executable check of
Theorem 3.1.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.packet import Packet, PacketUniverse

PacketSet = frozenset[Packet]


class BigStepMatrix:
    """A right-stochastic matrix over ``2^Pk`` represented as a kernel."""

    def __init__(self, universe: PacketUniverse, kernel: dict[PacketSet, Dist[PacketSet]]):
        self.universe = universe
        self.kernel = kernel

    # -- access ---------------------------------------------------------------
    def entry(self, a: PacketSet, b: PacketSet) -> Fraction | float:
        """The probability ``B[[p]]_{a,b}`` of producing ``b`` on input ``a``."""
        return self.kernel[frozenset(a)](frozenset(b))

    def row(self, a: PacketSet) -> Dist[PacketSet]:
        """The output distribution for input set ``a``."""
        return self.kernel[frozenset(a)]

    def inputs(self) -> Iterable[PacketSet]:
        return self.kernel.keys()

    def is_stochastic(self, tolerance: float = 1e-9) -> bool:
        """Check every row sums to one."""
        for dist in self.kernel.values():
            total = dist.total_mass()
            if isinstance(total, Fraction):
                if total != 1:
                    return False
            elif abs(float(total) - 1.0) > tolerance:
                return False
        return True

    # -- composition -----------------------------------------------------------
    def matmul(self, other: "BigStepMatrix") -> "BigStepMatrix":
        """Matrix product ``self · other`` (sequential composition)."""
        kernel = {
            a: dist.bind(lambda c: other.kernel[c]) for a, dist in self.kernel.items()
        }
        return BigStepMatrix(self.universe, kernel)

    def convex(self, weight: Fraction, other: "BigStepMatrix") -> "BigStepMatrix":
        """Convex combination ``weight · self + (1 - weight) · other``."""
        kernel = {
            a: Dist.convex(
                [(self.kernel[a], weight), (other.kernel[a], 1 - weight)]
            )
            for a in self.kernel
        }
        return BigStepMatrix(self.universe, kernel)

    def close_to(self, other: "BigStepMatrix", tolerance: float = 1e-9) -> bool:
        """Entry-wise comparison up to ``tolerance``."""
        if set(self.kernel) != set(other.kernel):
            return False
        return all(
            self.kernel[a].close_to(other.kernel[a], tolerance) for a in self.kernel
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BigStepMatrix):
            return NotImplemented
        return set(self.kernel) == set(other.kernel) and all(
            self.kernel[a] == other.kernel[a] for a in self.kernel
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(frozenset(self.kernel))


def _pointwise(universe: PacketUniverse, func: Callable[[PacketSet], PacketSet]) -> BigStepMatrix:
    """Deterministic matrix: each input set maps to ``func(a)`` with probability 1."""
    kernel = {
        a: Dist.point(frozenset(func(a))) for a in universe.subsets()
    }
    return BigStepMatrix(universe, kernel)


def big_step_matrix(
    policy: s.Policy,
    universe: PacketUniverse,
    max_star_iterations: int = 200,
    star_method: str = "iterate",
) -> BigStepMatrix:
    """Construct ``B[[policy]]`` over the given packet universe.

    ``star_method`` selects how ``p*`` (and ``while``) matrices are
    computed: ``"iterate"`` unrolls until the matrix stops changing;
    ``"closed_form"`` uses the small-step absorbing-chain closed form of
    §4 (Theorem 4.7) via :mod:`repro.core.semantics.smallstep`.
    """
    return _build(policy, universe, max_star_iterations, star_method)


def _build(
    policy: s.Policy,
    universe: PacketUniverse,
    max_iter: int,
    star_method: str,
) -> BigStepMatrix:
    if isinstance(policy, s.FalseP):
        return _pointwise(universe, lambda a: frozenset())
    if isinstance(policy, s.TrueP):
        return _pointwise(universe, lambda a: a)
    if isinstance(policy, s.Test):
        return _pointwise(
            universe,
            lambda a: frozenset(p for p in a if p.test(policy.field, policy.value)),
        )
    if isinstance(policy, s.Assign):
        return _pointwise(
            universe,
            lambda a: frozenset(p.set(policy.field, policy.value) for p in a),
        )
    if isinstance(policy, s.Not):
        inner = _build(policy.pred, universe, max_iter, star_method)
        kernel = {
            a: inner.kernel[a].map(lambda b, a=a: a - b) for a in inner.kernel
        }
        return BigStepMatrix(universe, kernel)
    if isinstance(policy, s.And):
        return _build(s.Seq((policy.left, policy.right)), universe, max_iter, star_method)
    if isinstance(policy, s.Or):
        return _build(s.Union((policy.left, policy.right)), universe, max_iter, star_method)
    if isinstance(policy, s.Seq):
        result = _pointwise(universe, lambda a: a)
        for part in policy.parts:
            result = result.matmul(_build(part, universe, max_iter, star_method))
        return result
    if isinstance(policy, s.Union):
        matrices = [_build(part, universe, max_iter, star_method) for part in policy.parts]
        kernel: dict[PacketSet, Dist[PacketSet]] = {}
        for a in universe.subsets():
            dist: Dist[PacketSet] = Dist.point(frozenset())
            for matrix in matrices:
                dist = dist.product(matrix.kernel[a]).map(lambda pair: pair[0] | pair[1])
            kernel[a] = dist
        return BigStepMatrix(universe, kernel)
    if isinstance(policy, s.Choice):
        kernel = {}
        branch_matrices = [
            (_build(branch, universe, max_iter, star_method), prob)
            for branch, prob in policy.branches
        ]
        for a in universe.subsets():
            kernel[a] = Dist.convex(
                (matrix.kernel[a], prob) for matrix, prob in branch_matrices
            )
        return BigStepMatrix(universe, kernel)
    if isinstance(policy, s.IfThenElse):
        expanded = s.union(
            s.seq(policy.guard, policy.then),
            s.seq(s.neg(policy.guard), policy.otherwise),
        )
        return _build(expanded, universe, max_iter, star_method)
    if isinstance(policy, s.Case):
        return _build(s.case_to_ite(policy), universe, max_iter, star_method)
    if isinstance(policy, s.WhileDo):
        expanded = s.seq(s.star(s.seq(policy.guard, policy.body)), s.neg(policy.guard))
        return _build(expanded, universe, max_iter, star_method)
    if isinstance(policy, s.Star):
        body = _build(policy.body, universe, max_iter, star_method)
        if star_method == "closed_form":
            from repro.core.semantics.smallstep import star_closed_form
            return star_closed_form(body)
        return _star_by_iteration(body, max_iter)
    raise TypeError(f"unknown policy node {type(policy)!r}")


def _star_by_iteration(body: BigStepMatrix, max_iter: int) -> BigStepMatrix:
    """``B[[p*]]`` as the limit of the unrollings ``B[[p^(n)]]``."""
    universe = body.universe
    identity = _pointwise(universe, lambda a: a)
    previous: BigStepMatrix | None = None
    current = identity  # p^(0) = skip
    for _ in range(max_iter):
        # p^(n+1) = skip & p ; p^(n):  union of identity with body·current.
        composed = body.matmul(current)
        kernel = {
            a: Dist.point(a).product(composed.kernel[a]).map(lambda pair: pair[0] | pair[1])
            for a in universe.subsets()
        }
        next_matrix = BigStepMatrix(universe, kernel)
        if previous is not None and next_matrix.close_to(current, tolerance=1e-12):
            return next_matrix
        previous, current = current, next_matrix
    raise RuntimeError(
        "B[[p*]] did not converge by iteration; use star_method='closed_form'"
    )
