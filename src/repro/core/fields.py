"""Field declarations and finite value domains.

ProbNetKAT packets map fields to bounded integers (§3).  While the
library infers per-field value sets from programs automatically (dynamic
domain reduction), explicit :class:`FieldSpec` declarations are useful for
the PRISM backend (which needs variable bounds) and for documenting the
fields of a network model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core import syntax as s
from repro.core.packet import PacketUniverse


@dataclass(frozen=True)
class FieldSpec:
    """A single field declaration: name and inclusive value range."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"field {self.name!r} has empty range [{self.low}, {self.high}]")

    @property
    def size(self) -> int:
        return self.high - self.low + 1

    def values(self) -> range:
        return range(self.low, self.high + 1)

    def __contains__(self, value: int) -> bool:
        return self.low <= value <= self.high


@dataclass
class FieldTable:
    """A collection of field declarations keyed by name."""

    specs: dict[str, FieldSpec] = field(default_factory=dict)

    def declare(self, name: str, low: int, high: int) -> FieldSpec:
        """Declare (or widen) a field with the given inclusive range."""
        existing = self.specs.get(name)
        if existing is not None:
            low = min(low, existing.low)
            high = max(high, existing.high)
        spec = FieldSpec(name, low, high)
        self.specs[name] = spec
        return spec

    def __getitem__(self, name: str) -> FieldSpec:
        return self.specs[name]

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def __iter__(self) -> Iterator[FieldSpec]:
        return iter(self.specs.values())

    def __len__(self) -> int:
        return len(self.specs)

    def names(self) -> tuple[str, ...]:
        return tuple(self.specs)

    def universe(self) -> PacketUniverse:
        """The packet universe induced by these declarations."""
        return PacketUniverse({spec.name: spec.values() for spec in self})

    def as_domains(self) -> dict[str, tuple[int, ...]]:
        return {spec.name: tuple(spec.values()) for spec in self}

    @staticmethod
    def from_policy(policy: s.Policy, minimum: int = 0) -> "FieldTable":
        """Infer field ranges from the values a policy mentions.

        The range of each field spans from ``minimum`` (default 0) to the
        largest mentioned value, which is what the PRISM backend needs to
        bound its variables.
        """
        table = FieldTable()
        for name, values in policy.field_values().items():
            table.declare(name, min(minimum, min(values)), max(values))
        return table

    @staticmethod
    def from_domains(domains: Mapping[str, Iterable[int]]) -> "FieldTable":
        table = FieldTable()
        for name, values in domains.items():
            values = list(values)
            table.declare(name, min(values), max(values))
        return table
