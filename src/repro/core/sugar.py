"""Derived ProbNetKAT forms (syntactic sugar).

The paper desugars several convenient constructs into the core language;
this module provides the same derived forms:

* ``var f <- n in p`` — mutable local variables (§3), desugared to
  ``f <- n ; p ; f <- 0``;
* saturating counters (used for hop counts and bounded failure budgets in
  the case study of §7);
* "uniform among available ports" policies, the building block of ECMP
  and the F10 rerouting schemes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core import syntax as s


def local(field: str, value: int, body: s.Policy, reset: int = 0) -> s.Policy:
    """``var field <- value in body``.

    The field is initialised to ``value``, scoped over ``body`` and erased
    (reset to ``reset``) afterwards so that it does not leak into the
    observable output, exactly as in the paper's desugaring.
    """
    return s.seq(s.assign(field, value), body, s.assign(field, reset))


def locals_in(bindings: Sequence[tuple[str, int]], body: s.Policy, reset: int = 0) -> s.Policy:
    """Nested local declarations ``var f1 <- n1 in var f2 <- n2 in ... body``."""
    result = body
    for field, value in reversed(list(bindings)):
        result = local(field, value, result, reset=reset)
    return result


def increment(field: str, maximum: int) -> s.Policy:
    """A saturating increment of ``field``: values above ``maximum`` stick.

    Encoded as a cascade of conditionals (the language has no arithmetic),
    e.g. for ``maximum = 2``::

        if field=0 then field<-1 else if field=1 then field<-2 else skip
    """
    if maximum < 0:
        raise ValueError("maximum must be non-negative")
    branches: list[tuple[s.Predicate, s.Policy]] = []
    for value in range(maximum):
        branches.append((s.test(field, value), s.assign(field, value + 1)))
    return s.case(branches, default=s.skip())


def set_all(fields: Iterable[str], value: int) -> s.Policy:
    """Assign the same ``value`` to every field in ``fields``."""
    return s.seq(*[s.assign(field, value) for field in fields])


def uniform_among_up(
    up_fields: Sequence[str],
    actions: Sequence[s.Policy],
    fallback: s.Policy,
    up_value: int = 1,
) -> s.Policy:
    """Choose uniformly among the actions whose guard field is "up".

    This is the pattern used by ECMP and the F10 schemes: given candidate
    ports with health flags ``up_fields[i]``, forward uniformly at random
    among the candidates whose flag equals ``up_value``; when none is up,
    run ``fallback`` (drop, or a lower-priority rerouting group).

    The encoding enumerates the ``2^n`` combinations of flag values as a
    cascade of conditionals, mirroring how such policies are written in
    ProbNetKAT (no native "uniform over a dynamic set" construct exists).
    """
    if len(up_fields) != len(actions):
        raise ValueError("up_fields and actions must have the same length")
    n = len(up_fields)
    if n == 0:
        return fallback
    if n > 8:
        raise ValueError("uniform_among_up supports at most 8 candidates")

    def build(index: int, live: tuple[int, ...]) -> s.Policy:
        if index == n:
            if not live:
                return fallback
            return s.uniform(*[actions[i] for i in live])
        up_case = build(index + 1, live + (index,))
        down_case = build(index + 1, live)
        if up_case == down_case:
            return up_case
        return s.ite(s.test(up_fields[index], up_value), up_case, down_case)

    return build(0, ())


def first_up(
    up_fields: Sequence[str],
    actions: Sequence[s.Policy],
    fallback: s.Policy,
    up_value: int = 1,
) -> s.Policy:
    """Deterministically pick the first action whose flag is up.

    Used for deterministic (non-ECMP) routing baselines.
    """
    if len(up_fields) != len(actions):
        raise ValueError("up_fields and actions must have the same length")
    result = fallback
    for field, action in reversed(list(zip(up_fields, actions))):
        result = s.ite(s.test(field, up_value), action, result)
    return result
