"""A small recursive-descent parser for ProbNetKAT concrete syntax.

The accepted syntax matches the output of :func:`repro.core.pretty.pretty`
and is close to the paper's notation::

    if sw=1 then pt<-2 else if sw=2 then pt<-2 else drop
    (pt<-2 @ 1/2 (+) pt<-3 @ 1/2)
    while ~(sw=2 ; pt=2) do (t ; p)        -- with t, p inlined
    var up2 <- 1 in ...                     -- local variables

Operator precedence (loosest to tightest): probabilistic choice ``(+)``,
union ``&``/``|``, sequence ``;``, negation ``~`` / star ``*``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction

from repro.core import sugar
from repro.core import syntax as s


class ParseError(ValueError):
    """Raised when the input is not a well-formed ProbNetKAT program."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<arrow><-)
  | (?P<choiceop>\(\+\))
  | (?P<num>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<sym>[()=;&|~*@/])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "if", "then", "else", "while", "do", "case", "skip", "drop", "var", "in",
}


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value in _KEYWORDS:
            kind = value
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: str, text: str | None = None) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        if not self._check(kind, text):
            token = self._peek()
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} but found {token.text!r} at offset {token.pos}"
            )
        return self._advance()

    # -- grammar ---------------------------------------------------------------
    def parse(self) -> s.Policy:
        policy = self.policy()
        self._expect("eof")
        return policy

    def policy(self) -> s.Policy:
        if self._check("if"):
            return self._ite()
        if self._check("while"):
            return self._while()
        if self._check("case"):
            return self._case()
        if self._check("var"):
            return self._var()
        return self._choice()

    def _ite(self) -> s.Policy:
        self._expect("if")
        guard = self.policy()
        self._expect("then")
        then = self.policy()
        self._expect("else")
        otherwise = self.policy()
        return s.ite(_as_predicate(guard), then, otherwise)

    def _while(self) -> s.Policy:
        self._expect("while")
        guard = self.policy()
        self._expect("do")
        body = self.policy()
        return s.while_do(_as_predicate(guard), body)

    def _case(self) -> s.Policy:
        branches: list[tuple[s.Predicate, s.Policy]] = []
        while self._check("case"):
            self._advance()
            guard = self.policy()
            self._expect("then")
            branch = self.policy()
            branches.append((_as_predicate(guard), branch))
            self._expect("else")
        default = self.policy()
        return s.case(branches, default)

    def _var(self) -> s.Policy:
        self._expect("var")
        name = self._expect("ident").text
        self._expect("arrow")
        value = int(self._expect("num").text)
        self._expect("in")
        body = self.policy()
        return sugar.local(name, value, body)

    def _choice(self) -> s.Policy:
        first = self._union()
        if not self._check("sym", "@"):
            return first
        branches: list[tuple[s.Policy, Fraction]] = []
        self._expect("sym", "@")
        branches.append((first, self._prob()))
        while self._match("choiceop"):
            branch = self._union()
            self._expect("sym", "@")
            branches.append((branch, self._prob()))
        return s.choice(*branches)

    def _prob(self) -> Fraction:
        token = self._expect("num")
        if "." in token.text:
            value = Fraction(token.text)
        else:
            value = Fraction(int(token.text))
        if self._match("sym", "/"):
            denom = int(self._expect("num").text)
            value = value / denom
        return value

    def _union(self) -> s.Policy:
        parts = [self._seq()]
        while self._check("sym", "&") or self._check("sym", "|"):
            self._advance()
            parts.append(self._seq())
        return s.union(*parts) if len(parts) > 1 else parts[0]

    def _seq(self) -> s.Policy:
        parts = [self._unary()]
        while self._match("sym", ";"):
            parts.append(self._unary())
        if len(parts) == 1:
            return parts[0]
        if all(isinstance(part, s.Predicate) for part in parts):
            return s.conj(*parts)  # type: ignore[arg-type]
        return s.seq(*parts)

    def _unary(self) -> s.Policy:
        if self._match("sym", "~"):
            inner = self._unary()
            return s.neg(_as_predicate(inner))
        atom = self._atom()
        while self._match("sym", "*"):
            atom = s.star(atom)
        return atom

    def _atom(self) -> s.Policy:
        if self._match("sym", "("):
            inner = self.policy()
            self._expect("sym", ")")
            return inner
        if self._match("skip"):
            return s.skip()
        if self._match("drop"):
            return s.drop()
        if self._check("ident"):
            name = self._advance().text
            if self._match("sym", "="):
                value = int(self._expect("num").text)
                return s.test(name, value)
            if self._match("arrow"):
                value = int(self._expect("num").text)
                return s.assign(name, value)
            raise ParseError(f"expected '=' or '<-' after field {name!r}")
        token = self._peek()
        raise ParseError(f"unexpected token {token.text!r} at offset {token.pos}")


def _as_predicate(policy: s.Policy) -> s.Predicate:
    if not isinstance(policy, s.Predicate):
        raise ParseError(f"expected a predicate, got policy {policy!r}")
    return policy


def parse(text: str) -> s.Policy:
    """Parse a ProbNetKAT program from its concrete syntax."""
    return _Parser(_tokenize(text)).parse()


def parse_predicate(text: str) -> s.Predicate:
    """Parse a predicate; raises :class:`ParseError` on policy input."""
    return _as_predicate(parse(text))
