"""Packets, the drop outcome, and finite packet universes.

A ProbNetKAT packet is a record mapping a finite set of fields to bounded
integers (paper, §3).  Packets are immutable and hashable so they can be
used as Markov-chain states and dictionary keys.

The special :data:`DROP` sentinel represents the absence of a packet (the
empty set ``∅`` of the paper, restricted to the single-packet state space
used by the implementation, §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


class _DropType:
    """Singleton type for the "no packet" outcome.

    The single-packet state space used by McNetKAT's backends is
    ``Pk + ∅``; :data:`DROP` plays the role of ``∅``.
    """

    _instance: "_DropType | None" = None

    def __new__(cls) -> "_DropType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "DROP"

    def __reduce__(self):
        # Keep the singleton property across pickling (multiprocessing).
        return (_DropType, ())

    def __hash__(self) -> int:
        return hash("repro.DROP")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DropType)


DROP = _DropType()
"""The unique "packet was dropped" outcome."""


@dataclass(frozen=True, eq=False)
class Packet:
    """An immutable packet: a mapping from field names to integer values.

    Parameters
    ----------
    fields:
        Mapping from field name to value.  The mapping is stored as a
        sorted tuple of pairs so packets hash and compare structurally.

    Examples
    --------
    >>> pk = Packet({"sw": 1, "pt": 2})
    >>> pk["sw"]
    1
    >>> pk.set("pt", 3)["pt"]
    3
    >>> pk.set("pt", 3) == Packet({"sw": 1, "pt": 3})
    True
    """

    _items: tuple[tuple[str, int], ...]

    def __init__(self, fields: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        if isinstance(fields, Mapping):
            items = tuple(sorted(fields.items()))
        else:
            items = tuple(sorted(fields))
        for name, value in items:
            if not isinstance(name, str):
                raise TypeError(f"field names must be strings, got {name!r}")
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(
                    f"field values must be integers, got {name}={value!r}"
                )
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash(items))

    @classmethod
    def _from_sorted_items(cls, items: tuple[tuple[str, int], ...]) -> "Packet":
        """Packets are Markov-chain states: building and hashing them is a
        hot path, so this constructor skips validation and sorting for
        items already in canonical (sorted, type-checked) form — e.g.
        those derived from an existing packet's items.
        """
        packet = object.__new__(cls)
        object.__setattr__(packet, "_items", items)
        object.__setattr__(packet, "_hash", hash(items))
        return packet

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self._items == other._items

    # -- mapping-like access -------------------------------------------------
    def __getitem__(self, field: str) -> int:
        for name, value in self._items:
            if name == field:
                return value
        raise KeyError(field)

    def get(self, field: str, default: int | None = None) -> int | None:
        """Return the value of ``field`` or ``default`` when absent."""
        for name, value in self._items:
            if name == field:
                return value
        return default

    def __contains__(self, field: str) -> bool:
        return any(name == field for name, _ in self._items)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def fields(self) -> tuple[str, ...]:
        """The field names present in this packet, sorted."""
        return tuple(name for name, _ in self._items)

    def items(self) -> tuple[tuple[str, int], ...]:
        """Sorted ``(field, value)`` pairs."""
        return self._items

    def as_dict(self) -> dict[str, int]:
        """A plain mutable dictionary copy of the packet's fields."""
        return dict(self._items)

    # -- functional updates ---------------------------------------------------
    def set(self, field: str, value: int) -> "Packet":
        """Return ``π[field := value]`` — a copy with one field updated."""
        updated = dict(self._items)
        updated[field] = value
        return Packet(updated)

    def set_many(self, updates: Mapping[str, int]) -> "Packet":
        """Return a copy with several fields updated at once."""
        if not updates:
            return self
        merged = dict(self._items)
        merged.update(updates)
        return Packet(merged)

    def test(self, field: str, value: int) -> bool:
        """Return ``True`` when the packet's ``field`` equals ``value``.

        Missing fields never match, mirroring the semantics of testing a
        field a program has not declared.
        """
        return self.get(field) == value

    def restrict(self, fields: Iterable[str]) -> "Packet":
        """Project the packet onto the given fields (missing ones ignored)."""
        wanted = set(fields)
        return Packet({k: v for k, v in self._items if k in wanted})

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._items)
        return f"Packet({inner})"


class PacketUniverse:
    """The finite set of all packets over declared field domains.

    The reference (set-based) semantics of Appendix A quantifies over the
    full packet universe ``Pk``; this helper enumerates it for the small
    universes used in soundness tests.

    Parameters
    ----------
    domains:
        Mapping from field name to an iterable of admissible values.

    Examples
    --------
    >>> u = PacketUniverse({"f": [0, 1]})
    >>> sorted(p["f"] for p in u)
    [0, 1]
    >>> u.size
    2
    """

    def __init__(self, domains: Mapping[str, Iterable[int]]):
        self._domains: dict[str, tuple[int, ...]] = {
            name: tuple(sorted(set(values))) for name, values in sorted(domains.items())
        }
        for name, values in self._domains.items():
            if not values:
                raise ValueError(f"field {name!r} has an empty domain")
        self._packets: tuple[Packet, ...] = tuple(self._enumerate())

    def _enumerate(self) -> Iterator[Packet]:
        names = list(self._domains)
        def rec(idx: int, acc: dict[str, int]) -> Iterator[Packet]:
            if idx == len(names):
                yield Packet(dict(acc))
                return
            name = names[idx]
            for value in self._domains[name]:
                acc[name] = value
                yield from rec(idx + 1, acc)
            acc.pop(name, None)
        yield from rec(0, {})

    @property
    def domains(self) -> dict[str, tuple[int, ...]]:
        """The per-field value domains (sorted tuples)."""
        return dict(self._domains)

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self._domains)

    @property
    def packets(self) -> tuple[Packet, ...]:
        """All packets of the universe, in a fixed deterministic order."""
        return self._packets

    @property
    def size(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __len__(self) -> int:
        return len(self._packets)

    def __contains__(self, packet: Packet) -> bool:
        if not isinstance(packet, Packet):
            return False
        if set(packet.fields) != set(self._domains):
            return False
        return all(packet[f] in self._domains[f] for f in self._domains)

    def subsets(self) -> Iterator[frozenset[Packet]]:
        """Enumerate all subsets of the universe (``2^Pk``).

        Only feasible for very small universes; used by the reference
        big-step and small-step semantics.
        """
        packets = self._packets
        n = len(packets)
        if n > 16:
            raise ValueError(
                f"refusing to enumerate 2^{n} packet sets; universe too large"
            )
        for mask in range(1 << n):
            yield frozenset(packets[i] for i in range(n) if mask & (1 << i))

    def __repr__(self) -> str:
        doms = ", ".join(f"{k}:{list(v)}" for k, v in self._domains.items())
        return f"PacketUniverse({doms})"
