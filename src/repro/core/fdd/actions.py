"""Actions stored in the leaves of probabilistic FDDs.

A leaf of a probabilistic FDD holds a distribution over *actions*, where
an action is either a finite set of field modifications or the special
``drop`` action (§5.1).  Applying an action to a packet yields the output
packet (or the drop outcome).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.packet import DROP, Packet, _DropType


@dataclass(frozen=True)
class Action:
    """A set of field modifications ``{f1 := n1, ..., fk := nk}``.

    The empty action is the identity (the packet passes unchanged).
    Actions compose left-to-right: ``a.then(b)`` first applies ``a`` and
    then ``b``, so ``b``'s modifications win on conflicting fields.
    """

    mods: tuple[tuple[str, int], ...]

    def __init__(self, mods: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items = mods.items() if isinstance(mods, Mapping) else mods
        object.__setattr__(self, "mods", tuple(sorted(items)))

    # -- queries -------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        return dict(self.mods)

    def get(self, field: str) -> int | None:
        """The value this action writes to ``field`` (None when untouched)."""
        for name, value in self.mods:
            if name == field:
                return value
        return None

    def modifies(self, field: str) -> bool:
        return any(name == field for name, _ in self.mods)

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.mods)

    def is_identity(self) -> bool:
        return not self.mods

    # -- operations -----------------------------------------------------------
    def apply(self, packet: Packet) -> Packet:
        """Apply the modifications to a packet."""
        if not self.mods:
            return packet
        mods = dict(self.mods)
        # Fast path for modifications confined to the packet's own fields
        # (the common case on the loop-exploration hot path): the stored
        # items are already sorted, so rebuild them in one pass without
        # re-sorting or re-validating.
        items = tuple(
            (name, mods.pop(name)) if name in mods else (name, value)
            for name, value in packet.items()
        )
        if not mods:
            return Packet._from_sorted_items(items)
        return packet.set_many(dict(self.mods))

    def then(self, other: "Action | _DropType") -> "Action | _DropType":
        """Compose with a later action (or drop)."""
        if other is DROP or isinstance(other, _DropType):
            return DROP
        merged = dict(self.mods)
        merged.update(other.mods)
        return Action(merged)

    def __repr__(self) -> str:
        if not self.mods:
            return "Action(id)"
        inner = ", ".join(f"{f}:={v}" for f, v in self.mods)
        return f"Action({inner})"


IDENTITY = Action()
"""The identity action (no modifications)."""


ActionOrDrop = Action | _DropType
"""Type alias for what an FDD leaf distribution ranges over."""


def apply_action(action: ActionOrDrop, packet: Packet):
    """Apply an action or drop to a packet, returning ``Packet`` or ``DROP``."""
    if action is DROP or isinstance(action, _DropType):
        return DROP
    return action.apply(packet)
