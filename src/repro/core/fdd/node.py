"""Hash-consed probabilistic Forwarding Decision Diagrams (FDDs).

A probabilistic FDD (§5.1) is a rooted DAG whose interior nodes test a
packet field against a value (with true/false branches) and whose leaves
hold distributions over actions (field modifications or drop).  An FDD
denotes a function ``Pk -> Dist(Pk + ∅)``, i.e. a stochastic matrix over
the single-packet state space.

Nodes are interned ("hash-consed") by an :class:`FddManager` so that
structurally identical diagrams are represented by the same object; this
enables constant-time equality checks and memoised algorithms, exactly as
in BDD packages.  Diagrams respect a total order on tests
``(field, value)`` (field rank first, then value) and never contain
redundant tests, which keeps them canonical.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.distributions import Dist
from repro.core.fdd.actions import DROP, IDENTITY, Action, ActionOrDrop
from repro.core.packet import Packet, _DropType


class FddNode:
    """Base class of FDD nodes.  Instances are created via :class:`FddManager`."""

    __slots__ = ("uid", "manager")

    uid: int
    manager: "FddManager"

    def is_leaf(self) -> bool:
        return isinstance(self, Leaf)

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class Leaf(FddNode):
    """A leaf holding a distribution over actions."""

    __slots__ = ("dist",)

    def __init__(self, manager: "FddManager", uid: int, dist: Dist[ActionOrDrop]):
        self.manager = manager
        self.uid = uid
        self.dist = dist

    def __repr__(self) -> str:
        return f"Leaf#{self.uid}({self.dist})"


class Branch(FddNode):
    """An interior node testing ``field = value``."""

    __slots__ = ("field", "value", "hi", "lo")

    def __init__(
        self,
        manager: "FddManager",
        uid: int,
        field: str,
        value: int,
        hi: FddNode,
        lo: FddNode,
    ):
        self.manager = manager
        self.uid = uid
        self.field = field
        self.value = value
        self.hi = hi
        self.lo = lo

    @property
    def test(self) -> tuple[str, int]:
        return (self.field, self.value)

    def __repr__(self) -> str:
        return f"Branch#{self.uid}({self.field}={self.value})"


class FddManager:
    """Interning tables, test ordering, and operation caches for FDDs.

    Parameters
    ----------
    field_order:
        Optional explicit ordering of field names (earlier fields are
        tested closer to the root).  Fields not listed are appended in
        first-use order.  All FDDs participating in one analysis must be
        built by the same manager.
    """

    def __init__(self, field_order: Sequence[str] = ()):  # noqa: D401
        self._field_rank: dict[str, int] = {}
        for field in field_order:
            self._field_rank.setdefault(field, len(self._field_rank))
        self._leaves: dict[tuple, Leaf] = {}
        self._branches: dict[tuple, Branch] = {}
        self._next_uid = 0
        self.cache: dict[tuple, FddNode] = {}
        # Per-operation memo tables (restrict/ite/sequence/...), keyed by
        # plain tuples without an operation tag: smaller keys, no repeated
        # hashing of operation-name strings on the hot compile paths.
        self._op_caches: dict[str, dict[tuple, FddNode]] = {}
        # Frequently used constants.
        self.true_leaf = self.leaf(Dist.point(IDENTITY))
        self.false_leaf = self.leaf(Dist.point(DROP))

    # -- field ordering --------------------------------------------------------
    def field_rank(self, field: str) -> int:
        """Rank of a field in the test order (registering it if new)."""
        if field not in self._field_rank:
            self._field_rank[field] = len(self._field_rank)
        return self._field_rank[field]

    def register_fields(self, fields: Iterable[str]) -> None:
        """Register fields in a deterministic order before building FDDs."""
        for field in fields:
            self.field_rank(field)

    def test_key(self, field: str, value: int) -> tuple[int, int]:
        """Sort key of the test ``field = value``."""
        return (self.field_rank(field), value)

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self._field_rank)

    # -- interning constructors --------------------------------------------------
    def _fresh_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def leaf(self, dist: Dist[ActionOrDrop]) -> Leaf:
        """Intern a leaf with the given action distribution."""
        key = _dist_key(dist)
        node = self._leaves.get(key)
        if node is None:
            node = Leaf(self, self._fresh_uid(), dist)
            self._leaves[key] = node
        return node

    def branch(self, field: str, value: int, hi: FddNode, lo: FddNode) -> FddNode:
        """Intern a branch, collapsing it when both children coincide."""
        if hi is lo:
            return hi
        key = (field, value, hi.uid, lo.uid)
        node = self._branches.get(key)
        if node is None:
            node = Branch(self, self._fresh_uid(), field, value, hi, lo)
            self._branches[key] = node
        return node

    # -- primitive FDDs ----------------------------------------------------------
    def const_true(self) -> Leaf:
        """FDD of ``skip`` (identity with probability 1)."""
        return self.true_leaf

    def const_false(self) -> Leaf:
        """FDD of ``drop``."""
        return self.false_leaf

    def from_test(self, field: str, value: int) -> FddNode:
        """FDD of the predicate ``field = value``."""
        self.field_rank(field)
        return self.branch(field, value, self.true_leaf, self.false_leaf)

    def from_assign(self, field: str, value: int) -> FddNode:
        """FDD of the assignment ``field <- value``."""
        self.field_rank(field)
        return self.leaf(Dist.point(Action({field: value})))

    def from_action_dist(self, dist: Dist[ActionOrDrop]) -> Leaf:
        """FDD with a single leaf carrying an arbitrary action distribution."""
        for action in dist.support():
            if isinstance(action, Action):
                for f in action.fields:
                    self.field_rank(f)
        return self.leaf(dist)

    # -- statistics ---------------------------------------------------------------
    def node_count(self) -> int:
        """Total number of distinct nodes interned so far."""
        return len(self._leaves) + len(self._branches)

    def op_cache(self, name: str) -> dict[tuple, FddNode]:
        """The dedicated memo table of one FDD operation (created on demand)."""
        cache = self._op_caches.get(name)
        if cache is None:
            cache = self._op_caches[name] = {}
        return cache

    def clear_caches(self) -> None:
        """Drop memoisation caches (interning tables are kept)."""
        self.cache.clear()
        for cache in self._op_caches.values():
            cache.clear()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _action_key(action: ActionOrDrop) -> tuple:
    if isinstance(action, _DropType):
        return ("drop",)
    return ("act", action.mods)


def _dist_key(dist: Dist[ActionOrDrop]) -> tuple:
    return tuple(sorted(
        ((_action_key(action), _num_key(prob)) for action, prob in dist.items()),
    ))


def _num_key(value) -> tuple[int, int]:
    """A numeric interning key independent of the representation.

    ``Fraction(1, 2)``, ``0.5``, and ``Fraction(2, 4)`` all key to
    ``(1, 2)``: :class:`Dist` treats equal masses as equal regardless of
    their arithmetic type, so leaves holding them must hash-cons to the
    same node or mixed exact/float pipelines would duplicate diagrams.
    Floats key by their exact binary ratio, so only genuinely equal
    numbers collide.
    """
    return value.as_integer_ratio()


# ---------------------------------------------------------------------------
# traversal / evaluation utilities (read-only, manager-independent)
# ---------------------------------------------------------------------------

def evaluate(node: FddNode, packet: Packet) -> Dist[ActionOrDrop]:
    """Evaluate an FDD on a concrete packet, returning its action distribution.

    A test on a field the packet does not carry is treated as false,
    matching the interpreter and the reference semantics.
    """
    current = node
    while isinstance(current, Branch):
        if packet.get(current.field) == current.value:
            current = current.hi
        else:
            current = current.lo
    assert isinstance(current, Leaf)
    return current.dist


def output_distribution(node: FddNode, packet: Packet) -> Dist[Packet | _DropType]:
    """The distribution over output packets (or drop) for a concrete input."""
    from repro.core.fdd.actions import apply_action

    return evaluate(node, packet).map(lambda action: apply_action(action, packet))


def iter_nodes(node: FddNode) -> Iterator[FddNode]:
    """Iterate over the distinct nodes reachable from ``node`` (pre-order)."""
    seen: set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.uid in seen:
            continue
        seen.add(current.uid)
        yield current
        if isinstance(current, Branch):
            stack.append(current.lo)
            stack.append(current.hi)


def node_size(node: FddNode) -> int:
    """Number of distinct nodes in the diagram rooted at ``node``."""
    return sum(1 for _ in iter_nodes(node))


def leaves(node: FddNode) -> Iterator[Leaf]:
    """Iterate over the distinct leaves of the diagram."""
    for current in iter_nodes(node):
        if isinstance(current, Leaf):
            yield current


# ---------------------------------------------------------------------------
# manager-independent serialization (multiprocessing)
# ---------------------------------------------------------------------------

def node_to_spec(node: FddNode) -> tuple:
    """Serialize an FDD into a manager-independent, picklable spec.

    The spec lists the distinct nodes of the diagram children-first:
    leaves as ``("leaf", ((mods | None, prob), ...))`` (``None`` encodes
    the drop action) and branches as ``("branch", field, value, hi_index,
    lo_index)`` referring to earlier positions.  The root is the last
    entry.  Rebuild with :func:`node_from_spec`; probabilities keep their
    exact type (:class:`~fractions.Fraction` or ``float``).
    """
    order: list[FddNode] = []
    done: set[int] = set()
    stack: list[tuple[FddNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current.uid in done:
            continue
        if expanded or isinstance(current, Leaf):
            done.add(current.uid)
            order.append(current)
            continue
        assert isinstance(current, Branch)
        stack.append((current, True))
        stack.append((current.hi, False))
        stack.append((current.lo, False))
    index = {n.uid: i for i, n in enumerate(order)}
    entries: list[tuple] = []
    for current in order:
        if isinstance(current, Leaf):
            entries.append((
                "leaf",
                tuple(
                    (None if isinstance(action, _DropType) else action.mods, prob)
                    for action, prob in current.dist.items()
                ),
            ))
        else:
            assert isinstance(current, Branch)
            entries.append((
                "branch",
                current.field,
                current.value,
                index[current.hi.uid],
                index[current.lo.uid],
            ))
    return tuple(entries)


def node_from_spec(manager: FddManager, spec: tuple) -> FddNode:
    """Rebuild an FDD from a :func:`node_to_spec` spec into ``manager``.

    The caller is responsible for registering the originating manager's
    field order first (see :meth:`FddManager.register_fields`) when the
    rebuilt diagram will be composed with others.
    """
    from repro.core.fdd.actions import Action
    from repro.core.packet import DROP

    nodes: list[FddNode] = []
    for entry in spec:
        if entry[0] == "leaf":
            weights = {
                (DROP if mods is None else Action(mods)): prob
                for mods, prob in entry[1]
            }
            nodes.append(manager.from_action_dist(Dist(weights, check=False)))
        else:
            _, field, value, hi, lo = entry
            manager.field_rank(field)
            nodes.append(manager.branch(field, value, nodes[hi], nodes[lo]))
    if not nodes:
        raise ValueError("empty FDD spec")
    return nodes[-1]


def mentioned_values(node: FddNode) -> dict[str, set[int]]:
    """Per-field values mentioned in tests or modifications.

    This is the information used by dynamic domain reduction (§5.1) to
    pick the symbolic packets when converting an FDD to a sparse matrix.
    """
    values: dict[str, set[int]] = {}
    for current in iter_nodes(node):
        if isinstance(current, Branch):
            values.setdefault(current.field, set()).add(current.value)
        else:
            assert isinstance(current, Leaf)
            for action in current.dist.support():
                if isinstance(action, Action):
                    for field, value in action.mods:
                        values.setdefault(field, set()).add(value)
    return values
