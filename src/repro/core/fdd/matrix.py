"""Conversion between probabilistic FDDs and sparse stochastic matrices.

This module implements *dynamic domain reduction* (§5.1, Figure 5): rather
than indexing matrices by the full packet space, packets are grouped into
symbolic equivalence classes determined by the values each field is
actually tested against or assigned to.  A :class:`SymbolicPacket` assigns
every relevant field either one of those mentioned values or the wildcard
``*`` ("any other value"), exactly like the symbolic packets
``pt=1, pt=2, pt=3, pt=*`` of the paper's example.

The main entry points are:

* :func:`fdd_to_matrix` — convert an FDD into a sparse stochastic matrix
  over symbolic packet classes (plus the drop outcome);
* :func:`matrix_to_fdd` — convert class-indexed transition rows back into
  a canonical FDD (used after solving loops);
* :func:`enumerate_classes` — enumerate the symbolic domain.

Assembly is *vectorized*: BFS exploration and matrix assembly share one
pass, each class's transition row is materialized once as array segments
(:func:`class_row`, backed by
:func:`repro.core.fdd.evaluator.materialize_class_row`), and the COO
triplets accumulate in geometrically grown flat numpy buffers so the
sparse matrix is built with a single ``csr_matrix((data, (rows, cols)))``
call — no Python-level ``list.append`` per nonzero.  The pre-vectorization
per-row path survives as :func:`fdd_to_matrix_reference` for equivalence
tests and the ``assembly_speedup`` benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterable, Mapping, MutableMapping, Sequence

import numpy as np
from scipy.sparse import csr_matrix

from repro.core.distributions import Dist
from repro.core.fdd.actions import Action, ActionOrDrop
from repro.core.fdd.evaluator import ClassRow, ClassRowCache, materialize_class_row
from repro.core.fdd.node import Branch, FddManager, FddNode, Leaf, mentioned_values
from repro.core.packet import DROP, Packet, _DropType

#: Marker for "any value not explicitly mentioned by the program".
WILDCARD: None = None


@dataclass(frozen=True)
class SymbolicPacket:
    """An equivalence class of packets under dynamic domain reduction.

    Each relevant field is mapped either to a concrete mentioned value or
    to the wildcard ``None`` meaning "some value not mentioned anywhere in
    the program".  Two concrete packets in the same class are treated
    identically by the program the domain was derived from.
    """

    values: tuple[tuple[str, int | None], ...]

    def __init__(self, values: Mapping[str, int | None] | Iterable[tuple[str, int | None]]):
        items = values.items() if isinstance(values, Mapping) else values
        object.__setattr__(self, "values", tuple(sorted(items)))

    def value(self, field: str) -> int | None:
        """The class value of ``field`` (``None`` for wildcard or unknown field)."""
        for name, value in self.values:
            if name == field:
                return value
        return None

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.values)

    def as_dict(self) -> dict[str, int | None]:
        return dict(self.values)

    def satisfies_test(self, field: str, value: int) -> bool:
        """Whether packets in this class satisfy the test ``field = value``.

        The test value is always one of the mentioned values, so the
        wildcard class never satisfies it.
        """
        return self.value(field) == value

    def apply_action(self, action: ActionOrDrop) -> "SymbolicPacket | _DropType":
        """Apply an FDD action to the class (drop propagates)."""
        if isinstance(action, _DropType):
            return DROP
        if action.is_identity():
            return self
        mods = dict(action.mods)
        # Fast path for actions confined to the class's own fields: the
        # stored pairs are already sorted, so rebuild them in one pass
        # (this is the hot loop of reachable-class exploration).
        items = tuple(
            (field, mods.pop(field)) if field in mods else (field, value)
            for field, value in self.values
        )
        if not mods:
            updated_cls = object.__new__(SymbolicPacket)
            object.__setattr__(updated_cls, "values", items)
            return updated_cls
        merged = dict(items)
        merged.update(mods)
        return SymbolicPacket(merged)

    def representative(self, fresh: Mapping[str, int]) -> Packet:
        """A concrete packet in this class.

        ``fresh`` supplies, per field, a value *not* mentioned by the
        program, used to instantiate wildcards.
        """
        concrete: dict[str, int] = {}
        for field, value in self.values:
            concrete[field] = fresh[field] if value is None else value
        return Packet(concrete)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{f}={'*' if v is None else v}" for f, v in self.values
        )
        return f"SymbolicPacket({inner})"


class DomainTooLargeError(RuntimeError):
    """Raised when the symbolic domain exceeds the configured limit."""


def fresh_values(domains: Mapping[str, Iterable[int]]) -> dict[str, int]:
    """For each field, a value not contained in its mentioned-value set."""
    result: dict[str, int] = {}
    for field, values in domains.items():
        mentioned = set(values)
        candidate = 0
        while candidate in mentioned:
            candidate += 1
        result[field] = candidate
    return result


def domain_size(domains: Mapping[str, Iterable[int]]) -> int:
    """Number of symbolic classes in the product domain (wildcards included)."""
    size = 1
    for values in domains.values():
        size *= len(set(values)) + 1
    return size


def enumerate_classes(
    domains: Mapping[str, Iterable[int]],
    limit: int | None = None,
) -> list[SymbolicPacket]:
    """Enumerate the symbolic packet classes of the product domain.

    Each field ranges over its mentioned values plus the wildcard.  The
    enumeration is deterministic (fields sorted, values sorted, wildcard
    last).  Raises :class:`DomainTooLargeError` when the product exceeds
    ``limit``.
    """
    normalised: dict[str, list[int | None]] = {
        field: sorted(set(values)) + [WILDCARD]
        for field, values in sorted(domains.items())
    }
    if limit is not None:
        total = 1
        for choices in normalised.values():
            total *= len(choices)
        if total > limit:
            raise DomainTooLargeError(
                f"symbolic domain has {total} classes, exceeding the limit {limit}; "
                "use the forward interpreter for large programs"
            )
    fields = list(normalised)
    # Iterative product enumeration: wide domains (thousands of mentioned
    # values per field) must not be bounded by the Python recursion limit.
    return [
        SymbolicPacket(zip(fields, combo))
        for combo in itertools.product(*normalised.values())
    ]


def classify(packet: Packet, domains: Mapping[str, Iterable[int]]) -> SymbolicPacket:
    """The symbolic class of a concrete packet under the given domain."""
    values: dict[str, int | None] = {}
    for field, mentioned in domains.items():
        value = packet.get(field)
        values[field] = value if value in mentioned else WILDCARD
    return SymbolicPacket(values)


def evaluate_class(node: FddNode, cls: SymbolicPacket) -> Dist[ActionOrDrop]:
    """Evaluate an FDD on a symbolic class, returning its action distribution.

    Well-defined because the class fixes the outcome of every test the FDD
    can perform (the domain includes every mentioned value).
    """
    current = node
    while isinstance(current, Branch):
        if cls.satisfies_test(current.field, current.value):
            current = current.hi
        else:
            current = current.lo
    assert isinstance(current, Leaf)
    return current.dist


def class_transition(node: FddNode, cls: SymbolicPacket) -> Dist["SymbolicPacket | _DropType"]:
    """The distribution over successor classes induced by an FDD.

    Returns a :class:`Dist` (exact weights preserved) — the API exact-mode
    callers rely on.  The float matrix-assembly hot path uses
    :func:`class_row` instead.
    """
    return evaluate_class(node, cls).map(cls.apply_action)


def class_row(
    node: FddNode,
    cls: SymbolicPacket,
    leaf_cache: ClassRowCache | None = None,
) -> ClassRow:
    """The float64 transition row of ``cls`` as array segments.

    The vectorized counterpart of :func:`class_transition`: one FDD walk,
    the leaf's weights converted to a cached float64 array, and the
    class's action applications materialized as parallel outcome/prob
    arrays with duplicates merged.  ``leaf_cache`` (keyed by leaf uid, so
    it must not be shared across FDD managers) amortises the weight
    conversion across the classes of one assembly pass.
    """
    return materialize_class_row(node, cls, {} if leaf_cache is None else leaf_cache)


@dataclass
class TransitionMatrix:
    """A sparse right-stochastic matrix over symbolic packet classes.

    The last column/row index (``len(classes)``) represents the drop
    outcome, which is absorbing by convention.  ``assembled_rows`` counts
    the class rows materialized while building this matrix (rows served
    from a caller's ``row_cache`` count too — they still had to be written
    into the triplet buffers).
    """

    classes: list[SymbolicPacket]
    matrix: csr_matrix
    domains: dict[str, tuple[int, ...]]
    assembled_rows: int = field(default=0, compare=False)

    @property
    def drop_index(self) -> int:
        return len(self.classes)

    def index_of(self, cls: SymbolicPacket) -> int:
        return self._index[cls]

    def __post_init__(self) -> None:
        self._index = {cls: i for i, cls in enumerate(self.classes)}

    def row(self, cls: SymbolicPacket) -> Dist["SymbolicPacket | _DropType"]:
        """The output distribution of one class as a :class:`Dist`."""
        i = self._index[cls]
        start, end = self.matrix.indptr[i], self.matrix.indptr[i + 1]
        weights: dict[SymbolicPacket | _DropType, float] = {}
        for idx in range(start, end):
            j = self.matrix.indices[idx]
            prob = float(self.matrix.data[idx])
            outcome = DROP if j == self.drop_index else self.classes[j]
            weights[outcome] = weights.get(outcome, 0.0) + prob
        return Dist(weights, check=False)

    def is_stochastic(self, tolerance: float = 1e-9) -> bool:
        sums = self.matrix.sum(axis=1)
        return bool(abs(sums - 1.0).max() <= tolerance)


def _mentioned_values_memo(node: FddNode) -> dict[str, set[int]]:
    """Per-manager memo of :func:`mentioned_values` (FDDs are immutable).

    Incremental exploration re-assembles the same body FDD on every
    growth step; the diagram walk collecting mentioned values is pure, so
    it runs once per distinct node per manager.  The memo lives on the
    manager (uids are only unique within one), and dies with it.
    """
    manager = node.manager
    memo = getattr(manager, "_mentioned_memo", None)
    if memo is None:
        memo = manager._mentioned_memo = {}
    cached = memo.get(node.uid)
    if cached is None:
        cached = memo[node.uid] = mentioned_values(node)
    return cached


def matrix_domains(
    node: FddNode,
    extra_values: Mapping[str, Iterable[int]] | None = None,
) -> dict[str, set[int]]:
    """The symbolic field domains induced by an FDD (plus extra values)."""
    domains: dict[str, set[int]] = {
        f: set(v) for f, v in _mentioned_values_memo(node).items()
    }
    for field, values in (extra_values or {}).items():
        domains.setdefault(field, set()).update(values)
    return domains


def project_class(cls: SymbolicPacket, domains: Mapping[str, Iterable[int]]) -> SymbolicPacket:
    """Re-express a class over (possibly different) domains.

    Fields absent from ``domains`` are dropped; values not mentioned by
    the target domain collapse to the wildcard.  Used to align seed
    classes produced against one FDD's domain with another's.
    """
    lookup = dict(cls.values).get
    values: dict[str, int | None] = {}
    for field, mentioned in domains.items():
        value = lookup(field)
        values[field] = value if value in mentioned else WILDCARD
    return SymbolicPacket(values)


class _TripletBuffer:
    """Flat COO triplet buffers grown geometrically (the assembly arena).

    Row/column indices and probabilities are written by slice assignment
    into preallocated int64/float64 arrays; the arrays double when full.
    One :func:`csr_matrix` call consumes them at the end of assembly.
    """

    __slots__ = ("rows", "cols", "data", "size")

    def __init__(self, capacity: int = 1024):
        self.rows = np.empty(capacity, dtype=np.int64)
        self.cols = np.empty(capacity, dtype=np.int64)
        self.data = np.empty(capacity, dtype=np.float64)
        self.size = 0

    def _reserve(self, extra: int) -> None:
        need = self.size + extra
        capacity = self.rows.shape[0]
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        for name in ("rows", "cols", "data"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    def append_row(self, row_index: int, cols: np.ndarray, probs: np.ndarray) -> None:
        count = len(cols)
        self._reserve(count)
        start, end = self.size, self.size + count
        self.rows[start:end] = row_index
        self.cols[start:end] = cols
        self.data[start:end] = probs
        self.size = end

    def append_one(self, row_index: int, col_index: int, value: float) -> None:
        self._reserve(1)
        self.rows[self.size] = row_index
        self.cols[self.size] = col_index
        self.data[self.size] = value
        self.size += 1


#: Column sentinel for the drop outcome while its index (``len(classes)``)
#: is still unknown during seeded BFS; patched in bulk before the final
#: ``csr_matrix`` call.
_DROP_SENTINEL = -1


def fdd_to_matrix(
    node: FddNode,
    extra_values: Mapping[str, Iterable[int]] | None = None,
    limit: int | None = 1_000_000,
    seeds: Iterable[SymbolicPacket] | None = None,
    absorbing_when: Callable[[SymbolicPacket], bool] | None = None,
    row_cache: MutableMapping[SymbolicPacket, ClassRow] | None = None,
) -> TransitionMatrix:
    """Convert an FDD to a sparse stochastic matrix over symbolic classes.

    ``extra_values`` adds field values to the domain beyond those
    mentioned by the FDD itself (used when several FDDs must share one
    state space, e.g. a loop guard and its body).

    With ``seeds`` the full product domain is *not* enumerated; instead
    only the classes reachable from the seed classes are explored
    breadth-first (dynamic domain reduction restricted to the reachable
    subspace, the trick that lets network-scale models stay small).
    ``absorbing_when`` marks classes that should not be expanded further
    — they receive a self-loop row, turning the matrix into the absorbing
    chain of a loop whose exit condition is the predicate.  ``row_cache``
    memoises class transition rows (:class:`ClassRow` values) across
    repeated incremental calls.

    Exploration and assembly share one pass: each class's row is
    materialized exactly once (via :func:`class_row`), written straight
    into flat triplet buffers, and its previously unseen outcomes join
    the BFS frontier.  Drop outcomes are recorded under a ``-1`` sentinel
    column and patched to the final drop index in one vectorized store.
    """
    domains = matrix_domains(node, extra_values)
    leaf_cache: ClassRowCache = {}
    buffer = _TripletBuffer()

    def row_of(cls: SymbolicPacket) -> ClassRow:
        row = row_cache.get(cls) if row_cache is not None else None
        if row is None:
            row = class_row(node, cls, leaf_cache)
            if row_cache is not None:
                row_cache[cls] = row
        elif not isinstance(row, ClassRow):
            # A caller-populated cache may hold legacy Dist rows.
            row = ClassRow.from_items(row.items())
            row_cache[cls] = row
        return row

    if seeds is None:
        classes = enumerate_classes(domains, limit=limit)
        index = {cls: i for i, cls in enumerate(classes)}
        for i, cls in enumerate(classes):
            if absorbing_when is not None and absorbing_when(cls):
                buffer.append_one(i, i, 1.0)
                continue
            row = row_of(cls)
            outcomes = row.outcomes
            cols = np.empty(len(outcomes), dtype=np.int64)
            for k, outcome in enumerate(outcomes):
                cols[k] = (
                    _DROP_SENTINEL
                    if isinstance(outcome, _DropType)
                    else index[outcome]
                )
            buffer.append_row(i, cols, row.probs)
    else:
        frontier = [project_class(cls, domains) for cls in seeds]
        index = {}
        classes = []
        for cls in frontier:
            if cls not in index:
                index[cls] = len(classes)
                classes.append(cls)
        cursor = 0
        while cursor < len(classes):
            cls = classes[cursor]
            i = cursor
            cursor += 1
            if absorbing_when is not None and absorbing_when(cls):
                buffer.append_one(i, i, 1.0)
                continue
            row = row_of(cls)
            outcomes = row.outcomes
            cols = np.empty(len(outcomes), dtype=np.int64)
            for k, outcome in enumerate(outcomes):
                if isinstance(outcome, _DropType):
                    cols[k] = _DROP_SENTINEL
                    continue
                j = index.get(outcome)
                if j is None:
                    j = index[outcome] = len(classes)
                    classes.append(outcome)
                cols[k] = j
            buffer.append_row(i, cols, row.probs)
            if limit is not None and len(classes) > limit:
                raise DomainTooLargeError(
                    f"reachable symbolic space exceeds the limit {limit}"
                )

    drop_index = len(classes)
    # The drop row is absorbing.
    buffer.append_one(drop_index, drop_index, 1.0)

    rows_arr = buffer.rows[: buffer.size]
    cols_arr = buffer.cols[: buffer.size]
    data_arr = buffer.data[: buffer.size]
    cols_arr[cols_arr < 0] = drop_index

    size = len(classes) + 1
    matrix = csr_matrix((data_arr, (rows_arr, cols_arr)), shape=(size, size))
    return TransitionMatrix(
        classes=classes,
        matrix=matrix,
        domains={f: tuple(sorted(v)) for f, v in domains.items()},
        assembled_rows=len(classes),
    )


def fdd_to_matrix_reference(
    node: FddNode,
    extra_values: Mapping[str, Iterable[int]] | None = None,
    limit: int | None = 1_000_000,
    seeds: Iterable[SymbolicPacket] | None = None,
    absorbing_when: Callable[[SymbolicPacket], bool] | None = None,
    row_cache: MutableMapping[SymbolicPacket, Dist] | None = None,
) -> TransitionMatrix:
    """Pre-vectorization assembly, kept verbatim as a reference oracle.

    Two passes (BFS exploration, then per-row assembly), ``Dist``-valued
    rows via :func:`class_transition`, and per-nonzero ``list.append`` —
    including the historical quirk that without a ``row_cache`` every
    class's row is computed twice.  Used by the equivalence property
    tests and the ``assembly_speedup`` benchmark; production callers use
    :func:`fdd_to_matrix`.
    """
    domains = matrix_domains(node, extra_values)

    if seeds is None:
        classes = enumerate_classes(domains, limit=limit)
    else:
        frontier = [project_class(cls, domains) for cls in seeds]
        seen: dict[SymbolicPacket, None] = dict.fromkeys(frontier)
        order: list[SymbolicPacket] = list(seen)
        cursor = 0
        while cursor < len(order):
            cls = order[cursor]
            cursor += 1
            if absorbing_when is not None and absorbing_when(cls):
                continue
            row = row_cache.get(cls) if row_cache is not None else None
            if row is None:
                row = class_transition(node, cls)
                if row_cache is not None:
                    row_cache[cls] = row
            for outcome in row.support():
                if isinstance(outcome, _DropType) or outcome in seen:
                    continue
                seen[outcome] = None
                order.append(outcome)
            if limit is not None and len(order) > limit:
                raise DomainTooLargeError(
                    f"reachable symbolic space exceeds the limit {limit}"
                )
        classes = order

    index = {cls: i for i, cls in enumerate(classes)}
    drop_index = len(classes)

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for i, cls in enumerate(classes):
        if absorbing_when is not None and absorbing_when(cls):
            rows.append(i)
            cols.append(i)
            data.append(1.0)
            continue
        row = row_cache.get(cls) if row_cache is not None else None
        if row is None:
            row = class_transition(node, cls)
            if row_cache is not None:
                row_cache[cls] = row
        for outcome, prob in row.items():
            j = drop_index if isinstance(outcome, _DropType) else index[outcome]
            rows.append(i)
            cols.append(j)
            data.append(float(prob))
    # The drop row is absorbing.
    rows.append(drop_index)
    cols.append(drop_index)
    data.append(1.0)

    size = len(classes) + 1
    matrix = csr_matrix((data, (rows, cols)), shape=(size, size))
    return TransitionMatrix(
        classes=classes,
        matrix=matrix,
        domains={f: tuple(sorted(v)) for f, v in domains.items()},
    )


def matrix_to_fdd(
    manager: FddManager,
    domains: Mapping[str, Sequence[int]],
    rows: Mapping[SymbolicPacket, Dist["SymbolicPacket | _DropType"]],
    default: FddNode | None = None,
) -> FddNode:
    """Rebuild an FDD from class-indexed transition rows.

    ``rows`` maps input classes to distributions over output classes (or
    drop).  Classes absent from ``rows`` fall back to ``default``
    (the drop leaf when not provided).  The output distribution of a class
    is encoded as a leaf whose actions write every concretely-valued field
    of the output class; wildcard output fields are left untouched (they
    can only arise when the field was untouched by the program).
    """
    default_node = default if default is not None else manager.false_leaf
    # Fields must be tested in the manager's global order or the resulting
    # diagram would violate the ordering invariant that restriction and
    # sequencing rely on.
    fields = sorted(domains, key=manager.field_rank)

    def leaf_for(dist: Dist["SymbolicPacket | _DropType"]) -> FddNode:
        weights: dict[ActionOrDrop, Fraction | float] = {}
        for outcome, prob in dist.items():
            if isinstance(outcome, _DropType):
                action: ActionOrDrop = DROP
            else:
                mods = {
                    f: v for f, v in outcome.values if v is not None
                }
                action = Action(mods)
            weights[action] = weights.get(action, Fraction(0)) + prob
        return manager.leaf(Dist(weights, check=False))

    # Build the diagram bottom-up, one field level at a time, with plain
    # loops: recursion over the per-field value chains would be bounded by
    # the interpreter stack for wide domains (thousands of switches).
    # Only classes present in ``rows`` are materialized — absent branches
    # collapse to ``default`` on their own — so time and memory are
    # O(|rows| · #fields), not O(product domain).
    if not fields:
        row = rows.get(SymbolicPacket({}))
        return default_node if row is None else leaf_for(row)

    level: dict[tuple[int | None, ...], FddNode] = {}
    for cls, row in rows.items():
        level[tuple(cls.value(field) for field in fields)] = leaf_for(row)

    for depth in range(len(fields) - 1, -1, -1):
        field = fields[depth]
        concrete = sorted(set(domains[field]))
        grouped: dict[tuple[int | None, ...], dict[int | None, FddNode]] = {}
        for combo, node in level.items():
            grouped.setdefault(combo[:depth], {})[combo[depth]] = node
        collapsed: dict[tuple[int | None, ...], FddNode] = {}
        for prefix, children in grouped.items():
            # The chain tests values in ascending order from the root, so
            # assemble it from the wildcard case backwards.
            node = children.get(WILDCARD, default_node)
            for value in reversed(concrete):
                node = manager.branch(field, value, children.get(value, default_node), node)
            collapsed[prefix] = node
        level = collapsed

    return level.get((), default_node)
