"""Compiled loop bodies: one-shot FDD compilation for fast exploration.

McNetKAT's scalability rests on compiling each switch's policy to an FDD
*once* and never re-interpreting the AST (§5–§6).  The forward
interpreter's loop exploration used to re-run the loop body AST for
every reachable loop-head state — a full tree walk with per-node
:class:`~repro.core.distributions.Dist` allocation and
:class:`~fractions.Fraction` arithmetic.  A :class:`CompiledBody`
replaces that walk:

* the body is split into *segments*: maximal loop-free runs compile
  eagerly into one canonical FDD each, while ``case`` nodes dispatching
  on a single field (the per-switch shape produced by the network model
  builders) keep their branches separate and compile each branch
  *lazily*, on the first packet that reaches it — so no global product
  of all switches' class spaces is ever built, mirroring McNetKAT's
  per-switch compilation;
* a transition row is computed by FDD evaluation (walk to a leaf, apply
  its actions) instead of AST interpretation;
* when ``exact`` is off, leaf action distributions are cached with
  pre-converted ``float`` weights, so exploration performs no
  ``Fraction`` arithmetic at all.

Compiled bodies serialize into manager-independent *specs*
(:meth:`CompiledBody.to_spec`) so the parallel backend can ship the
compiled FDDs — not the pickled AST — to worker processes.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.fdd.actions import ActionOrDrop, apply_action
from repro.core.fdd.node import (
    Branch,
    FddManager,
    FddNode,
    Leaf,
    node_from_spec,
    node_to_spec,
)
from repro.core.packet import DROP, Packet, _DropType

Outcome = Packet | _DropType

#: Leaf-uid -> tuple of (action, weight) pairs; shared across the
#: segments of one compiled body so interned leaves convert only once.
_LeafCache = dict[int, tuple[tuple[ActionOrDrop, object], ...]]


def _leaf_of(node: FddNode, packet: Packet) -> Leaf:
    """Walk an FDD to the leaf selected by a concrete packet.

    Tests on fields the packet does not carry are false, matching the
    interpreter and the reference semantics.
    """
    current = node
    while isinstance(current, Branch):
        if packet.get(current.field) == current.value:
            current = current.hi
        else:
            current = current.lo
    assert isinstance(current, Leaf)
    return current


#: Leaf-uid -> (prepared actions tuple, float64 weight array); the
#: vectorized analogue of :data:`_LeafCache`, used by the matrix-assembly
#: hot path.  Each prepared action is ``None`` (identity), :data:`DROP`,
#: or ``(action, mods_dict, len(mods))`` ready for in-place substitution
#: over a class's sorted field pairs.  Uids are only unique within one
#: :class:`FddManager`, so callers must scope a cache to a single FDD
#: (``fdd_to_matrix`` keeps one per call).
ClassRowCache = dict[int, tuple[tuple, "np.ndarray"]]


class ClassRow:
    """A transition row as parallel array segments instead of a ``Dist``.

    ``outcomes[k]`` is the symbolic class (or :data:`DROP`) reached with
    probability ``probs[k]`` (float64).  Duplicate outcomes are merged at
    construction, so ``dict(row.items())`` is lossless — the property the
    matrix backend relies on when handing rows to the absorption solver.
    The :class:`~repro.core.distributions.Dist` API remains available for
    callers that want it via :meth:`to_dist`.
    """

    __slots__ = ("outcomes", "probs")

    def __init__(self, outcomes: tuple, probs: np.ndarray):
        self.outcomes = outcomes
        self.probs = probs

    @classmethod
    def from_items(cls, items) -> ClassRow:
        """Build (merging duplicates) from ``(outcome, prob)`` pairs."""
        merged: dict = {}
        for outcome, prob in items:
            value = float(prob)
            if outcome in merged:
                merged[outcome] += value
            else:
                merged[outcome] = value
        return cls(
            tuple(merged),
            np.fromiter(merged.values(), dtype=np.float64, count=len(merged)),
        )

    def items(self):
        """Iterate ``(outcome, float)`` pairs, mirroring ``Dist.items``."""
        return zip(self.outcomes, self.probs.tolist())

    def support(self):
        return self.outcomes

    def to_dist(self) -> Dist:
        return Dist(dict(self.items()), check=False)


def materialize_class_row(node: FddNode, cls, leaf_cache: ClassRowCache) -> ClassRow:
    """Vectorized one-step transition row of symbolic class ``cls``.

    Walks ``node`` to the leaf selected by the class (one dict lookup per
    branch over the class's sorted ``values`` pairs), converts the leaf's
    weight tuple to a cached float64 array plus *prepared* actions once
    per distinct leaf, and applies those actions by in-place substitution
    over the field pairs — no intermediate ``Dist``, no ``Fraction``
    arithmetic, and no per-action dict rebuild on the hot path.
    """
    # The branch walk is the innermost loop of matrix assembly.  Ordered
    # FDDs test one field as a linear chain of value branches (one per
    # mentioned value — e.g. one per switch), so the descent is walked
    # through per-chain jump tables: each maximal same-field chain costs
    # one dict lookup instead of one comparison per value.  Tables are
    # memoized on the manager (uids are unique per manager, diagrams are
    # immutable).  A wildcard (``None``) class value misses every table
    # key and falls through to the chain's default continuation, exactly
    # like failing each test in sequence.
    jumps = getattr(node.manager, "_jump_memo", None)
    if jumps is None:
        jumps = node.manager._jump_memo = {}
    current = node
    lookup = dict(cls.values).get
    while type(current) is Branch:
        entry = jumps.get(current.uid)
        if entry is None:
            field = current.field
            table = {}
            chain = current
            while type(chain) is Branch and chain.field == field:
                if chain.value not in table:
                    table[chain.value] = chain.hi
                chain = chain.lo
            entry = jumps[current.uid] = (field, table, chain)
        field, table, default = entry
        current = table.get(lookup(field), default)
    cached = leaf_cache.get(current.uid)
    if cached is None:
        pairs = list(current.dist.items())
        prepared = []
        for action, _ in pairs:
            if isinstance(action, _DropType):
                prepared.append(DROP)
            elif action.is_identity():
                prepared.append(None)
            else:
                # [action, substitution] — the substitution slot starts
                # unset (None) and is filled on first application: every
                # class in one assembly shares the same sorted field
                # sequence, so each modified field sits at a fixed index.
                prepared.append([action, None])
        cached = (
            tuple(prepared),
            np.array([float(prob) for _, prob in pairs], dtype=np.float64),
        )
        leaf_cache[current.uid] = cached
    prepared_actions, probs = cached
    values = cls.values
    outcome_type = type(cls)
    outcomes_list = []
    append = outcomes_list.append
    for prep in prepared_actions:
        if prep is None:
            append(cls)
            continue
        if prep is DROP:
            append(DROP)
            continue
        action, subst = prep
        if subst is None:
            names = [field for field, _ in values]
            positions = []
            for field, modded in dict(action.mods).items():
                if field in names:
                    positions.append((names.index(field), (field, modded)))
                else:
                    positions = None  # a mod outside the class's fields
                    break
            subst = prep[1] = False if positions is None else tuple(positions)
        if subst is False:
            append(cls.apply_action(action))
            continue
        updated = list(values)
        valid = True
        for i, pair in subst:
            if updated[i][0] != pair[0]:
                valid = False  # field layout changed: generic fallback
                break
            updated[i] = pair
        if not valid:
            append(cls.apply_action(action))
            continue
        outcome = object.__new__(outcome_type)
        object.__setattr__(outcome, "values", tuple(updated))
        append(outcome)
    outcomes = tuple(outcomes_list)
    if len(outcomes) > 1 and len(set(outcomes)) != len(outcomes):
        merged: dict = {}
        for outcome, prob in zip(outcomes, probs):
            if outcome in merged:
                merged[outcome] += prob
            else:
                merged[outcome] = prob
        outcomes = tuple(merged)
        probs = np.fromiter(merged.values(), dtype=np.float64, count=len(merged))
    return ClassRow(outcomes, probs)


class _Segment:
    """Common row machinery: per-packet row cache + leaf weight cache."""

    __slots__ = ("exact", "_leaf_cache", "_rows")

    def __init__(self, exact: bool, leaf_cache: _LeafCache):
        self.exact = exact
        self._leaf_cache = leaf_cache
        self._rows: dict[Packet, tuple[tuple[Outcome, object], ...]] = {}

    def _fdd_for(self, packet: Packet) -> FddNode:  # pragma: no cover - abstract
        raise NotImplementedError

    def _leaf_weights(self, leaf: Leaf) -> tuple[tuple[ActionOrDrop, object], ...]:
        cached = self._leaf_cache.get(leaf.uid)
        if cached is None:
            if self.exact:
                cached = tuple(
                    (action, Fraction(prob)) for action, prob in leaf.dist.items()
                )
            else:
                cached = tuple(
                    (action, float(prob)) for action, prob in leaf.dist.items()
                )
            self._leaf_cache[leaf.uid] = cached
        return cached

    def row(self, packet: Packet) -> tuple[tuple[Outcome, object], ...]:
        """The one-step output distribution of this segment on ``packet``."""
        row = self._rows.get(packet)
        if row is None:
            leaf = _leaf_of(self._fdd_for(packet), packet)
            row = tuple(
                (apply_action(action, packet), prob)
                for action, prob in self._leaf_weights(leaf)
            )
            self._rows[packet] = row
        return row


class _FddSegment(_Segment):
    """A maximal loop-free run of the body, compiled to one FDD."""

    __slots__ = ("fdd",)

    def __init__(self, fdd: FddNode, exact: bool, leaf_cache: _LeafCache):
        super().__init__(exact, leaf_cache)
        self.fdd = fdd

    def _fdd_for(self, packet: Packet) -> FddNode:
        return self.fdd


class _CaseSegment(_Segment):
    """A single-field ``case`` whose branches compile lazily, per value.

    This is the per-switch compilation of the paper: each branch of
    ``case sw=1 … case sw=n`` becomes its own small FDD the first time a
    packet at that switch is explored.  The branches never merge into
    one diagram, so the symbolic class space stays per-switch.
    """

    __slots__ = (
        "field",
        "_branch_fdds",
        "_default_fdd",
        "_branch_policies",
        "_default_policy",
        "_compiler",
    )

    def __init__(
        self,
        field: str,
        branch_policies: dict[int, s.Policy] | None,
        default_policy: s.Policy | None,
        compiler,
        exact: bool,
        leaf_cache: _LeafCache,
        branch_fdds: dict[int, FddNode] | None = None,
        default_fdd: FddNode | None = None,
    ):
        super().__init__(exact, leaf_cache)
        self.field = field
        self._branch_policies = branch_policies
        self._default_policy = default_policy
        self._compiler = compiler
        self._branch_fdds: dict[int, FddNode] = dict(branch_fdds or {})
        self._default_fdd = default_fdd

    def _fdd_for(self, packet: Packet) -> FddNode:
        value = packet.get(self.field)
        if value is not None:
            fdd = self._branch_fdds.get(value)
            if fdd is not None:
                return fdd
            if self._branch_policies is not None and value in self._branch_policies:
                fdd = self._compiler.compile_unreduced(self._branch_policies[value])
                self._branch_fdds[value] = fdd
                return fdd
        return self._require_default()

    def _require_default(self) -> FddNode:
        if self._default_fdd is None:
            assert self._compiler is not None and self._default_policy is not None
            self._default_fdd = self._compiler.compile_unreduced(self._default_policy)
        return self._default_fdd

    def compile_all(self) -> None:
        """Force compilation of every branch (and the default)."""
        if self._branch_policies is not None:
            for value, policy in self._branch_policies.items():
                if value not in self._branch_fdds:
                    self._branch_fdds[value] = self._compiler.compile_unreduced(policy)
        self._require_default()

    @property
    def compiled_branches(self) -> int:
        return len(self._branch_fdds)


class CompiledBody:
    """A loop body compiled into FDD segments for fast row computation.

    Build with :meth:`try_compile` (returns ``None`` when the body is
    not eligible, e.g. it contains a nested loop) or :meth:`from_spec`
    (worker processes).  The central operation is :meth:`run_packet`:
    the output distribution of the body on one concrete packet, computed
    purely by FDD evaluation.
    """

    def __init__(self, segments: list[_Segment], exact: bool, manager: FddManager):
        self._segments = segments
        self.exact = exact
        self.manager = manager

    # -- construction -----------------------------------------------------------
    @classmethod
    def try_compile(cls, body: s.Policy, compiler, exact: bool = False) -> "CompiledBody | None":
        """Compile ``body`` into segments, or ``None`` when ineligible.

        Ineligible bodies (nested ``while``/``star``/``union``, or
        constructs the compiler rejects) fall back to AST interpretation;
        eligibility is decided up front so no fallback can be needed
        mid-exploration.  ``union`` is excluded even over predicates,
        where the compiler could handle it, so the fast path accepts
        exactly the programs the interpreter accepts.
        """
        for node in body.walk():
            if isinstance(node, (s.WhileDo, s.Star, s.Union)):
                return None
        from repro.core.compiler import GuardedFragmentError

        parts = list(body.parts) if isinstance(body, s.Seq) else [body]
        leaf_cache: _LeafCache = {}
        segments: list[_Segment] = []
        pending: list[s.Policy] = []

        spine = _specialize_spine(parts)
        if spine is not None:
            # The whole body specializes per value of one dispatch field
            # (per switch, for network models): each value's body is a
            # single FDD composing that switch's failure/routing/topology
            # branches, compiled on the first packet that reaches it.
            field, table, default = spine
            segments.append(
                _CaseSegment(field, table, default, compiler, exact, leaf_cache)
            )
            return cls(segments, exact, compiler.manager)

        def flush() -> None:
            if not pending:
                return
            fdd = compiler.compile_unreduced(s.seq(*pending))
            segments.append(_FddSegment(fdd, exact, leaf_cache))
            pending.clear()

        try:
            for part in parts:
                dispatch = _dispatch_table(part) if isinstance(part, s.Case) else None
                if dispatch is not None:
                    flush()
                    field, table = dispatch
                    segments.append(
                        _CaseSegment(
                            field, table, part.default, compiler, exact, leaf_cache
                        )
                    )
                else:
                    pending.append(part)
            flush()
        except GuardedFragmentError:
            return None
        return cls(segments, exact, compiler.manager)

    # -- evaluation -------------------------------------------------------------
    def run_packet(self, packet: Packet) -> Dist[Outcome]:
        """Output distribution of the compiled body on one input packet."""
        one: object = Fraction(1) if self.exact else 1.0
        acc: dict[Outcome, object] = {packet: one}
        for segment in self._segments:
            advanced: dict[Outcome, object] = {}
            get = advanced.get
            row = segment.row
            for outcome, mass in acc.items():
                if outcome is DROP:
                    advanced[DROP] = get(DROP, 0) + mass
                    continue
                for successor, prob in row(outcome):
                    advanced[successor] = get(successor, 0) + mass * prob
            acc = advanced
        return Dist._from_weights(acc)

    # -- introspection ----------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Segment/branch/cache counts (benchmark and test introspection)."""
        case_segments = [
            segment for segment in self._segments if isinstance(segment, _CaseSegment)
        ]
        return {
            "segments": len(self._segments),
            "case_segments": len(case_segments),
            "compiled_branches": sum(
                segment.compiled_branches for segment in case_segments
            ),
            "cached_rows": sum(len(segment._rows) for segment in self._segments),
        }

    # -- worker serialization ----------------------------------------------------
    def to_spec(self) -> tuple:
        """A picklable, manager-independent spec of this compiled body.

        Lazily pending ``case`` branches are force-compiled first, so the
        spec is complete: workers rebuilt from it never need the AST.
        """
        seg_specs: list[tuple] = []
        for segment in self._segments:
            if isinstance(segment, _CaseSegment):
                segment.compile_all()
                seg_specs.append((
                    "case",
                    segment.field,
                    tuple(
                        (value, node_to_spec(fdd))
                        for value, fdd in sorted(segment._branch_fdds.items())
                    ),
                    node_to_spec(segment._require_default()),
                ))
            else:
                assert isinstance(segment, _FddSegment)
                seg_specs.append(("fdd", node_to_spec(segment.fdd)))
        return ("compiled-body/v1", self.exact, self.manager.fields, tuple(seg_specs))

    @classmethod
    def from_spec(cls, spec: tuple) -> "CompiledBody":
        """Rebuild a compiled body (in a fresh manager) from its spec."""
        tag, exact, field_order, seg_specs = spec
        if tag != "compiled-body/v1":
            raise ValueError(f"unknown compiled-body spec tag {tag!r}")
        manager = FddManager(field_order)
        leaf_cache: _LeafCache = {}
        segments: list[_Segment] = []
        for entry in seg_specs:
            if entry[0] == "fdd":
                segments.append(
                    _FddSegment(node_from_spec(manager, entry[1]), exact, leaf_cache)
                )
            else:
                _, field, branch_specs, default_spec = entry
                segments.append(
                    _CaseSegment(
                        field,
                        branch_policies=None,
                        default_policy=None,
                        compiler=None,
                        exact=exact,
                        leaf_cache=leaf_cache,
                        branch_fdds={
                            value: node_from_spec(manager, fdd_spec)
                            for value, fdd_spec in branch_specs
                        },
                        default_fdd=node_from_spec(manager, default_spec),
                    )
                )
        return cls(segments, exact, manager)


def _assigned_fields(policy: s.Policy) -> frozenset[str]:
    """Fields that some execution of ``policy`` may assign."""
    return frozenset(
        node.field for node in policy.walk() if isinstance(node, s.Assign)
    )


def _specialize_spine(
    parts: list[s.Policy],
) -> tuple[str, dict[int, s.Policy], s.Policy] | None:
    """Specialize a whole body per value of one dispatch field.

    Network-model bodies are sequences of ``case`` nodes dispatching on
    the switch field (failure model, routing, topology) followed by flag
    resets and a hop counter.  For a packet at switch ``v`` the entire
    sequence collapses to ``failure_v ; routing_v ; topology_v ; …`` —
    one small per-switch program whose FDD composes those branches and
    integrates the intermediate flag samples out symbolically, so a
    transition row costs a single diagram walk instead of enumerating
    every flag combination as a concrete packet.

    A ``case`` on the spine field may only be specialized while no
    earlier part can have reassigned that field (the topology step
    assigns ``sw``, so only cases *before* it qualify — for network
    bodies that is all of them).  Returns ``(field, value -> specialized
    body, default body)``, or ``None`` when the body does not have this
    shape (the caller falls back to segment-pipeline evaluation).
    """
    dispatches = [
        _dispatch_table(part) if isinstance(part, s.Case) else None for part in parts
    ]
    field = next((d[0] for d in dispatches if d is not None), None)
    if field is None:
        return None
    marked: list[dict[int, s.Policy] | None] = []
    assigned = False
    for part, dispatch in zip(parts, dispatches):
        if dispatch is not None and dispatch[0] == field and not assigned:
            marked.append(dispatch[1])
        elif dispatch is not None and len(dispatch[1]) > 64:
            # An unspecialized wide case would compile into one huge FDD;
            # the lazy segment pipeline handles it better.
            return None
        else:
            marked.append(None)
        if field in _assigned_fields(part):
            assigned = True
    if not any(table is not None for table in marked):
        return None

    values = sorted({
        value for table in marked if table is not None for value in table
    })
    specialized: dict[int, s.Policy] = {}
    for value in values:
        specialized[value] = s.seq(*[
            table.get(value, part.default) if table is not None else part
            for part, table in zip(parts, marked)
        ])
    default = s.seq(*[
        part.default if table is not None else part
        for part, table in zip(parts, marked)
    ])
    return field, specialized, default


def _dispatch_table(policy: s.Case) -> tuple[str, dict[int, s.Policy]] | None:
    """``(field, value -> branch)`` when every guard tests one common field.

    The same shape the interpreter's dispatch uses; ``None`` for mixed
    guards (those cases compile eagerly as part of a loop-free segment).
    """
    field: str | None = None
    table: dict[int, s.Policy] = {}
    for guard, branch in policy.branches:
        if not isinstance(guard, s.Test):
            return None
        if field is None:
            field = guard.field
        elif guard.field != field:
            return None
        if guard.value in table:
            # Later duplicate guards are unreachable; keep the first.
            continue
        table[guard.value] = branch
    if field is None:
        return None
    return field, table
