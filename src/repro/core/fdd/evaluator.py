"""Compiled loop bodies: one-shot FDD compilation for fast exploration.

McNetKAT's scalability rests on compiling each switch's policy to an FDD
*once* and never re-interpreting the AST (§5–§6).  The forward
interpreter's loop exploration used to re-run the loop body AST for
every reachable loop-head state — a full tree walk with per-node
:class:`~repro.core.distributions.Dist` allocation and
:class:`~fractions.Fraction` arithmetic.  A :class:`CompiledBody`
replaces that walk:

* the body is split into *segments*: maximal loop-free runs compile
  eagerly into one canonical FDD each, while ``case`` nodes dispatching
  on a single field (the per-switch shape produced by the network model
  builders) keep their branches separate and compile each branch
  *lazily*, on the first packet that reaches it — so no global product
  of all switches' class spaces is ever built, mirroring McNetKAT's
  per-switch compilation;
* a transition row is computed by FDD evaluation (walk to a leaf, apply
  its actions) instead of AST interpretation;
* when ``exact`` is off, leaf action distributions are cached with
  pre-converted ``float`` weights, so exploration performs no
  ``Fraction`` arithmetic at all.

Compiled bodies serialize into manager-independent *specs*
(:meth:`CompiledBody.to_spec`) so the parallel backend can ship the
compiled FDDs — not the pickled AST — to worker processes.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.fdd.actions import ActionOrDrop, apply_action
from repro.core.fdd.node import (
    Branch,
    FddManager,
    FddNode,
    Leaf,
    node_from_spec,
    node_to_spec,
)
from repro.core.packet import DROP, Packet, _DropType

Outcome = Packet | _DropType

#: Leaf-uid -> tuple of (action, weight) pairs; shared across the
#: segments of one compiled body so interned leaves convert only once.
_LeafCache = dict[int, tuple[tuple[ActionOrDrop, object], ...]]


def _leaf_of(node: FddNode, packet: Packet) -> Leaf:
    """Walk an FDD to the leaf selected by a concrete packet.

    Tests on fields the packet does not carry are false, matching the
    interpreter and the reference semantics.
    """
    current = node
    while isinstance(current, Branch):
        if packet.get(current.field) == current.value:
            current = current.hi
        else:
            current = current.lo
    assert isinstance(current, Leaf)
    return current


class _Segment:
    """Common row machinery: per-packet row cache + leaf weight cache."""

    __slots__ = ("exact", "_leaf_cache", "_rows")

    def __init__(self, exact: bool, leaf_cache: _LeafCache):
        self.exact = exact
        self._leaf_cache = leaf_cache
        self._rows: dict[Packet, tuple[tuple[Outcome, object], ...]] = {}

    def _fdd_for(self, packet: Packet) -> FddNode:  # pragma: no cover - abstract
        raise NotImplementedError

    def _leaf_weights(self, leaf: Leaf) -> tuple[tuple[ActionOrDrop, object], ...]:
        cached = self._leaf_cache.get(leaf.uid)
        if cached is None:
            if self.exact:
                cached = tuple(
                    (action, Fraction(prob)) for action, prob in leaf.dist.items()
                )
            else:
                cached = tuple(
                    (action, float(prob)) for action, prob in leaf.dist.items()
                )
            self._leaf_cache[leaf.uid] = cached
        return cached

    def row(self, packet: Packet) -> tuple[tuple[Outcome, object], ...]:
        """The one-step output distribution of this segment on ``packet``."""
        row = self._rows.get(packet)
        if row is None:
            leaf = _leaf_of(self._fdd_for(packet), packet)
            row = tuple(
                (apply_action(action, packet), prob)
                for action, prob in self._leaf_weights(leaf)
            )
            self._rows[packet] = row
        return row


class _FddSegment(_Segment):
    """A maximal loop-free run of the body, compiled to one FDD."""

    __slots__ = ("fdd",)

    def __init__(self, fdd: FddNode, exact: bool, leaf_cache: _LeafCache):
        super().__init__(exact, leaf_cache)
        self.fdd = fdd

    def _fdd_for(self, packet: Packet) -> FddNode:
        return self.fdd


class _CaseSegment(_Segment):
    """A single-field ``case`` whose branches compile lazily, per value.

    This is the per-switch compilation of the paper: each branch of
    ``case sw=1 … case sw=n`` becomes its own small FDD the first time a
    packet at that switch is explored.  The branches never merge into
    one diagram, so the symbolic class space stays per-switch.
    """

    __slots__ = (
        "field",
        "_branch_fdds",
        "_default_fdd",
        "_branch_policies",
        "_default_policy",
        "_compiler",
    )

    def __init__(
        self,
        field: str,
        branch_policies: dict[int, s.Policy] | None,
        default_policy: s.Policy | None,
        compiler,
        exact: bool,
        leaf_cache: _LeafCache,
        branch_fdds: dict[int, FddNode] | None = None,
        default_fdd: FddNode | None = None,
    ):
        super().__init__(exact, leaf_cache)
        self.field = field
        self._branch_policies = branch_policies
        self._default_policy = default_policy
        self._compiler = compiler
        self._branch_fdds: dict[int, FddNode] = dict(branch_fdds or {})
        self._default_fdd = default_fdd

    def _fdd_for(self, packet: Packet) -> FddNode:
        value = packet.get(self.field)
        if value is not None:
            fdd = self._branch_fdds.get(value)
            if fdd is not None:
                return fdd
            if self._branch_policies is not None and value in self._branch_policies:
                fdd = self._compiler.compile_unreduced(self._branch_policies[value])
                self._branch_fdds[value] = fdd
                return fdd
        return self._require_default()

    def _require_default(self) -> FddNode:
        if self._default_fdd is None:
            assert self._compiler is not None and self._default_policy is not None
            self._default_fdd = self._compiler.compile_unreduced(self._default_policy)
        return self._default_fdd

    def compile_all(self) -> None:
        """Force compilation of every branch (and the default)."""
        if self._branch_policies is not None:
            for value, policy in self._branch_policies.items():
                if value not in self._branch_fdds:
                    self._branch_fdds[value] = self._compiler.compile_unreduced(policy)
        self._require_default()

    @property
    def compiled_branches(self) -> int:
        return len(self._branch_fdds)


class CompiledBody:
    """A loop body compiled into FDD segments for fast row computation.

    Build with :meth:`try_compile` (returns ``None`` when the body is
    not eligible, e.g. it contains a nested loop) or :meth:`from_spec`
    (worker processes).  The central operation is :meth:`run_packet`:
    the output distribution of the body on one concrete packet, computed
    purely by FDD evaluation.
    """

    def __init__(self, segments: list[_Segment], exact: bool, manager: FddManager):
        self._segments = segments
        self.exact = exact
        self.manager = manager

    # -- construction -----------------------------------------------------------
    @classmethod
    def try_compile(cls, body: s.Policy, compiler, exact: bool = False) -> "CompiledBody | None":
        """Compile ``body`` into segments, or ``None`` when ineligible.

        Ineligible bodies (nested ``while``/``star``/``union``, or
        constructs the compiler rejects) fall back to AST interpretation;
        eligibility is decided up front so no fallback can be needed
        mid-exploration.  ``union`` is excluded even over predicates,
        where the compiler could handle it, so the fast path accepts
        exactly the programs the interpreter accepts.
        """
        for node in body.walk():
            if isinstance(node, (s.WhileDo, s.Star, s.Union)):
                return None
        from repro.core.compiler import GuardedFragmentError

        parts = list(body.parts) if isinstance(body, s.Seq) else [body]
        leaf_cache: _LeafCache = {}
        segments: list[_Segment] = []
        pending: list[s.Policy] = []

        spine = _specialize_spine(parts)
        if spine is not None:
            # The whole body specializes per value of one dispatch field
            # (per switch, for network models): each value's body is a
            # single FDD composing that switch's failure/routing/topology
            # branches, compiled on the first packet that reaches it.
            field, table, default = spine
            segments.append(
                _CaseSegment(field, table, default, compiler, exact, leaf_cache)
            )
            return cls(segments, exact, compiler.manager)

        def flush() -> None:
            if not pending:
                return
            fdd = compiler.compile_unreduced(s.seq(*pending))
            segments.append(_FddSegment(fdd, exact, leaf_cache))
            pending.clear()

        try:
            for part in parts:
                dispatch = _dispatch_table(part) if isinstance(part, s.Case) else None
                if dispatch is not None:
                    flush()
                    field, table = dispatch
                    segments.append(
                        _CaseSegment(
                            field, table, part.default, compiler, exact, leaf_cache
                        )
                    )
                else:
                    pending.append(part)
            flush()
        except GuardedFragmentError:
            return None
        return cls(segments, exact, compiler.manager)

    # -- evaluation -------------------------------------------------------------
    def run_packet(self, packet: Packet) -> Dist[Outcome]:
        """Output distribution of the compiled body on one input packet."""
        one: object = Fraction(1) if self.exact else 1.0
        acc: dict[Outcome, object] = {packet: one}
        for segment in self._segments:
            advanced: dict[Outcome, object] = {}
            get = advanced.get
            row = segment.row
            for outcome, mass in acc.items():
                if outcome is DROP:
                    advanced[DROP] = get(DROP, 0) + mass
                    continue
                for successor, prob in row(outcome):
                    advanced[successor] = get(successor, 0) + mass * prob
            acc = advanced
        return Dist._from_weights(acc)

    # -- introspection ----------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Segment/branch/cache counts (benchmark and test introspection)."""
        case_segments = [
            segment for segment in self._segments if isinstance(segment, _CaseSegment)
        ]
        return {
            "segments": len(self._segments),
            "case_segments": len(case_segments),
            "compiled_branches": sum(
                segment.compiled_branches for segment in case_segments
            ),
            "cached_rows": sum(len(segment._rows) for segment in self._segments),
        }

    # -- worker serialization ----------------------------------------------------
    def to_spec(self) -> tuple:
        """A picklable, manager-independent spec of this compiled body.

        Lazily pending ``case`` branches are force-compiled first, so the
        spec is complete: workers rebuilt from it never need the AST.
        """
        seg_specs: list[tuple] = []
        for segment in self._segments:
            if isinstance(segment, _CaseSegment):
                segment.compile_all()
                seg_specs.append((
                    "case",
                    segment.field,
                    tuple(
                        (value, node_to_spec(fdd))
                        for value, fdd in sorted(segment._branch_fdds.items())
                    ),
                    node_to_spec(segment._require_default()),
                ))
            else:
                assert isinstance(segment, _FddSegment)
                seg_specs.append(("fdd", node_to_spec(segment.fdd)))
        return ("compiled-body/v1", self.exact, self.manager.fields, tuple(seg_specs))

    @classmethod
    def from_spec(cls, spec: tuple) -> "CompiledBody":
        """Rebuild a compiled body (in a fresh manager) from its spec."""
        tag, exact, field_order, seg_specs = spec
        if tag != "compiled-body/v1":
            raise ValueError(f"unknown compiled-body spec tag {tag!r}")
        manager = FddManager(field_order)
        leaf_cache: _LeafCache = {}
        segments: list[_Segment] = []
        for entry in seg_specs:
            if entry[0] == "fdd":
                segments.append(
                    _FddSegment(node_from_spec(manager, entry[1]), exact, leaf_cache)
                )
            else:
                _, field, branch_specs, default_spec = entry
                segments.append(
                    _CaseSegment(
                        field,
                        branch_policies=None,
                        default_policy=None,
                        compiler=None,
                        exact=exact,
                        leaf_cache=leaf_cache,
                        branch_fdds={
                            value: node_from_spec(manager, fdd_spec)
                            for value, fdd_spec in branch_specs
                        },
                        default_fdd=node_from_spec(manager, default_spec),
                    )
                )
        return cls(segments, exact, manager)


def _assigned_fields(policy: s.Policy) -> frozenset[str]:
    """Fields that some execution of ``policy`` may assign."""
    return frozenset(
        node.field for node in policy.walk() if isinstance(node, s.Assign)
    )


def _specialize_spine(
    parts: list[s.Policy],
) -> tuple[str, dict[int, s.Policy], s.Policy] | None:
    """Specialize a whole body per value of one dispatch field.

    Network-model bodies are sequences of ``case`` nodes dispatching on
    the switch field (failure model, routing, topology) followed by flag
    resets and a hop counter.  For a packet at switch ``v`` the entire
    sequence collapses to ``failure_v ; routing_v ; topology_v ; …`` —
    one small per-switch program whose FDD composes those branches and
    integrates the intermediate flag samples out symbolically, so a
    transition row costs a single diagram walk instead of enumerating
    every flag combination as a concrete packet.

    A ``case`` on the spine field may only be specialized while no
    earlier part can have reassigned that field (the topology step
    assigns ``sw``, so only cases *before* it qualify — for network
    bodies that is all of them).  Returns ``(field, value -> specialized
    body, default body)``, or ``None`` when the body does not have this
    shape (the caller falls back to segment-pipeline evaluation).
    """
    dispatches = [
        _dispatch_table(part) if isinstance(part, s.Case) else None for part in parts
    ]
    field = next((d[0] for d in dispatches if d is not None), None)
    if field is None:
        return None
    marked: list[dict[int, s.Policy] | None] = []
    assigned = False
    for part, dispatch in zip(parts, dispatches):
        if dispatch is not None and dispatch[0] == field and not assigned:
            marked.append(dispatch[1])
        elif dispatch is not None and len(dispatch[1]) > 64:
            # An unspecialized wide case would compile into one huge FDD;
            # the lazy segment pipeline handles it better.
            return None
        else:
            marked.append(None)
        if field in _assigned_fields(part):
            assigned = True
    if not any(table is not None for table in marked):
        return None

    values = sorted({
        value for table in marked if table is not None for value in table
    })
    specialized: dict[int, s.Policy] = {}
    for value in values:
        specialized[value] = s.seq(*[
            table.get(value, part.default) if table is not None else part
            for part, table in zip(parts, marked)
        ])
    default = s.seq(*[
        part.default if table is not None else part
        for part, table in zip(parts, marked)
    ])
    return field, specialized, default


def _dispatch_table(policy: s.Case) -> tuple[str, dict[int, s.Policy]] | None:
    """``(field, value -> branch)`` when every guard tests one common field.

    The same shape the interpreter's dispatch uses; ``None`` for mixed
    guards (those cases compile eagerly as part of a loop-free segment).
    """
    field: str | None = None
    table: dict[int, s.Policy] = {}
    for guard, branch in policy.branches:
        if not isinstance(guard, s.Test):
            return None
        if field is None:
            field = guard.field
        elif guard.field != field:
            return None
        if guard.value in table:
            # Later duplicate guards are unreachable; keep the first.
            continue
        table[guard.value] = branch
    if field is None:
        return None
    return field, table
