"""Probabilistic Forwarding Decision Diagrams (§5.1 of the paper)."""

from repro.core.fdd.actions import DROP, IDENTITY, Action, ActionOrDrop, apply_action
from repro.core.fdd.node import (
    Branch,
    FddManager,
    FddNode,
    Leaf,
    evaluate,
    iter_nodes,
    leaves,
    mentioned_values,
    node_size,
    output_distribution,
)
from repro.core.fdd.matrix import (
    SymbolicPacket,
    TransitionMatrix,
    classify,
    enumerate_classes,
    fdd_to_matrix,
    matrix_to_fdd,
)
from repro.core.fdd import ops

__all__ = [
    "Action",
    "ActionOrDrop",
    "Branch",
    "DROP",
    "FddManager",
    "FddNode",
    "IDENTITY",
    "Leaf",
    "SymbolicPacket",
    "TransitionMatrix",
    "apply_action",
    "classify",
    "enumerate_classes",
    "evaluate",
    "fdd_to_matrix",
    "iter_nodes",
    "leaves",
    "matrix_to_fdd",
    "mentioned_values",
    "node_size",
    "ops",
    "output_distribution",
]
