"""Graphviz (DOT) rendering of probabilistic FDDs, for debugging and docs."""

from __future__ import annotations

from repro.core.fdd.actions import Action
from repro.core.fdd.node import Branch, FddNode, Leaf, iter_nodes
from repro.core.packet import _DropType


def _leaf_label(leaf: Leaf) -> str:
    parts = []
    for action, prob in sorted(leaf.dist.items(), key=lambda kv: repr(kv[0])):
        if isinstance(action, _DropType):
            desc = "drop"
        elif isinstance(action, Action) and action.is_identity():
            desc = "id"
        else:
            desc = ",".join(f"{f}:={v}" for f, v in action.mods)
        parts.append(f"{desc} @ {prob}")
    return "\\n".join(parts)


def to_dot(node: FddNode, graph_name: str = "fdd") -> str:
    """Render an FDD as a Graphviz DOT digraph.

    Interior nodes are drawn as ellipses labelled with their test; solid
    edges are the true branch and dashed edges the false branch, matching
    Figure 5 of the paper.  Leaves are boxes showing their action
    distribution.
    """
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;"]
    for current in iter_nodes(node):
        if isinstance(current, Branch):
            lines.append(
                f'  n{current.uid} [shape=ellipse, label="{current.field}={current.value}"];'
            )
            lines.append(f"  n{current.uid} -> n{current.hi.uid} [style=solid];")
            lines.append(f"  n{current.uid} -> n{current.lo.uid} [style=dashed];")
        else:
            assert isinstance(current, Leaf)
            lines.append(
                f'  n{current.uid} [shape=box, label="{_leaf_label(current)}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def write_dot(node: FddNode, path: str, graph_name: str = "fdd") -> None:
    """Write the DOT rendering of an FDD to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(node, graph_name=graph_name))
        handle.write("\n")
