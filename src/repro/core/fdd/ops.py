"""Algorithms on probabilistic FDDs.

All operations preserve the canonical form (ordered tests, no redundant
tests, interned nodes) by always splitting on the *smallest* test among
the operands' roots, in the style of classic BDD ``apply`` algorithms.

The operations provided here are exactly those needed to compile the
guarded fragment of ProbNetKAT:

* :func:`restrict_eq` / :func:`restrict_ne` — partial evaluation given
  knowledge about one field;
* :func:`convex` — convex combination (probabilistic choice);
* :func:`ite` — conditional on a 0/1-valued predicate FDD;
* :func:`negate`, :func:`conjoin`, :func:`disjoin` — predicate algebra;
* :func:`sequence` — sequential composition (the Kleisli composition of
  the underlying packet kernels);
* :func:`map_leaves` — leaf-wise transformation.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.distributions import Dist
from repro.core.fdd.actions import Action, ActionOrDrop
from repro.core.fdd.node import Branch, FddManager, FddNode, Leaf
from repro.core.packet import _DropType


# ---------------------------------------------------------------------------
# restriction (partial evaluation)
# ---------------------------------------------------------------------------

def restrict_eq(node: FddNode, field: str, value: int) -> FddNode:
    """Partially evaluate ``node`` under the knowledge ``field == value``.

    Every test on ``field`` is resolved (to true when it tests ``value``,
    to false otherwise).
    """
    manager = node.manager
    key = ("req", node.uid, field, value)
    cached = manager.cache.get(key)
    if cached is not None:
        return cached
    if isinstance(node, Leaf):
        result: FddNode = node
    else:
        assert isinstance(node, Branch)
        if node.field == field:
            if node.value == value:
                result = restrict_eq(node.hi, field, value)
            else:
                result = restrict_eq(node.lo, field, value)
        elif manager.field_rank(node.field) > manager.field_rank(field):
            # Ordered diagrams cannot test `field` below this point.
            result = node
        else:
            result = manager.branch(
                node.field,
                node.value,
                restrict_eq(node.hi, field, value),
                restrict_eq(node.lo, field, value),
            )
    manager.cache[key] = result
    return result


def restrict_ne(node: FddNode, field: str, value: int) -> FddNode:
    """Partially evaluate ``node`` under the knowledge ``field != value``.

    Only tests of exactly ``field = value`` are resolved (to false); other
    tests on the same field remain undetermined.
    """
    manager = node.manager
    key = ("rne", node.uid, field, value)
    cached = manager.cache.get(key)
    if cached is not None:
        return cached
    if isinstance(node, Leaf):
        result: FddNode = node
    else:
        assert isinstance(node, Branch)
        if node.field == field and node.value == value:
            result = node.lo
        elif node.field == field and node.value > value:
            # Tests increase strictly along paths, so `field = value`
            # cannot occur below.
            result = node
        elif node.field != field and manager.field_rank(node.field) > manager.field_rank(field):
            result = node
        else:
            result = manager.branch(
                node.field,
                node.value,
                restrict_ne(node.hi, field, value),
                restrict_ne(node.lo, field, value),
            )
    manager.cache[key] = result
    return result


def restrict_action(node: FddNode, action: Action) -> FddNode:
    """Partially evaluate ``node`` after the modifications of ``action``."""
    result = node
    for field, value in action.mods:
        result = restrict_eq(result, field, value)
    return result


# ---------------------------------------------------------------------------
# structural helpers
# ---------------------------------------------------------------------------

def _min_test(manager: FddManager, nodes: Sequence[FddNode]) -> tuple[str, int] | None:
    """The smallest root test among the given nodes (None when all leaves)."""
    best: tuple[int, int] | None = None
    best_test: tuple[str, int] | None = None
    for node in nodes:
        if isinstance(node, Branch):
            key = manager.test_key(node.field, node.value)
            if best is None or key < best:
                best = key
                best_test = (node.field, node.value)
    return best_test


# ---------------------------------------------------------------------------
# convex combination and conditionals
# ---------------------------------------------------------------------------

def convex(manager: FddManager, parts: Sequence[tuple[FddNode, object]]) -> FddNode:
    """Convex combination ``Σ_i w_i · d_i`` of FDDs (weights sum to 1)."""
    parts = [(node, weight) for node, weight in parts if weight != 0]
    if not parts:
        raise ValueError("convex combination of an empty family")
    if len(parts) == 1 and parts[0][1] == 1:
        return parts[0][0]
    key = ("convex",) + tuple(
        (node.uid, _weight_key(weight)) for node, weight in parts
    )
    cached = manager.cache.get(key)
    if cached is not None:
        return cached
    test = _min_test(manager, [node for node, _ in parts])
    if test is None:
        dists = [(node.dist, weight) for node, weight in parts]  # type: ignore[union-attr]
        result: FddNode = manager.leaf(Dist.convex(dists, check=False))
    else:
        field, value = test
        hi = convex(manager, [(restrict_eq(node, field, value), w) for node, w in parts])
        lo = convex(manager, [(restrict_ne(node, field, value), w) for node, w in parts])
        result = manager.branch(field, value, hi, lo)
    manager.cache[key] = result
    return result


def _weight_key(weight) -> tuple:
    from fractions import Fraction

    if isinstance(weight, Fraction):
        return ("frac", weight.numerator, weight.denominator)
    return ("float", float(weight))


def _is_true_leaf(manager: FddManager, node: FddNode) -> bool:
    return node is manager.true_leaf


def _is_false_leaf(manager: FddManager, node: FddNode) -> bool:
    return node is manager.false_leaf


def ite(guard: FddNode, then: FddNode, otherwise: FddNode) -> FddNode:
    """Conditional: behave as ``then`` where ``guard`` is true, else ``otherwise``.

    ``guard`` must be a *predicate* FDD, i.e. its leaves are the constant
    true leaf (identity action) or the constant false leaf (drop).
    """
    manager = guard.manager
    if _is_true_leaf(manager, guard):
        return then
    if _is_false_leaf(manager, guard):
        return otherwise
    if isinstance(guard, Leaf):
        raise ValueError(f"guard FDD has a non-boolean leaf: {guard!r}")
    if then is otherwise:
        return then
    key = ("ite", guard.uid, then.uid, otherwise.uid)
    cached = manager.cache.get(key)
    if cached is not None:
        return cached
    test = _min_test(manager, [guard, then, otherwise])
    assert test is not None
    field, value = test
    result = manager.branch(
        field,
        value,
        ite(
            restrict_eq(guard, field, value),
            restrict_eq(then, field, value),
            restrict_eq(otherwise, field, value),
        ),
        ite(
            restrict_ne(guard, field, value),
            restrict_ne(then, field, value),
            restrict_ne(otherwise, field, value),
        ),
    )
    manager.cache[key] = result
    return result


def negate(pred: FddNode) -> FddNode:
    """Negation of a predicate FDD."""
    manager = pred.manager
    return ite(pred, manager.false_leaf, manager.true_leaf)


def conjoin(left: FddNode, right: FddNode) -> FddNode:
    """Conjunction of two predicate FDDs."""
    manager = left.manager
    return ite(left, right, manager.false_leaf)


def disjoin(left: FddNode, right: FddNode) -> FddNode:
    """Disjunction of two predicate FDDs."""
    manager = left.manager
    return ite(left, manager.true_leaf, right)


def is_predicate_fdd(node: FddNode) -> bool:
    """True when every leaf is the constant true or false leaf."""
    manager = node.manager
    from repro.core.fdd.node import leaves

    return all(
        leaf is manager.true_leaf or leaf is manager.false_leaf for leaf in leaves(node)
    )


# ---------------------------------------------------------------------------
# leaf-wise transformation and sequencing
# ---------------------------------------------------------------------------

def map_leaves(
    node: FddNode,
    func: Callable[[Dist[ActionOrDrop]], Dist[ActionOrDrop]],
    _cache: dict[int, FddNode] | None = None,
) -> FddNode:
    """Apply ``func`` to every leaf distribution, rebuilding the diagram."""
    manager = node.manager
    cache = _cache if _cache is not None else {}
    cached = cache.get(node.uid)
    if cached is not None:
        return cached
    if isinstance(node, Leaf):
        result: FddNode = manager.leaf(func(node.dist))
    else:
        assert isinstance(node, Branch)
        result = manager.branch(
            node.field,
            node.value,
            map_leaves(node.hi, func, cache),
            map_leaves(node.lo, func, cache),
        )
    cache[node.uid] = result
    return result


def sequence(first: FddNode, second: FddNode) -> FddNode:
    """Sequential composition of two FDDs (``first ; second``).

    For every path of ``first`` ending in an action distribution, each
    action ``a`` is composed with ``second`` evaluated on the packet *as
    modified by* ``a``: fields written by ``a`` take their new values,
    while fields left untouched take the values learned from the tests
    along the path through ``first`` (equalities on true-branches,
    disequalities on false-branches).
    """
    return _sequence(first, second, (), ())


_Eqs = tuple[tuple[str, int], ...]
_Neqs = tuple[tuple[str, int], ...]


def _sequence(first: FddNode, second: FddNode, eqs: _Eqs, neqs: _Neqs) -> FddNode:
    manager = first.manager
    key = ("seq", first.uid, second.uid, eqs, neqs)
    cached = manager.cache.get(key)
    if cached is not None:
        return cached
    if isinstance(first, Leaf):
        result = _sequence_leaf(manager, first.dist, second, eqs, neqs)
    else:
        assert isinstance(first, Branch)
        field, value = first.field, first.value
        guard = manager.branch(field, value, manager.true_leaf, manager.false_leaf)
        hi = _sequence(first.hi, second, eqs + ((field, value),), neqs)
        lo = _sequence(first.lo, second, eqs, neqs + ((field, value),))
        result = ite(guard, hi, lo)
    manager.cache[key] = result
    return result


def _sequence_leaf(
    manager: FddManager,
    dist: Dist[ActionOrDrop],
    second: FddNode,
    eqs: _Eqs,
    neqs: _Neqs,
) -> FddNode:
    parts: list[tuple[FddNode, object]] = []
    for action, prob in dist.items():
        if isinstance(action, _DropType):
            parts.append((manager.false_leaf, prob))
            continue
        # Knowledge about the intermediate packet: the action's writes win;
        # unmodified fields keep what the path through `first` tells us.
        restricted = restrict_action(second, action)
        for field, value in eqs:
            if not action.modifies(field):
                restricted = restrict_eq(restricted, field, value)
        for field, value in neqs:
            if not action.modifies(field):
                restricted = restrict_ne(restricted, field, value)
        composed = map_leaves(
            restricted,
            lambda leaf_dist, action=action: leaf_dist.map(
                lambda after: action.then(after)
            ),
        )
        parts.append((composed, prob))
    return convex(manager, parts)


def reduce(node: FddNode) -> FddNode:
    """Normalise an FDD by dropping modifications implied by path tests.

    Along the true-branch of a test ``f = v`` the input packet is known to
    have ``f = v``; a leaf modification ``f := v`` below that branch is
    therefore a no-op and is removed.  This brings semantically equal
    diagrams (e.g. those of ``f=1 ; f<-1`` and ``f=1``) to the same
    canonical node, which is what makes FDD equality a sound *and*
    complete equivalence check for the programs the compiler produces.
    """
    return _reduce(node, ())


def _reduce(node: FddNode, eqs: _Eqs) -> FddNode:
    manager = node.manager
    key = ("reduce", node.uid, eqs)
    cached = manager.cache.get(key)
    if cached is not None:
        return cached
    if isinstance(node, Leaf):
        known = dict(eqs)

        def simplify(action: ActionOrDrop) -> ActionOrDrop:
            if isinstance(action, _DropType):
                return action
            kept = {
                field: value
                for field, value in action.mods
                if known.get(field) != value
            }
            return Action(kept)

        result: FddNode = manager.leaf(node.dist.map(simplify))
    else:
        assert isinstance(node, Branch)
        hi = _reduce(node.hi, eqs + ((node.field, node.value),))
        lo = _reduce(node.lo, eqs)
        result = manager.branch(node.field, node.value, hi, lo)
    manager.cache[key] = result
    return result


def sequence_all(nodes: Sequence[FddNode]) -> FddNode:
    """Sequential composition of several FDDs (left to right)."""
    if not nodes:
        raise ValueError("sequence_all of an empty family")
    result = nodes[0]
    for node in nodes[1:]:
        result = sequence(result, node)
    return result
