"""Algorithms on probabilistic FDDs.

All operations preserve the canonical form (ordered tests, no redundant
tests, interned nodes) by always splitting on the *smallest* test among
the operands' roots, in the style of classic BDD ``apply`` algorithms.

Every operation is implemented with an explicit worklist instead of
recursion: the diagrams of network-scale programs contain chains with
one branch per switch (thousands of values on a single field), so
recursive descent would hit the Python recursion limit long before the
diagrams become expensive to process.  Memoisation lives in dedicated
per-operation tables on the :class:`~repro.core.fdd.node.FddManager`
(see :meth:`~repro.core.fdd.node.FddManager.op_cache`), keyed by plain
tuples of node uids — numeric weights are keyed by their exact integer
ratio, so :class:`~fractions.Fraction` and ``float`` representations of
the same number share cache entries.

The operations provided here are exactly those needed to compile the
guarded fragment of ProbNetKAT:

* :func:`restrict_eq` / :func:`restrict_ne` — partial evaluation given
  knowledge about one field;
* :func:`convex` — convex combination (probabilistic choice);
* :func:`ite` — conditional on a 0/1-valued predicate FDD;
* :func:`negate`, :func:`conjoin`, :func:`disjoin` — predicate algebra;
* :func:`sequence` — sequential composition (the Kleisli composition of
  the underlying packet kernels);
* :func:`map_leaves` — leaf-wise transformation.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.distributions import Dist
from repro.core.fdd.actions import Action, ActionOrDrop
from repro.core.fdd.node import Branch, FddManager, FddNode, Leaf
from repro.core.packet import _DropType


# ---------------------------------------------------------------------------
# restriction (partial evaluation)
# ---------------------------------------------------------------------------

def restrict_eq(node: FddNode, field: str, value: int) -> FddNode:
    """Partially evaluate ``node`` under the knowledge ``field == value``.

    Every test on ``field`` is resolved (to true when it tests ``value``,
    to false otherwise).
    """
    manager = node.manager
    cache = manager.op_cache("restrict_eq")
    root_key = (node.uid, field, value)
    cached = cache.get(root_key)
    if cached is not None:
        return cached
    rank = manager.field_rank(field)
    stack = [node]
    while stack:
        current = stack[-1]
        key = (current.uid, field, value)
        if key in cache:
            stack.pop()
            continue
        if isinstance(current, Leaf):
            cache[key] = current
            stack.pop()
            continue
        assert isinstance(current, Branch)
        if current.field == field:
            child = current.hi if current.value == value else current.lo
            result = cache.get((child.uid, field, value))
            if result is None:
                stack.append(child)
                continue
            cache[key] = result
            stack.pop()
        elif manager.field_rank(current.field) > rank:
            # Ordered diagrams cannot test `field` below this point.
            cache[key] = current
            stack.pop()
        else:
            hi = cache.get((current.hi.uid, field, value))
            lo = cache.get((current.lo.uid, field, value))
            if hi is None or lo is None:
                if hi is None:
                    stack.append(current.hi)
                if lo is None:
                    stack.append(current.lo)
                continue
            cache[key] = manager.branch(current.field, current.value, hi, lo)
            stack.pop()
    return cache[root_key]


def restrict_ne(node: FddNode, field: str, value: int) -> FddNode:
    """Partially evaluate ``node`` under the knowledge ``field != value``.

    Only tests of exactly ``field = value`` are resolved (to false); other
    tests on the same field remain undetermined.
    """
    manager = node.manager
    cache = manager.op_cache("restrict_ne")
    root_key = (node.uid, field, value)
    cached = cache.get(root_key)
    if cached is not None:
        return cached
    rank = manager.field_rank(field)
    stack = [node]
    while stack:
        current = stack[-1]
        key = (current.uid, field, value)
        if key in cache:
            stack.pop()
            continue
        if isinstance(current, Leaf):
            cache[key] = current
            stack.pop()
            continue
        assert isinstance(current, Branch)
        if current.field == field and current.value == value:
            cache[key] = current.lo
            stack.pop()
        elif current.field == field and current.value > value:
            # Tests increase strictly along paths, so `field = value`
            # cannot occur below.
            cache[key] = current
            stack.pop()
        elif current.field != field and manager.field_rank(current.field) > rank:
            cache[key] = current
            stack.pop()
        else:
            hi = cache.get((current.hi.uid, field, value))
            lo = cache.get((current.lo.uid, field, value))
            if hi is None or lo is None:
                if hi is None:
                    stack.append(current.hi)
                if lo is None:
                    stack.append(current.lo)
                continue
            cache[key] = manager.branch(current.field, current.value, hi, lo)
            stack.pop()
    return cache[root_key]


def restrict_action(node: FddNode, action: Action) -> FddNode:
    """Partially evaluate ``node`` after the modifications of ``action``."""
    result = node
    for field, value in action.mods:
        result = restrict_eq(result, field, value)
    return result


# ---------------------------------------------------------------------------
# structural helpers
# ---------------------------------------------------------------------------

def _min_test(manager: FddManager, nodes: Sequence[FddNode]) -> tuple[str, int] | None:
    """The smallest root test among the given nodes (None when all leaves)."""
    best: tuple[int, int] | None = None
    best_test: tuple[str, int] | None = None
    for node in nodes:
        if isinstance(node, Branch):
            key = manager.test_key(node.field, node.value)
            if best is None or key < best:
                best = key
                best_test = (node.field, node.value)
    return best_test


def _weight_key(weight) -> tuple[int, int]:
    """Representation-independent cache key of a probability weight."""
    return weight.as_integer_ratio()


# ---------------------------------------------------------------------------
# convex combination and conditionals
# ---------------------------------------------------------------------------

_Parts = tuple[tuple[FddNode, object], ...]


def _convex_key(parts: _Parts) -> tuple:
    return tuple((node.uid, _weight_key(weight)) for node, weight in parts)


def _convex_resolve(cache: dict, parts: _Parts) -> FddNode | None:
    if len(parts) == 1 and parts[0][1] == 1:
        return parts[0][0]
    return cache.get(_convex_key(parts))


def convex(manager: FddManager, parts: Sequence[tuple[FddNode, object]]) -> FddNode:
    """Convex combination ``Σ_i w_i · d_i`` of FDDs (weights sum to 1)."""
    filtered: _Parts = tuple(
        (node, weight) for node, weight in parts if weight != 0
    )
    if not filtered:
        raise ValueError("convex combination of an empty family")
    quick = _convex_resolve(manager.op_cache("convex"), filtered)
    if quick is not None:
        return quick
    cache = manager.op_cache("convex")
    stack: list[_Parts] = [filtered]
    while stack:
        current = stack[-1]
        key = _convex_key(current)
        if key in cache:
            stack.pop()
            continue
        test = _min_test(manager, [node for node, _ in current])
        if test is None:
            dists = [(node.dist, weight) for node, weight in current]  # type: ignore[union-attr]
            cache[key] = manager.leaf(Dist.convex(dists, check=False))
            stack.pop()
            continue
        field, value = test
        hi_parts: _Parts = tuple(
            (restrict_eq(node, field, value), weight) for node, weight in current
        )
        lo_parts: _Parts = tuple(
            (restrict_ne(node, field, value), weight) for node, weight in current
        )
        hi = _convex_resolve(cache, hi_parts)
        lo = _convex_resolve(cache, lo_parts)
        if hi is None or lo is None:
            if hi is None:
                stack.append(hi_parts)
            if lo is None:
                stack.append(lo_parts)
            continue
        cache[key] = manager.branch(field, value, hi, lo)
        stack.pop()
    return cache[_convex_key(filtered)]


def _is_true_leaf(manager: FddManager, node: FddNode) -> bool:
    return node is manager.true_leaf


def _is_false_leaf(manager: FddManager, node: FddNode) -> bool:
    return node is manager.false_leaf


def _ite_shortcut(
    manager: FddManager, guard: FddNode, then: FddNode, otherwise: FddNode
) -> FddNode | None:
    """Terminal cases of ``ite`` (None when a split is required)."""
    if guard is manager.true_leaf:
        return then
    if guard is manager.false_leaf:
        return otherwise
    if isinstance(guard, Leaf):
        raise ValueError(f"guard FDD has a non-boolean leaf: {guard!r}")
    if then is otherwise:
        return then
    return None


def _ite_resolve(
    manager: FddManager, cache: dict, guard: FddNode, then: FddNode, otherwise: FddNode
) -> FddNode | None:
    quick = _ite_shortcut(manager, guard, then, otherwise)
    if quick is not None:
        return quick
    return cache.get((guard.uid, then.uid, otherwise.uid))


def ite(guard: FddNode, then: FddNode, otherwise: FddNode) -> FddNode:
    """Conditional: behave as ``then`` where ``guard`` is true, else ``otherwise``.

    ``guard`` must be a *predicate* FDD, i.e. its leaves are the constant
    true leaf (identity action) or the constant false leaf (drop).
    """
    manager = guard.manager
    cache = manager.op_cache("ite")
    quick = _ite_resolve(manager, cache, guard, then, otherwise)
    if quick is not None:
        return quick
    root_key = (guard.uid, then.uid, otherwise.uid)
    stack = [(guard, then, otherwise)]
    while stack:
        g, t, o = stack[-1]
        key = (g.uid, t.uid, o.uid)
        if key in cache:
            stack.pop()
            continue
        # Frames are only pushed when no shortcut applies, so ``g`` is a
        # branch and a smallest test exists.
        test = _min_test(manager, (g, t, o))
        assert test is not None
        field, value = test
        hi_g = restrict_eq(g, field, value)
        hi_t = restrict_eq(t, field, value)
        hi_o = restrict_eq(o, field, value)
        lo_g = restrict_ne(g, field, value)
        lo_t = restrict_ne(t, field, value)
        lo_o = restrict_ne(o, field, value)
        hi = _ite_resolve(manager, cache, hi_g, hi_t, hi_o)
        lo = _ite_resolve(manager, cache, lo_g, lo_t, lo_o)
        if hi is None or lo is None:
            if hi is None:
                stack.append((hi_g, hi_t, hi_o))
            if lo is None:
                stack.append((lo_g, lo_t, lo_o))
            continue
        cache[key] = manager.branch(field, value, hi, lo)
        stack.pop()
    return cache[root_key]


def negate(pred: FddNode) -> FddNode:
    """Negation of a predicate FDD."""
    manager = pred.manager
    return ite(pred, manager.false_leaf, manager.true_leaf)


def conjoin(left: FddNode, right: FddNode) -> FddNode:
    """Conjunction of two predicate FDDs."""
    manager = left.manager
    return ite(left, right, manager.false_leaf)


def disjoin(left: FddNode, right: FddNode) -> FddNode:
    """Disjunction of two predicate FDDs."""
    manager = left.manager
    return ite(left, manager.true_leaf, right)


def is_predicate_fdd(node: FddNode) -> bool:
    """True when every leaf is the constant true or false leaf."""
    manager = node.manager
    from repro.core.fdd.node import leaves

    return all(
        leaf is manager.true_leaf or leaf is manager.false_leaf for leaf in leaves(node)
    )


# ---------------------------------------------------------------------------
# leaf-wise transformation and sequencing
# ---------------------------------------------------------------------------

def map_leaves(
    node: FddNode,
    func: Callable[[Dist[ActionOrDrop]], Dist[ActionOrDrop]],
    _cache: dict[int, FddNode] | None = None,
) -> FddNode:
    """Apply ``func`` to every leaf distribution, rebuilding the diagram."""
    manager = node.manager
    cache = _cache if _cache is not None else {}
    stack = [node]
    while stack:
        current = stack[-1]
        if current.uid in cache:
            stack.pop()
            continue
        if isinstance(current, Leaf):
            cache[current.uid] = manager.leaf(func(current.dist))
            stack.pop()
            continue
        assert isinstance(current, Branch)
        hi = cache.get(current.hi.uid)
        lo = cache.get(current.lo.uid)
        if hi is None or lo is None:
            if hi is None:
                stack.append(current.hi)
            if lo is None:
                stack.append(current.lo)
            continue
        cache[current.uid] = manager.branch(current.field, current.value, hi, lo)
        stack.pop()
    return cache[node.uid]


def sequence(first: FddNode, second: FddNode) -> FddNode:
    """Sequential composition of two FDDs (``first ; second``).

    For every path of ``first`` ending in an action distribution, each
    action ``a`` is composed with ``second`` evaluated on the packet *as
    modified by* ``a``: fields written by ``a`` take their new values,
    while fields left untouched take the values learned from the tests
    along the path through ``first`` (equalities on true-branches,
    disequalities on false-branches).
    """
    return _sequence(first, second, (), ())


_Eqs = tuple[tuple[str, int], ...]
_Neqs = tuple[tuple[str, int], ...]


def _sequence(first: FddNode, second: FddNode, eqs: _Eqs, neqs: _Neqs) -> FddNode:
    manager = first.manager
    cache = manager.op_cache("sequence")
    root_key = (first.uid, second.uid, eqs, neqs)
    cached = cache.get(root_key)
    if cached is not None:
        return cached
    stack = [(first, second, eqs, neqs)]
    while stack:
        fst, snd, eq, ne = stack[-1]
        key = (fst.uid, snd.uid, eq, ne)
        if key in cache:
            stack.pop()
            continue
        if isinstance(fst, Leaf):
            cache[key] = _sequence_leaf(manager, fst.dist, snd, eq, ne)
            stack.pop()
            continue
        assert isinstance(fst, Branch)
        field, value = fst.field, fst.value
        hi_eq = eq + ((field, value),)
        lo_ne = ne + ((field, value),)
        hi = cache.get((fst.hi.uid, snd.uid, hi_eq, ne))
        lo = cache.get((fst.lo.uid, snd.uid, eq, lo_ne))
        if hi is None or lo is None:
            if hi is None:
                stack.append((fst.hi, snd, hi_eq, ne))
            if lo is None:
                stack.append((fst.lo, snd, eq, lo_ne))
            continue
        guard = manager.branch(field, value, manager.true_leaf, manager.false_leaf)
        cache[key] = ite(guard, hi, lo)
        stack.pop()
    return cache[root_key]


def _sequence_leaf(
    manager: FddManager,
    dist: Dist[ActionOrDrop],
    second: FddNode,
    eqs: _Eqs,
    neqs: _Neqs,
) -> FddNode:
    parts: list[tuple[FddNode, object]] = []
    for action, prob in dist.items():
        if isinstance(action, _DropType):
            parts.append((manager.false_leaf, prob))
            continue
        # Knowledge about the intermediate packet: the action's writes win;
        # unmodified fields keep what the path through `first` tells us.
        restricted = restrict_action(second, action)
        for field, value in eqs:
            if not action.modifies(field):
                restricted = restrict_eq(restricted, field, value)
        for field, value in neqs:
            if not action.modifies(field):
                restricted = restrict_ne(restricted, field, value)
        composed = map_leaves(
            restricted,
            lambda leaf_dist, action=action: leaf_dist.map(
                lambda after: action.then(after)
            ),
        )
        parts.append((composed, prob))
    return convex(manager, parts)


def reduce(node: FddNode) -> FddNode:
    """Normalise an FDD by dropping modifications implied by path tests.

    Along the true-branch of a test ``f = v`` the input packet is known to
    have ``f = v``; a leaf modification ``f := v`` below that branch is
    therefore a no-op and is removed.  This brings semantically equal
    diagrams (e.g. those of ``f=1 ; f<-1`` and ``f=1``) to the same
    canonical node, which is what makes FDD equality a sound *and*
    complete equivalence check for the programs the compiler produces.
    """
    manager = node.manager
    cache = manager.op_cache("reduce")
    root_key = (node.uid, ())
    cached = cache.get(root_key)
    if cached is not None:
        return cached
    stack: list[tuple[FddNode, _Eqs]] = [(node, ())]
    while stack:
        current, eqs = stack[-1]
        key = (current.uid, eqs)
        if key in cache:
            stack.pop()
            continue
        if isinstance(current, Leaf):
            cache[key] = manager.leaf(current.dist.map(_simplifier(dict(eqs))))
            stack.pop()
            continue
        assert isinstance(current, Branch)
        hi_eqs = eqs + ((current.field, current.value),)
        hi = cache.get((current.hi.uid, hi_eqs))
        lo = cache.get((current.lo.uid, eqs))
        if hi is None or lo is None:
            if hi is None:
                stack.append((current.hi, hi_eqs))
            if lo is None:
                stack.append((current.lo, eqs))
            continue
        cache[key] = manager.branch(current.field, current.value, hi, lo)
        stack.pop()
    return cache[root_key]


def _simplifier(known: dict[str, int]):
    """Leaf-map dropping modifications already implied by path tests."""

    def simplify(action: ActionOrDrop) -> ActionOrDrop:
        if isinstance(action, _DropType):
            return action
        kept = {
            field: value
            for field, value in action.mods
            if known.get(field) != value
        }
        return Action(kept)

    return simplify


def sequence_all(nodes: Sequence[FddNode]) -> FddNode:
    """Sequential composition of several FDDs (left to right)."""
    if not nodes:
        raise ValueError("sequence_all of an empty family")
    result = nodes[0]
    for node in nodes[1:]:
        result = sequence(result, node)
    return result
