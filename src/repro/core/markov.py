"""Absorbing Markov chain solvers.

The closed form for ProbNetKAT iteration (§4, Theorem 4.7) requires the
absorption probabilities ``A = (I - Q)^{-1} R`` of a finite absorbing
Markov chain whose transient-to-transient block is ``Q`` and whose
transient-to-absorbing block is ``R``.

Two solvers are provided:

* :func:`solve_absorption` — float64 sparse LU via SciPy (the role played
  by UMFPACK in McNetKAT);
* :func:`solve_absorption_exact` — exact rational Gaussian elimination
  for small systems (mirrors the paper's use of exact arithmetic in the
  frontend and is used by the reference semantics and unit tests).

Both accept the chain in a sparse "dict of rows" form and return dense
row dictionaries mapping absorbing states to probabilities.  Probability
mass that cannot reach any absorbing state (non-termination) is reported
separately so callers can assign it to the drop outcome, which is the
correct limit semantics for guarded loops.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Mapping, Sequence, TypeVar

import numpy as np
from scipy.sparse import csc_matrix, identity
from scipy.sparse.linalg import splu

State = TypeVar("State", bound=Hashable)

#: Numerical tolerance used to clean up tiny negative values from LU solves.
SOLVER_TOLERANCE = 1e-12


def _states_reaching_absorption(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, float | Fraction]],
) -> set[State]:
    """Transient states from which some absorbing state is reachable.

    States outside this set can never be absorbed; their probability mass
    is lost (reported via ``lost_mass``) and they are excluded from the
    linear system, which keeps ``I - Q`` nonsingular even for programs
    with genuinely diverging loops.
    """
    absorbing_set = set(absorbing)
    predecessors: dict[State, set[State]] = {}
    frontier: list[State] = []
    reaching: set[State] = set()
    for state in transient:
        for successor, probability in transitions.get(state, {}).items():
            if probability == 0:
                continue
            if successor in absorbing_set:
                if state not in reaching:
                    reaching.add(state)
                    frontier.append(state)
            else:
                predecessors.setdefault(successor, set()).add(state)
    while frontier:
        state = frontier.pop()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in reaching:
                reaching.add(predecessor)
                frontier.append(predecessor)
    return reaching


class AbsorptionResult(dict):
    """Mapping ``transient state -> {absorbing state -> probability}``.

    The extra attribute :attr:`lost_mass` records, per transient state,
    the probability of never reaching an absorbing state (zero for proper
    absorbing chains).
    """

    def __init__(self, rows: Mapping, lost_mass: Mapping):
        super().__init__(rows)
        self.lost_mass = dict(lost_mass)


def solve_absorption(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, float | Fraction]],
) -> AbsorptionResult:
    """Compute absorption probabilities with a sparse float64 LU solve.

    Parameters
    ----------
    transient:
        The transient states (rows of ``Q`` and ``R``).
    absorbing:
        The absorbing states (columns of ``R``).
    transitions:
        For each transient state, a mapping from successor state to
        transition probability.  Successors may be transient or
        absorbing; rows may be sub-stochastic (mass can be lost).

    Returns
    -------
    AbsorptionResult
        ``result[t][a]`` is the probability of eventually reaching
        absorbing state ``a`` from transient state ``t``.
    """
    transient = list(transient)
    absorbing = list(absorbing)
    if not transient:
        return AbsorptionResult({}, {})
    reaching = _states_reaching_absorption(transient, absorbing, transitions)
    doomed = [state for state in transient if state not in reaching]
    transient = [state for state in transient if state in reaching]
    if not transient:
        return AbsorptionResult(
            {state: {} for state in doomed}, {state: 1.0 for state in doomed}
        )
    t_index = {state: i for i, state in enumerate(transient)}
    a_index = {state: j for j, state in enumerate(absorbing)}
    nt, na = len(transient), len(absorbing)

    q_rows: list[int] = []
    q_cols: list[int] = []
    q_data: list[float] = []
    r_rows: list[int] = []
    r_cols: list[int] = []
    r_data: list[float] = []
    doomed_set = set(doomed)
    for state in transient:
        i = t_index[state]
        for succ, prob in transitions.get(state, {}).items():
            p = float(prob)
            if p == 0.0:
                continue
            if succ in t_index:
                q_rows.append(i)
                q_cols.append(t_index[succ])
                q_data.append(p)
            elif succ in a_index:
                r_rows.append(i)
                r_cols.append(a_index[succ])
                r_data.append(p)
            elif succ in doomed_set:
                continue  # mass entering a doomed state can never be absorbed
            else:
                raise KeyError(f"successor {succ!r} is neither transient nor absorbing")

    q_mat = csc_matrix((q_data, (q_rows, q_cols)), shape=(nt, nt))
    r_mat = csc_matrix((r_data, (r_rows, r_cols)), shape=(nt, na))
    system = (identity(nt, format="csc") - q_mat).tocsc()
    lu = splu(system)
    absorption = lu.solve(r_mat.toarray()) if na else np.zeros((nt, 0))

    rows: dict[State, dict[State, float]] = {}
    lost: dict[State, float] = {}
    for state in transient:
        i = t_index[state]
        row: dict[State, float] = {}
        for j, a_state in enumerate(absorbing):
            value = float(absorption[i, j])
            if value < 0.0:
                if value < -1e-6:
                    raise ArithmeticError(
                        f"negative absorption probability {value} for {state!r}"
                    )
                value = 0.0
            if value > 0.0:
                row[a_state] = min(value, 1.0)
        rows[state] = row
        deficit = 1.0 - sum(row.values())
        lost[state] = deficit if deficit > SOLVER_TOLERANCE else 0.0
    for state in doomed:
        rows[state] = {}
        lost[state] = 1.0
    return AbsorptionResult(rows, lost)


def solve_absorption_exact(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, Fraction | int]],
) -> AbsorptionResult:
    """Exact rational version of :func:`solve_absorption`.

    Solves ``(I - Q) X = R`` by Gaussian elimination over
    :class:`fractions.Fraction`.  Suitable for systems with at most a few
    hundred transient states.
    """
    transient = list(transient)
    absorbing = list(absorbing)
    if not transient:
        return AbsorptionResult({}, {})
    reaching = _states_reaching_absorption(transient, absorbing, transitions)
    doomed = [state for state in transient if state not in reaching]
    doomed_set = set(doomed)
    transient = [state for state in transient if state in reaching]
    if not transient:
        return AbsorptionResult(
            {state: {} for state in doomed}, {state: Fraction(1) for state in doomed}
        )
    t_index = {state: i for i, state in enumerate(transient)}
    a_index = {state: j for j, state in enumerate(absorbing)}
    nt, na = len(transient), len(absorbing)

    # Build the augmented matrix [I - Q | R] with exact fractions.
    matrix: list[list[Fraction]] = [
        [Fraction(0)] * (nt + na) for _ in range(nt)
    ]
    for i in range(nt):
        matrix[i][i] = Fraction(1)
    for state in transient:
        i = t_index[state]
        for succ, prob in transitions.get(state, {}).items():
            p = Fraction(prob)
            if p == 0:
                continue
            if succ in t_index:
                matrix[i][t_index[succ]] -= p
            elif succ in a_index:
                matrix[i][nt + a_index[succ]] += p
            elif succ in doomed_set:
                continue  # mass entering a doomed state can never be absorbed
            else:
                raise KeyError(f"successor {succ!r} is neither transient nor absorbing")

    # Gaussian elimination with partial (non-zero) pivoting.
    for col in range(nt):
        pivot_row = next(
            (r for r in range(col, nt) if matrix[r][col] != 0), None
        )
        if pivot_row is None:
            raise ArithmeticError("I - Q is singular; the chain is not absorbing")
        if pivot_row != col:
            matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        pivot = matrix[col][col]
        if pivot != 1:
            matrix[col] = [entry / pivot for entry in matrix[col]]
        for row in range(nt):
            if row == col or matrix[row][col] == 0:
                continue
            factor = matrix[row][col]
            matrix[row] = [
                entry - factor * matrix[col][k] for k, entry in enumerate(matrix[row])
            ]

    rows: dict[State, dict[State, Fraction]] = {}
    lost: dict[State, Fraction] = {}
    for state in transient:
        i = t_index[state]
        row = {
            absorbing[j]: matrix[i][nt + j]
            for j in range(na)
            if matrix[i][nt + j] != 0
        }
        for value in row.values():
            if value < 0:
                raise ArithmeticError(
                    f"negative absorption probability {value} for {state!r}"
                )
        rows[state] = row
        lost[state] = Fraction(1) - sum(row.values(), Fraction(0))
    for state in doomed:
        rows[state] = {}
        lost[state] = Fraction(1)
    return AbsorptionResult(rows, lost)


def reachable_states(
    start: Sequence[State],
    successors,
) -> list[State]:
    """Breadth-first exploration of the states reachable from ``start``.

    ``successors(state)`` must return an iterable of successor states.
    The result preserves discovery order (deterministic given the input).
    """
    seen: dict[State, None] = {}
    frontier = list(start)
    for state in frontier:
        seen.setdefault(state, None)
    index = 0
    while index < len(frontier):
        state = frontier[index]
        index += 1
        for succ in successors(state):
            if succ not in seen:
                seen[succ] = None
                frontier.append(succ)
    return list(seen)
