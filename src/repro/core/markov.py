"""Absorbing Markov chain solvers.

The closed form for ProbNetKAT iteration (§4, Theorem 4.7) requires the
absorption probabilities ``A = (I - Q)^{-1} R`` of a finite absorbing
Markov chain whose transient-to-transient block is ``Q`` and whose
transient-to-absorbing block is ``R``.

Three solvers are provided:

* :func:`solve_absorption` — float64 sparse LU via SciPy (the role played
  by UMFPACK in McNetKAT);
* :func:`solve_absorption_batched` — like :func:`solve_absorption`, but
  returns an :class:`AbsorptionSystem` that retains the single sparse LU
  factorization of ``I - Q`` so arbitrarily many right-hand sides can be
  solved against it in one batched call (the paper's "compile once,
  query many times" story at the linear-algebra level);
* :func:`solve_absorption_exact` — exact rational Gaussian elimination
  for small systems (mirrors the paper's use of exact arithmetic in the
  frontend and is used by the reference semantics and unit tests).

On top of these, :class:`IncrementalAbsorptionSolver` solves a chain that
*grows* over time: each growth step factorizes only the newly discovered
states, and small steps (m new states on n solved, m ≪ n) skip the full
subsystem machinery entirely via a Schur-complement low-rank update that
factors just the m×m block ``I − Q_new``.

All accept the chain in a sparse "dict of rows" form; the dict-returning
solvers produce dense row dictionaries mapping absorbing states to
probabilities.  Probability mass that cannot reach any absorbing state
(non-termination) is reported separately so callers can assign it to the
drop outcome, which is the correct limit semantics for guarded loops.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from fractions import Fraction
from typing import Hashable, Mapping, Sequence, TypeVar

import numpy as np
from scipy.sparse import csc_matrix, csr_matrix, identity
from scipy.sparse.linalg import splu

State = TypeVar("State", bound=Hashable)

#: Numerical tolerance used to clean up tiny negative values from LU solves.
SOLVER_TOLERANCE = 1e-12


def _states_reaching_absorption(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, float | Fraction]],
) -> set[State]:
    """Transient states from which some absorbing state is reachable.

    States outside this set can never be absorbed; their probability mass
    is lost (reported via ``lost_mass``) and they are excluded from the
    linear system, which keeps ``I - Q`` nonsingular even for programs
    with genuinely diverging loops.
    """
    absorbing_set = set(absorbing)
    predecessors: dict[State, set[State]] = {}
    frontier: list[State] = []
    reaching: set[State] = set()
    for state in transient:
        for successor, probability in transitions.get(state, {}).items():
            if probability == 0:
                continue
            if successor in absorbing_set:
                if state not in reaching:
                    reaching.add(state)
                    frontier.append(state)
            else:
                predecessors.setdefault(successor, set()).add(state)
    while frontier:
        state = frontier.pop()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in reaching:
                reaching.add(predecessor)
                frontier.append(predecessor)
    return reaching


class AbsorptionResult(dict):
    """Mapping ``transient state -> {absorbing state -> probability}``.

    The extra attribute :attr:`lost_mass` records, per transient state,
    the probability of never reaching an absorbing state (zero for proper
    absorbing chains).
    """

    def __init__(self, rows: Mapping, lost_mass: Mapping):
        super().__init__(rows)
        self.lost_mass = dict(lost_mass)


class AbsorptionSystem:
    """An absorbing chain with ``I - Q`` factorized exactly once.

    The sparse LU factorization (:func:`scipy.sparse.linalg.splu`) is the
    expensive part of an absorption solve; this class retains it so that
    any number of right-hand sides — the columns of ``R``, hitting-cost
    vectors, or arbitrary user-supplied batches — can be solved against
    the same factorization.  This is the linear-algebra core of the
    batched matrix backend: one factorization, many queries.

    Attributes
    ----------
    transient:
        The transient states that participate in the linear system (in
        row order of ``Q``/``R``).  States that cannot reach absorption
        are excluded and listed in :attr:`doomed` instead.
    absorbing:
        The absorbing states (column order of ``R``).
    doomed:
        Transient states whose probability of absorption is zero; their
        entire mass is lost (diverges).
    """

    def __init__(
        self,
        transient: list[State],
        absorbing: list[State],
        doomed: list[State],
        lu,
        r_mat: csc_matrix,
    ):
        self.transient = transient
        self.absorbing = absorbing
        self.doomed = doomed
        self._lu = lu
        self._r = r_mat
        self._t_index = {state: i for i, state in enumerate(transient)}
        self._a_index = {state: j for j, state in enumerate(absorbing)}
        self._absorption: np.ndarray | None = None

    # -- indexing ------------------------------------------------------------
    def transient_index(self, state: State) -> int:
        """Row index of a (solvable) transient state."""
        return self._t_index[state]

    def absorbing_index(self, state: State) -> int:
        """Column index of an absorbing state."""
        return self._a_index[state]

    # -- batched solves --------------------------------------------------------
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - Q) X = rhs`` for a (multi-column) right-hand side.

        ``rhs`` must have one row per solvable transient state; any number
        of columns may be supplied and all are solved against the single
        cached factorization.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape[0] != len(self.transient):
            raise ValueError(
                f"right-hand side has {rhs.shape[0]} rows, expected {len(self.transient)}"
            )
        if self._lu is None or rhs.size == 0:
            return np.zeros_like(rhs)
        return self._lu.solve(rhs)

    def absorption_matrix(self) -> np.ndarray:
        """The dense absorption matrix ``A = (I - Q)^{-1} R`` (cached).

        Computed as one batched multi-RHS solve: every column of ``R`` is
        a right-hand side, all solved against the same factorization.
        """
        if self._absorption is None:
            nt, na = len(self.transient), len(self.absorbing)
            if nt == 0 or na == 0 or self._lu is None:
                self._absorption = np.zeros((nt, na))
            else:
                self._absorption = self._lu.solve(self._r.toarray())
        return self._absorption

    def result(self) -> AbsorptionResult:
        """The absorption probabilities in dict-of-rows form.

        Tiny negative LU artefacts are clamped to zero and the per-state
        mass deficit is reported as lost (diverging) mass, exactly like
        :func:`solve_absorption`.
        """
        absorption = self.absorption_matrix()
        rows: dict[State, dict[State, float]] = {}
        lost: dict[State, float] = {}
        for state in self.transient:
            i = self._t_index[state]
            row: dict[State, float] = {}
            for j, a_state in enumerate(self.absorbing):
                value = float(absorption[i, j])
                if value < 0.0:
                    if value < -1e-6:
                        raise ArithmeticError(
                            f"negative absorption probability {value} for {state!r}"
                        )
                    value = 0.0
                if value > 0.0:
                    row[a_state] = min(value, 1.0)
            rows[state] = row
            deficit = 1.0 - sum(row.values())
            lost[state] = deficit if deficit > SOLVER_TOLERANCE else 0.0
        for state in self.doomed:
            rows[state] = {}
            lost[state] = 1.0
        return AbsorptionResult(rows, lost)


def solve_absorption_batched(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, float | Fraction]],
) -> AbsorptionSystem:
    """Build an :class:`AbsorptionSystem` with a single ``splu`` factorization.

    Parameters
    ----------
    transient:
        The transient states (rows of ``Q`` and ``R``).
    absorbing:
        The absorbing states (columns of ``R``).
    transitions:
        For each transient state, a mapping from successor state to
        transition probability.  Successors may be transient or
        absorbing; rows may be sub-stochastic (mass can be lost).
    """
    transient = list(transient)
    absorbing = list(absorbing)
    if not transient:
        return AbsorptionSystem([], absorbing, [], None, csc_matrix((0, len(absorbing))))
    reaching = _states_reaching_absorption(transient, absorbing, transitions)
    doomed = [state for state in transient if state not in reaching]
    transient = [state for state in transient if state in reaching]
    nt, na = len(transient), len(absorbing)
    if not transient:
        return AbsorptionSystem([], absorbing, doomed, None, csc_matrix((0, na)))
    t_index = {state: i for i, state in enumerate(transient)}
    a_index = {state: j for j, state in enumerate(absorbing)}

    q_rows: list[int] = []
    q_cols: list[int] = []
    q_data: list[float] = []
    r_rows: list[int] = []
    r_cols: list[int] = []
    r_data: list[float] = []
    doomed_set = set(doomed)
    for state in transient:
        i = t_index[state]
        for succ, prob in transitions.get(state, {}).items():
            p = float(prob)
            if p == 0.0:
                continue
            if succ in t_index:
                q_rows.append(i)
                q_cols.append(t_index[succ])
                q_data.append(p)
            elif succ in a_index:
                r_rows.append(i)
                r_cols.append(a_index[succ])
                r_data.append(p)
            elif succ in doomed_set:
                continue  # mass entering a doomed state can never be absorbed
            else:
                raise KeyError(f"successor {succ!r} is neither transient nor absorbing")

    q_mat = csc_matrix((q_data, (q_rows, q_cols)), shape=(nt, nt))
    r_mat = csc_matrix((r_data, (r_rows, r_cols)), shape=(nt, na))
    system = (identity(nt, format="csc") - q_mat).tocsc()
    lu = splu(system)
    return AbsorptionSystem(transient, absorbing, doomed, lu, r_mat)


class IncrementalAbsorptionSolver:
    """An absorption solver that factorizes only the *growth* of a chain.

    Forward exploration of a loop discovers its transient states
    incrementally: every new seed may extend the reachable state space,
    but (a) the transition row of a state never changes once computed,
    and (b) exploration always closes a seed's forward reachability —
    so a previously solved state can never gain a successor later.  Its
    absorption distribution is therefore *final* the moment it is
    solved, and a later growth step only needs to solve the subsystem of
    the newly discovered states, treating already-solved states as
    absorbing *gateways* whose (known) absorption distributions are
    composed in afterwards.

    The result: every transient state participates in exactly one —
    small — factorization, instead of the whole chain being re-solved
    from scratch on every new seed.

    Small growth steps go further: when m new states join an n-state
    solved chain with ``m <= schur_crossover * n``, the float path runs a
    *Schur-complement growth update* (:meth:`_schur_update`) instead of a
    fresh subsystem factorization.  Because exploration closes forward
    reachability, the old→new coupling block ``C`` of the bordered system
    is structurally zero, so the Schur complement
    ``I − Q_new − B·(I−Q_old)^{-1}·C`` collapses to the m×m block
    ``I − Q_new``; the update factors only that block and composes the
    gateway distributions by one dense matrix product ``B·G`` rather than
    per-entry Python dict loops.  Successful updates increment
    :attr:`schur_updates` and leave :attr:`factorizations` untouched — the
    counter pair backends and telemetry export.  When a solve shows
    degraded conditioning (negative mass or row sums above one beyond the
    LU tolerance), the solver warns once and falls back to a fresh
    subsystem factorization for that step.

    Attributes
    ----------
    factorizations:
        Number of full subsystem factorizations performed.  Callers use
        this to assert that repeated seeds over an already-solved state
        space perform no linear algebra at all, and that small growth
        steps avoid full factorizations entirely.
    schur_updates:
        Number of growth steps answered by the low-rank Schur path.
    schur_crossover:
        Growth fraction above which a fresh factorization is cheaper than
        the Schur update (default ``0.25``): the update runs only while
        ``m <= schur_crossover * n_solved``.
    system:
        The :class:`AbsorptionSystem` of the most recent full subsystem
        solve (``None`` before the first solve and in exact mode; Schur
        updates do not replace it).
    """

    def __init__(
        self,
        exact: bool = False,
        schur_crossover: float = 0.25,
        watch=None,
    ):
        self.exact = exact
        self.schur_crossover = schur_crossover
        self.watch = watch
        self.factorizations = 0
        self.schur_updates = 0
        self.system: AbsorptionSystem | None = None
        self._solutions: dict[State, dict[State, Fraction | float]] = {}
        self._lost: dict[State, Fraction | float] = {}
        self._schur_warned = False

    def _measure(self, name: str):
        """A ``watch.measure`` section, or a no-op without a stopwatch."""
        return self.watch.measure(name) if self.watch is not None else nullcontext()

    @property
    def solved_states(self) -> frozenset:
        """The transient states whose absorption rows are already final."""
        return frozenset(self._solutions)

    def needs_solve(self, transient: Sequence[State]) -> bool:
        """Whether ``transient`` contains states not yet solved."""
        solutions = self._solutions
        return any(state not in solutions for state in transient)

    def solution(self, state: State) -> dict[State, Fraction | float]:
        """The (final) absorption row of a solved transient state."""
        return self._solutions[state]

    def lost_mass(self, state: State) -> Fraction | float:
        """The diverging probability mass of a solved transient state."""
        return self._lost[state]

    def solve(
        self,
        transient: Sequence[State],
        transitions: Mapping[State, Mapping[State, float | Fraction]],
    ) -> AbsorptionResult:
        """Absorption probabilities for ``transient``, solving only growth.

        ``transitions`` must contain one (immutable) row per *not yet
        solved* transient state (rows of already-solved states are never
        read); successors not themselves transient (or previously
        solved) are taken to be absorbing.  States already solved by an
        earlier call are answered from the cache; only genuinely new
        states enter the subsystem factorization.
        """
        solutions = self._solutions
        new = [state for state in transient if state not in solutions]
        if new:
            self._solve_subsystem(new, transitions)
        rows = {state: solutions[state] for state in transient}
        lost = {state: self._lost[state] for state in transient}
        return AbsorptionResult(rows, lost)

    def _solve_subsystem(
        self,
        new: list[State],
        transitions: Mapping[State, Mapping[State, float | Fraction]],
    ) -> None:
        solutions = self._solutions
        new_set = set(new)
        gateways: list[State] = []
        gateway_set: set[State] = set()
        targets: list[State] = []
        target_set: set[State] = set()
        for state in new:
            for successor in transitions[state]:
                if successor in new_set:
                    continue
                if successor in solutions:
                    if successor not in gateway_set:
                        gateway_set.add(successor)
                        gateways.append(successor)
                elif successor not in target_set:
                    target_set.add(successor)
                    targets.append(successor)
        if (
            not self.exact
            and solutions
            and len(new) <= self.schur_crossover * len(solutions)
        ):
            if self._schur_update(new, transitions, gateways, targets):
                return
            if not self._schur_warned:
                self._schur_warned = True
                warnings.warn(
                    "Schur-complement growth update detected degraded "
                    "conditioning; falling back to a fresh subsystem "
                    "factorization",
                    RuntimeWarning,
                    stacklevel=3,
                )
        sub_absorbing = targets + gateways
        sub_transitions = {state: transitions[state] for state in new}
        if self.exact:
            with self._measure("factorize"):
                result = solve_absorption_exact(new, sub_absorbing, sub_transitions)
            self.system = None
        else:
            with self._measure("factorize"):
                self.system = solve_absorption_batched(
                    new, sub_absorbing, sub_transitions
                )
            with self._measure("solve"):
                result = self.system.result()
        self.factorizations += 1

        zero: Fraction | float = Fraction(0) if self.exact else 0.0
        for state in new:
            raw = result.get(state, {})
            lost = result.lost_mass.get(state, zero)
            final: dict[State, Fraction | float] = {}
            for target, probability in raw.items():
                if target in gateway_set:
                    # Mass entering an already-solved state follows that
                    # state's final absorption distribution.
                    for outcome, weight in solutions[target].items():
                        final[outcome] = final.get(outcome, zero) + probability * weight
                    lost = lost + probability * self._lost[target]
                else:
                    final[target] = final.get(target, zero) + probability
            solutions[state] = final
            self._lost[state] = lost

    def _schur_update(
        self,
        new: list[State],
        transitions: Mapping[State, Mapping[State, float | Fraction]],
        gateways: list[State],
        targets: list[State],
    ) -> bool:
        """Solve a small growth step via the Schur complement, in place.

        Forward exploration closes reachability, so solved states never
        point back into the growth block: the old→new coupling ``C`` of
        the bordered system is structurally zero and the Schur complement
        ``I − Q_new − B·(I−Q_old)^{-1}·C`` is just the m×m block
        ``I − Q_new``.  The final absorption rows are then

            ``A_new = (I − Q_new)^{-1} · (R_new + B · G)``

        where ``B`` couples new states to solved gateways and ``G``
        stacks the gateways' (final) absorption rows — one sparse-dense
        product instead of per-entry dict composition.  Lost mass falls
        out of the same algebra: a gateway's divergence shrinks its row
        sum of ``G``, so each new state's deficit ``1 − Σ A_new`` already
        includes mass forwarded into diverging gateways.

        Returns ``True`` after committing solutions for every new state.
        Returns ``False`` — leaving the solver untouched — when the solve
        shows degraded conditioning, so the caller can redo the step with
        a fresh full factorization.
        """
        solutions = self._solutions
        sub_transitions = {state: transitions[state] for state in new}
        reaching = _states_reaching_absorption(
            new, targets + gateways, sub_transitions
        )
        live = [state for state in new if state in reaching]
        doomed = [state for state in new if state not in reaching]
        doomed_set = set(doomed)

        outcome_index: dict[State, int] = {}
        outcomes: list[State] = []

        def outcome_id(outcome: State) -> int:
            j = outcome_index.get(outcome)
            if j is None:
                j = outcome_index[outcome] = len(outcomes)
                outcomes.append(outcome)
            return j

        m = len(live)
        if m == 0:
            for state in doomed:
                solutions[state] = {}
                self._lost[state] = 1.0
            self.schur_updates += 1
            return True

        t_index = {state: i for i, state in enumerate(live)}
        g_index = {gateway: k for k, gateway in enumerate(gateways)}
        q_rows: list[int] = []
        q_cols: list[int] = []
        q_data: list[float] = []
        b_rows: list[int] = []
        b_cols: list[int] = []
        b_data: list[float] = []
        r_entries: list[tuple[int, int, float]] = []
        for state in live:
            i = t_index[state]
            for succ, prob in transitions[state].items():
                p = float(prob)
                if p == 0.0:
                    continue
                if succ in t_index:
                    q_rows.append(i)
                    q_cols.append(t_index[succ])
                    q_data.append(p)
                elif succ in g_index:
                    b_rows.append(i)
                    b_cols.append(g_index[succ])
                    b_data.append(p)
                elif succ in doomed_set:
                    continue  # mass entering a doomed state can never be absorbed
                else:
                    r_entries.append((i, outcome_id(succ), p))

        # Gateway absorption rows register their outcomes too, so the
        # outcome index is complete only after this pass.
        gateway_rows = [
            [(outcome_id(outcome), float(weight)) for outcome, weight in solutions[g].items()]
            for g in gateways
        ]
        n_out = len(outcomes)

        rhs = np.zeros((m, n_out))
        for i, j, p in r_entries:
            rhs[i, j] += p
        if gateways:
            g_dense = np.zeros((len(gateways), n_out))
            for k, row in enumerate(gateway_rows):
                for j, weight in row:
                    g_dense[k, j] += weight
            b_mat = csr_matrix(
                (b_data, (b_rows, b_cols)), shape=(m, len(gateways))
            )
            rhs += b_mat @ g_dense

        i_minus_q = (
            identity(m, format="csc")
            - csc_matrix((q_data, (q_rows, q_cols)), shape=(m, m))
        ).tocsc()
        try:
            with self._measure("factorize"):
                lu = splu(i_minus_q)
            with self._measure("solve"):
                absorption = lu.solve(rhs) if n_out else np.zeros((m, 0))
        except RuntimeError:
            return False

        # Validate before committing anything: a detected deficit means
        # the update is numerically untrustworthy for this step.
        if n_out and absorption.min(initial=0.0) < -1e-6:
            return False
        row_sums = absorption.sum(axis=1) if n_out else np.zeros(m)
        if row_sums.max(initial=0.0) > 1.0 + 1e-6:
            return False
        if n_out:
            np.clip(absorption, 0.0, 1.0, out=absorption)

        for state in live:
            i = t_index[state]
            row = absorption[i]
            final: dict[State, float] = {
                outcomes[j]: float(row[j]) for j in np.nonzero(row)[0]
            }
            deficit = 1.0 - float(row.sum())
            solutions[state] = final
            self._lost[state] = deficit if deficit > SOLVER_TOLERANCE else 0.0
        for state in doomed:
            solutions[state] = {}
            self._lost[state] = 1.0
        self.schur_updates += 1
        return True


def solve_absorption(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, float | Fraction]],
) -> AbsorptionResult:
    """Compute absorption probabilities with a sparse float64 LU solve.

    Parameters
    ----------
    transient:
        The transient states (rows of ``Q`` and ``R``).
    absorbing:
        The absorbing states (columns of ``R``).
    transitions:
        For each transient state, a mapping from successor state to
        transition probability.  Successors may be transient or
        absorbing; rows may be sub-stochastic (mass can be lost).

    Returns
    -------
    AbsorptionResult
        ``result[t][a]`` is the probability of eventually reaching
        absorbing state ``a`` from transient state ``t``.
    """
    return solve_absorption_batched(transient, absorbing, transitions).result()


def solve_absorption_exact(
    transient: Sequence[State],
    absorbing: Sequence[State],
    transitions: Mapping[State, Mapping[State, Fraction | int]],
) -> AbsorptionResult:
    """Exact rational version of :func:`solve_absorption`.

    Solves ``(I - Q) X = R`` by Gaussian elimination over
    :class:`fractions.Fraction`.  Suitable for systems with at most a few
    hundred transient states.
    """
    transient = list(transient)
    absorbing = list(absorbing)
    if not transient:
        return AbsorptionResult({}, {})
    reaching = _states_reaching_absorption(transient, absorbing, transitions)
    doomed = [state for state in transient if state not in reaching]
    doomed_set = set(doomed)
    transient = [state for state in transient if state in reaching]
    if not transient:
        return AbsorptionResult(
            {state: {} for state in doomed}, {state: Fraction(1) for state in doomed}
        )
    t_index = {state: i for i, state in enumerate(transient)}
    a_index = {state: j for j, state in enumerate(absorbing)}
    nt, na = len(transient), len(absorbing)

    # Build the augmented matrix [I - Q | R] with exact fractions.
    matrix: list[list[Fraction]] = [
        [Fraction(0)] * (nt + na) for _ in range(nt)
    ]
    for i in range(nt):
        matrix[i][i] = Fraction(1)
    for state in transient:
        i = t_index[state]
        for succ, prob in transitions.get(state, {}).items():
            p = Fraction(prob)
            if p == 0:
                continue
            if succ in t_index:
                matrix[i][t_index[succ]] -= p
            elif succ in a_index:
                matrix[i][nt + a_index[succ]] += p
            elif succ in doomed_set:
                continue  # mass entering a doomed state can never be absorbed
            else:
                raise KeyError(f"successor {succ!r} is neither transient nor absorbing")

    # Gaussian elimination with partial (non-zero) pivoting.
    for col in range(nt):
        pivot_row = next(
            (r for r in range(col, nt) if matrix[r][col] != 0), None
        )
        if pivot_row is None:
            raise ArithmeticError("I - Q is singular; the chain is not absorbing")
        if pivot_row != col:
            matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        pivot = matrix[col][col]
        if pivot != 1:
            matrix[col] = [entry / pivot for entry in matrix[col]]
        for row in range(nt):
            if row == col or matrix[row][col] == 0:
                continue
            factor = matrix[row][col]
            matrix[row] = [
                entry - factor * matrix[col][k] for k, entry in enumerate(matrix[row])
            ]

    rows: dict[State, dict[State, Fraction]] = {}
    lost: dict[State, Fraction] = {}
    for state in transient:
        i = t_index[state]
        row = {
            absorbing[j]: matrix[i][nt + j]
            for j in range(na)
            if matrix[i][nt + j] != 0
        }
        for value in row.values():
            if value < 0:
                raise ArithmeticError(
                    f"negative absorption probability {value} for {state!r}"
                )
        rows[state] = row
        lost[state] = Fraction(1) - sum(row.values(), Fraction(0))
    for state in doomed:
        rows[state] = {}
        lost[state] = Fraction(1)
    return AbsorptionResult(rows, lost)


def reachable_states(
    start: Sequence[State],
    successors,
) -> list[State]:
    """Breadth-first exploration of the states reachable from ``start``.

    ``successors(state)`` must return an iterable of successor states.
    The result preserves discovery order (deterministic given the input).
    """
    seen: dict[State, None] = {}
    frontier = list(start)
    for state in frontier:
        seen.setdefault(state, None)
    index = 0
    while index < len(frontier):
        state = frontier[index]
        index += 1
        for succ in successors(state):
            if succ not in seen:
                seen[succ] = None
                frontier.append(succ)
    return list(seen)
