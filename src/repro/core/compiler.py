"""The native backend compiler: ProbNetKAT → probabilistic FDDs (§5.1).

The compiler translates guarded, history-free programs into canonical
probabilistic FDDs over the single-packet state space ``Pk + ∅``:

* atomic programs map directly to FDD primitives;
* composite programs are combined with the FDD algorithms of
  :mod:`repro.core.fdd.ops`;
* ``while`` loops are solved in closed form (§4, Theorem 4.7): the loop
  body FDD is converted to a sparse transition matrix over symbolic
  packet classes (dynamic domain reduction), the absorbing-chain system
  ``A = (I − Q)^{-1} R`` is solved, and the result is converted back into
  an FDD.

Programs outside the guarded fragment (bare union of non-predicates,
Kleene star) are rejected with :class:`GuardedFragmentError`, mirroring
McNetKAT's pragmatic restrictions (§5).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.fdd import ops
from repro.core.fdd.matrix import (
    SymbolicPacket,
    class_transition,
    enumerate_classes,
    matrix_to_fdd,
)
from repro.core.fdd.node import FddManager, FddNode, mentioned_values
from repro.core.markov import solve_absorption, solve_absorption_exact
from repro.core.packet import DROP, _DropType


class GuardedFragmentError(ValueError):
    """Raised when a program falls outside the guarded fragment (§3, §5)."""


class Compiler:
    """Compiles guarded ProbNetKAT programs to probabilistic FDDs.

    Parameters
    ----------
    manager:
        The FDD manager to intern nodes in.  All programs compared for
        equivalence must be compiled with the same manager.
    exact:
        When ``True``, loops are solved with exact rational Gaussian
        elimination; otherwise the sparse float64 LU solver is used
        (the role UMFPACK plays in McNetKAT).
    class_limit:
        Upper bound on the number of symbolic packet classes enumerated
        when solving a loop.  Compilation fails with a helpful error when
        the bound is exceeded; large network models should use the
        forward interpreter instead.
    """

    def __init__(
        self,
        manager: FddManager | None = None,
        exact: bool = False,
        class_limit: int = 100_000,
    ):
        self.manager = manager if manager is not None else FddManager()
        self.exact = exact
        self.class_limit = class_limit
        # Memoisation keyed by AST node identity.  The policy object is kept
        # in the value so its id cannot be recycled for a different node.
        self._cache: dict[int, tuple[s.Policy, FddNode]] = {}
        self._raw_cache: dict[int, tuple[s.Policy, FddNode]] = {}
        # Depth counter: >0 while inside compile_unreduced, where nested
        # compile() calls (sub-policies) also skip the reduce pass.
        self._unreduced = 0

    # -- public API -----------------------------------------------------------
    def compile(self, policy: s.Policy) -> FddNode:
        """Compile a policy to its canonical FDD (memoised per AST node).

        The result is normalised with :func:`repro.core.fdd.ops.reduce` so
        that semantically equal programs compile to the identical interned
        node, making FDD comparison a complete equivalence check.
        """
        if self._unreduced:
            return self.compile_unreduced(policy)
        cached = self._cache.get(id(policy))
        if cached is not None and cached[0] is policy:
            return cached[1]
        result = ops.reduce(self._compile(policy))
        self._cache[id(policy)] = (policy, result)
        return result

    def compile_unreduced(self, policy: s.Policy) -> FddNode:
        """Compile without the :func:`~repro.core.fdd.ops.reduce` passes.

        The reduce normalisation only matters when FDDs are compared for
        semantic equality; evaluation-only consumers (the interpreter's
        compiled-body fast path) skip it — for the whole subtree — as
        redundant leaf modifications are harmless no-ops under action
        application.  The two entry points keep separate memo tables but
        share all interned structure through the manager.
        """
        cached = self._raw_cache.get(id(policy))
        if cached is not None and cached[0] is policy:
            return cached[1]
        self._unreduced += 1
        try:
            result = self._compile(policy)
        finally:
            self._unreduced -= 1
        self._raw_cache[id(policy)] = (policy, result)
        return result

    def compile_predicate(self, pred: s.Predicate) -> FddNode:
        """Compile a predicate to a 0/1-valued FDD."""
        if not isinstance(pred, s.Predicate):
            raise TypeError(f"expected a predicate, got {pred!r}")
        return self.compile(pred)

    # -- translation ------------------------------------------------------------
    def _compile(self, policy: s.Policy) -> FddNode:
        manager = self.manager
        if isinstance(policy, s.FalseP):
            return manager.false_leaf
        if isinstance(policy, s.TrueP):
            return manager.true_leaf
        if isinstance(policy, s.Test):
            return manager.from_test(policy.field, policy.value)
        if isinstance(policy, s.Assign):
            return manager.from_assign(policy.field, policy.value)
        if isinstance(policy, s.Not):
            return ops.negate(self.compile(policy.pred))
        if isinstance(policy, s.And):
            return ops.conjoin(self.compile(policy.left), self.compile(policy.right))
        if isinstance(policy, s.Or):
            return ops.disjoin(self.compile(policy.left), self.compile(policy.right))
        if isinstance(policy, s.Seq):
            parts = [self.compile(part) for part in policy.parts]
            return ops.sequence_all(parts)
        if isinstance(policy, s.Union):
            if all(isinstance(part, s.Predicate) for part in policy.parts):
                result = manager.false_leaf
                for part in policy.parts:
                    result = ops.disjoin(result, self.compile(part))
                return result
            raise GuardedFragmentError(
                "union of non-predicate policies is outside the guarded fragment; "
                "use if/while/case instead"
            )
        if isinstance(policy, s.Choice):
            parts = [(self.compile(branch), prob) for branch, prob in policy.branches]
            return ops.convex(manager, parts)
        if isinstance(policy, s.IfThenElse):
            guard = self.compile(policy.guard)
            return ops.ite(guard, self.compile(policy.then), self.compile(policy.otherwise))
        if isinstance(policy, s.Case):
            # Fold the branches iteratively (equivalent to case_to_ite):
            # a wide case (one branch per switch) must not consume stack
            # proportional to the number of branches.
            result = self.compile(policy.default)
            for guard, branch in reversed(policy.branches):
                result = ops.ite(self.compile(guard), self.compile(branch), result)
            return result
        if isinstance(policy, s.WhileDo):
            return self._compile_while(policy)
        if isinstance(policy, s.Star):
            raise GuardedFragmentError(
                "Kleene star is outside the guarded fragment; use while loops"
            )
        raise TypeError(f"unknown policy node {type(policy)!r}")

    # -- loops --------------------------------------------------------------------
    def _compile_while(self, loop: s.WhileDo) -> FddNode:
        """Closed-form compilation of ``while t do p`` (§4).

        Over the single-packet state space the loop induces an absorbing
        Markov chain whose transient states are the packet classes
        satisfying the guard and whose absorbing states are the classes
        violating it (plus drop).  The absorption probabilities give the
        loop's big-step behaviour exactly.
        """
        manager = self.manager
        guard_fdd = self.compile(loop.guard)
        body_fdd = self.compile(loop.body)

        # Shared symbolic domain for guard and body.
        domains: dict[str, set[int]] = {}
        for node in (guard_fdd, body_fdd):
            for field, values in mentioned_values(node).items():
                domains.setdefault(field, set()).update(values)
        classes = enumerate_classes(domains, limit=self.class_limit)

        def guard_holds(cls: SymbolicPacket) -> bool:
            dist = ops_evaluate_bool(manager, guard_fdd, cls)
            return dist

        transient = [cls for cls in classes if guard_holds(cls)]
        absorbing: list[SymbolicPacket | _DropType] = [
            cls for cls in classes if not guard_holds(cls)
        ]
        absorbing.append(DROP)

        transitions: dict[SymbolicPacket, dict] = {}
        for cls in transient:
            row: dict = {}
            for outcome, prob in class_transition(body_fdd, cls).items():
                row[outcome] = row.get(outcome, Fraction(0)) + prob
            transitions[cls] = row

        solver = solve_absorption_exact if self.exact else solve_absorption
        result = solver(transient, absorbing, transitions)

        rows: dict[SymbolicPacket, Dist] = {}
        for cls in classes:
            if guard_holds(cls):
                row = dict(result.get(cls, {}))
                lost = result.lost_mass.get(cls, 0)
                if lost:
                    # Mass that never exits the loop diverges; the guarded
                    # limit semantics assigns it to drop.
                    row[DROP] = row.get(DROP, 0) + lost
                rows[cls] = Dist(row, check=False)
            else:
                # Guard already false: the loop is the identity.
                rows[cls] = Dist.point(cls)

        domain_map: Mapping[str, tuple[int, ...]] = {
            field: tuple(sorted(values)) for field, values in domains.items()
        }
        return matrix_to_fdd(manager, domain_map, rows, default=manager.false_leaf)


def ops_evaluate_bool(manager: FddManager, pred_fdd: FddNode, cls: SymbolicPacket) -> bool:
    """Evaluate a predicate FDD on a symbolic class (must be boolean-leaved)."""
    from repro.core.fdd.matrix import evaluate_class
    from repro.core.fdd.actions import Action

    dist = evaluate_class(pred_fdd, cls)
    support = dist.support()
    if len(support) != 1:
        raise GuardedFragmentError("loop guard compiled to a non-deterministic FDD")
    (outcome,) = support
    if isinstance(outcome, _DropType):
        return False
    if isinstance(outcome, Action) and outcome.is_identity():
        return True
    raise GuardedFragmentError("loop guard FDD has a non-boolean leaf")


def compile_policy(
    policy: s.Policy,
    manager: FddManager | None = None,
    exact: bool = False,
    class_limit: int = 100_000,
) -> FddNode:
    """Convenience wrapper: compile ``policy`` with a fresh :class:`Compiler`."""
    return Compiler(manager=manager, exact=exact, class_limit=class_limit).compile(policy)
