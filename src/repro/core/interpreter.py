"""Forward interpreter: reachability-restricted analysis of guarded programs.

Where the compiler (:mod:`repro.core.compiler`) constructs the *complete*
big-step matrix of a program, this interpreter pushes a concrete input
packet (or input distribution) forward through the program, exploring
only the packet states actually reachable from that input.  Loops are
still solved exactly with the absorbing-chain closed form of §4, but the
chain is restricted to the reachable subspace — this is the scalable path
used for the network analyses of §6 and §7, mirroring how McNetKAT
queries models of the form ``in ; …``.

The interpreter also provides :meth:`Interpreter.certain_outcomes`, a
purely structural possibility analysis used to decide properties that
must hold with probability one (e.g. *k*-resilience, §7) without any
numerical computation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import networkx as nx

from repro.core import syntax as s
from repro.core.compiler import Compiler, GuardedFragmentError
from repro.core.distributions import Dist
from repro.core.fdd.evaluator import CompiledBody
from repro.core.fdd.node import FddManager
from repro.core.markov import IncrementalAbsorptionSolver
from repro.core.packet import DROP, Packet, _DropType

Outcome = Packet | _DropType


def eval_predicate(pred: s.Predicate, packet: Packet) -> bool:
    """Evaluate a predicate on a single concrete packet."""
    if isinstance(pred, s.TrueP):
        return True
    if isinstance(pred, s.FalseP):
        return False
    if isinstance(pred, s.Test):
        return packet.test(pred.field, pred.value)
    if isinstance(pred, s.And):
        return eval_predicate(pred.left, packet) and eval_predicate(pred.right, packet)
    if isinstance(pred, s.Or):
        return eval_predicate(pred.left, packet) or eval_predicate(pred.right, packet)
    if isinstance(pred, s.Not):
        return not eval_predicate(pred.pred, packet)
    raise TypeError(f"not a predicate: {pred!r}")


class Interpreter:
    """Forward distribution propagation over the single-packet state space.

    Parameters
    ----------
    exact:
        Solve loop absorption systems with exact rational arithmetic
        (slower, but yields exact probabilities).  The default uses the
        sparse float64 LU solver.
    max_loop_states:
        Safety bound on the number of reachable states explored per loop.
    compile_bodies:
        Compile loop bodies once into FDD segments and compute transition
        rows by FDD evaluation instead of AST interpretation (the
        McNetKAT fast path; see :mod:`repro.core.fdd.evaluator`).  Bodies
        the compiler cannot handle — e.g. nested loops — silently fall
        back to AST interpretation, so the flag is always safe to leave
        on; turn it off to measure the interpreted baseline.
    compiler:
        Optional :class:`~repro.core.compiler.Compiler` to compile loop
        bodies with (shared with a backend, so FDDs intern in one
        manager).  A private compiler is created on first use otherwise.
    """

    def __init__(
        self,
        exact: bool = False,
        max_loop_states: int = 2_000_000,
        compile_bodies: bool = True,
        compiler: Compiler | None = None,
    ):
        self.exact = exact
        self.max_loop_states = max_loop_states
        self.compile_bodies = compile_bodies
        self._compiler = compiler
        # Per-Case dispatch tables: id(case) -> (case, dispatch table).  The
        # node itself is kept in the value so its id cannot be recycled.
        self._dispatch: dict[
            int, tuple[s.Case, tuple[str, dict[int, s.Policy], s.Policy] | None]
        ] = {}
        # Per-loop caches: explored transition rows and solved absorption rows.
        self._loop_nodes: dict[int, s.WhileDo] = {}
        self._loop_rows: dict[int, dict[Packet, Dist[Outcome]]] = {}
        self._loop_solutions: dict[int, dict[Packet, Dist[Outcome]]] = {}
        # Compiled-policy fast path: id(policy) -> (policy, CompiledBody|None).
        # Keyed by the *body* AST node, so a loop body and the unrolled
        # first hop preceding the loop (the same node in network models)
        # share one compiled body.
        self._compiled: dict[int, tuple[s.Policy, CompiledBody | None]] = {}
        # Incremental absorption state, per loop.
        self._loop_solvers: dict[int, IncrementalAbsorptionSolver] = {}

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release pooled resources owned by this interpreter.

        A no-op for the sequential interpreter; subclasses that own
        worker pools (:class:`repro.backends.parallel.ParallelInterpreter`)
        override it.  Backends and analysis sessions call ``close()`` on
        the interpreters they own, tying pool lifetime to their own.
        """

    def __enter__(self) -> "Interpreter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API -----------------------------------------------------------
    def run(self, policy: s.Policy, inputs: Dist[Outcome] | Packet) -> Dist[Outcome]:
        """Run ``policy`` on an input packet or distribution over packets."""
        if isinstance(inputs, Packet):
            return self.run_packet(policy, inputs)
        return self._bind(policy, inputs)

    def run_packet(self, policy: s.Policy, packet: Packet) -> Dist[Outcome]:
        """Output distribution of ``policy`` on one concrete input packet."""
        if isinstance(policy, s.Predicate):
            return Dist.point(packet if eval_predicate(policy, packet) else DROP)
        if isinstance(policy, s.Assign):
            return Dist.point(packet.set(policy.field, policy.value))
        if isinstance(policy, s.Seq):
            dist: Dist[Outcome] = Dist.point(packet)
            for part in policy.parts:
                dist = self._bind(part, dist)
            return dist
        if isinstance(policy, s.Union):
            raise GuardedFragmentError(
                "union of non-predicate policies is outside the guarded fragment"
            )
        if isinstance(policy, s.Choice):
            parts = [
                (self.run_packet(branch, packet), prob)
                for branch, prob in policy.branches
            ]
            return Dist.convex(parts, check=False)
        if isinstance(policy, s.IfThenElse):
            branch = policy.then if eval_predicate(policy.guard, packet) else policy.otherwise
            return self.run_packet(branch, packet)
        if isinstance(policy, s.Case):
            return self.run_packet(self._select_case(policy, packet), packet)
        if isinstance(policy, s.WhileDo):
            return self._run_while(policy, packet)
        if isinstance(policy, s.Star):
            raise GuardedFragmentError("Kleene star is outside the guarded fragment")
        raise TypeError(f"unknown policy node {type(policy)!r}")

    # -- helpers ---------------------------------------------------------------
    def _bind(self, policy: s.Policy, dist: Dist[Outcome]) -> Dist[Outcome]:
        compiled = self._compiled_policy(policy)
        parts: list[tuple[Dist[Outcome], object]] = []
        for outcome, mass in dist.items():
            if isinstance(outcome, _DropType):
                parts.append((Dist.point(DROP), mass))
            elif compiled is not None:
                parts.append((compiled.run_packet(outcome), mass))
            else:
                parts.append((self.run_packet(policy, outcome), mass))
        return Dist.convex(parts, check=False)

    def _select_case(self, policy: s.Case, packet: Packet) -> s.Policy:
        """Select the branch of a ``case`` for a packet, using fast dispatch.

        When every guard is a simple test on one common field (the shape
        produced by the network model builders, ``case sw=1 … case sw=n``)
        the lookup is a dictionary access instead of a linear scan.
        """
        entry = self._dispatch.get(id(policy))
        if entry is None or entry[0] is not policy:
            entry = (policy, _build_dispatch(policy))
            self._dispatch[id(policy)] = entry
        dispatch = entry[1]
        if dispatch is not None:
            field, table, default = dispatch
            value = packet.get(field)
            if value is not None and value in table:
                return table[value]
            return default
        for guard, branch in policy.branches:
            if eval_predicate(guard, packet):
                return branch
        return policy.default

    # -- loops --------------------------------------------------------------------
    def _run_while(self, loop: s.WhileDo, packet: Packet) -> Dist[Outcome]:
        if not eval_predicate(loop.guard, packet):
            return Dist.point(packet)
        if self._loop_nodes.get(id(loop)) is not loop:
            # Either a new loop or an id collision with a collected node:
            # (re)initialise the caches for this loop object.
            self._reset_loop(loop)
        solutions = self._loop_solutions.setdefault(id(loop), {})
        cached = solutions.get(packet)
        if cached is not None:
            return cached
        self._solve_loop_from(loop, packet)
        return self._loop_solutions[id(loop)][packet]

    def _reset_loop(self, loop: s.WhileDo) -> None:
        key = id(loop)
        self._loop_nodes[key] = loop
        self._loop_rows[key] = {}
        self._loop_solutions[key] = {}
        self._loop_solvers.pop(key, None)

    def body_compiler(self) -> Compiler:
        """The compiler used for loop bodies (created on first use)."""
        if self._compiler is None:
            self._compiler = Compiler(manager=FddManager(), exact=self.exact)
        return self._compiler

    def _compiled_policy(self, policy: s.Policy) -> CompiledBody | None:
        """The compiled fast-path evaluator of ``policy`` (``None`` = interpret).

        Cached per AST node; ineligible policies (nested loops, unions,
        anything the compiler rejects) cache ``None`` so the check is one
        dictionary lookup on every subsequent visit.
        """
        if not self.compile_bodies:
            return None
        entry = self._compiled.get(id(policy))
        if entry is not None and entry[0] is policy:
            return entry[1]
        compiled = CompiledBody.try_compile(
            policy, self.body_compiler(), exact=self.exact
        )
        self._compiled[id(policy)] = (policy, compiled)
        return compiled

    def _compiled_body(self, loop: s.WhileDo) -> CompiledBody | None:
        """The loop's compiled body, or ``None`` when it must be interpreted."""
        return self._compiled_policy(loop.body)

    def _explore_loop(self, loop: s.WhileDo, seed: Packet) -> None:
        """Explore the reachable loop-head states starting from ``seed``.

        Transition rows come from the compiled body (one FDD walk per
        state) whenever the body is eligible; otherwise from a full AST
        interpretation of the body per state.
        """
        rows = self._loop_rows.setdefault(id(loop), {})
        compiled = self._compiled_body(loop)
        frontier = [seed]
        while frontier:
            state = frontier.pop()
            if state in rows:
                continue
            if len(rows) >= self.max_loop_states:
                raise RuntimeError(
                    f"loop exploration exceeded {self.max_loop_states} states"
                )
            if compiled is not None:
                row = compiled.run_packet(state)
            else:
                row = self.run_packet(loop.body, state)
            rows[state] = row
            for outcome in row.support():
                if isinstance(outcome, _DropType):
                    continue
                if eval_predicate(loop.guard, outcome) and outcome not in rows:
                    frontier.append(outcome)

    def _solve_loop_from(self, loop: s.WhileDo, seed: Packet) -> None:
        """Solve the loop's absorbing chain for all currently known states.

        The solve is incremental: the per-loop
        :class:`~repro.core.markov.IncrementalAbsorptionSolver` keeps the
        factorized absorption system alive, transition rows are converted
        to solver weights only once (when first explored), and the system
        is re-factorized only when new transient states appeared since
        the last solve.
        """
        self._explore_loop(loop, seed)
        key = id(loop)
        rows = self._loop_rows[key]
        solver = self._loop_solvers.get(key)
        if solver is None:
            solver = self._loop_solvers[key] = IncrementalAbsorptionSolver(
                exact=self.exact
            )

        # The solver only reads rows of not-yet-solved states (solved
        # distributions are final), so only those are converted — and
        # nothing converted is retained past the solve.
        solved = solver.solved_states
        transitions: dict[Packet, dict[Outcome, object]] = {}
        for state, row in rows.items():
            if state in solved:
                continue
            if self.exact:
                transitions[state] = {
                    succ: Fraction(prob) for succ, prob in row.items()
                }
            else:
                transitions[state] = {
                    succ: float(prob) for succ, prob in row.items()
                }
        if not transitions:
            return
        transient = list(rows)
        result = solver.solve(transient, transitions)

        solutions = self._loop_solutions.setdefault(key, {})
        for state in transient:
            if state in solutions:
                # Solved states never gain successors, so their
                # absorption distributions are final.
                continue
            out = dict(result.get(state, {}))
            lost = result.lost_mass.get(state, 0)
            if lost:
                # Diverging mass is assigned to drop (guarded limit semantics).
                out[DROP] = out.get(DROP, 0) + lost
            solutions[state] = Dist(out, check=False)

    # -- statistics ----------------------------------------------------------------
    def loop_stats(self) -> dict[str, int]:
        """Aggregate statistics over every loop this interpreter has solved.

        ``factorizations`` counts full linear-system factorizations
        (growth events); repeated seeds over an already-solved state
        space do not increase it, and small growth steps answered by the
        Schur-complement low-rank path count under ``schur_updates``
        instead.  ``compiled_loops`` counts loops whose bodies run on
        the compiled-FDD fast path.
        """
        return {
            "loops": len(self._loop_nodes),
            "states": sum(len(rows) for rows in self._loop_rows.values()),
            "factorizations": sum(
                solver.factorizations for solver in self._loop_solvers.values()
            ),
            "schur_updates": sum(
                solver.schur_updates for solver in self._loop_solvers.values()
            ),
            "compiled_loops": sum(
                1
                for loop in self._loop_nodes.values()
                if (entry := self._compiled.get(id(loop.body))) is not None
                and entry[1] is not None
            ),
        }

    # -- structural possibility analysis ----------------------------------------
    def certain_outcomes(self, policy: s.Policy, packet: Packet) -> tuple[frozenset[Outcome], bool]:
        """The set of possible outcomes and whether the program may diverge.

        Returns ``(outcomes, may_diverge)`` where ``outcomes`` is the
        support of the output distribution (every outcome reachable with
        positive probability) and ``may_diverge`` indicates that some
        probability mass may never leave a loop.  Useful for verifying
        probability-one properties (e.g. resilience) exactly, without
        numerical solves.
        """
        if isinstance(policy, s.Predicate):
            out: Outcome = packet if eval_predicate(policy, packet) else DROP
            return frozenset([out]), False
        if isinstance(policy, s.Assign):
            return frozenset([packet.set(policy.field, policy.value)]), False
        if isinstance(policy, s.Seq):
            current: frozenset[Outcome] = frozenset([packet])
            diverge = False
            for part in policy.parts:
                next_outcomes: set[Outcome] = set()
                for outcome in current:
                    if isinstance(outcome, _DropType):
                        next_outcomes.add(DROP)
                        continue
                    outs, d = self.certain_outcomes(part, outcome)
                    next_outcomes.update(outs)
                    diverge = diverge or d
                current = frozenset(next_outcomes)
            return current, diverge
        if isinstance(policy, s.Choice):
            outcomes: set[Outcome] = set()
            diverge = False
            for branch, _prob in policy.branches:
                outs, d = self.certain_outcomes(branch, packet)
                outcomes.update(outs)
                diverge = diverge or d
            return frozenset(outcomes), diverge
        if isinstance(policy, s.IfThenElse):
            branch = policy.then if eval_predicate(policy.guard, packet) else policy.otherwise
            return self.certain_outcomes(branch, packet)
        if isinstance(policy, s.Case):
            return self.certain_outcomes(self._select_case(policy, packet), packet)
        if isinstance(policy, s.WhileDo):
            return self._certain_outcomes_while(policy, packet)
        raise GuardedFragmentError(f"unsupported construct in possibility analysis: {policy!r}")

    def _certain_outcomes_while(
        self, loop: s.WhileDo, packet: Packet
    ) -> tuple[frozenset[Outcome], bool]:
        if not eval_predicate(loop.guard, packet):
            return frozenset([packet]), False
        # Explore the support graph of the loop body over loop-head states.
        graph = nx.DiGraph()
        outcomes: set[Outcome] = set()
        diverge = False
        seen: set[Packet] = set()
        frontier = [packet]
        while frontier:
            state = frontier.pop()
            if state in seen:
                continue
            seen.add(state)
            graph.add_node(state)
            outs, d = self.certain_outcomes(loop.body, state)
            diverge = diverge or d
            for outcome in outs:
                if isinstance(outcome, _DropType) or not eval_predicate(loop.guard, outcome):
                    outcomes.add(outcome)
                    graph.add_edge(state, _EXIT)
                else:
                    graph.add_edge(state, outcome)
                    if outcome not in seen:
                        frontier.append(outcome)
        # A loop diverges when some reachable loop-head state cannot exit.
        can_exit = (
            set(nx.ancestors(graph, _EXIT)) if graph.has_node(_EXIT) else set()
        )
        for state in seen:
            if state not in can_exit:
                diverge = True
                break
        return frozenset(outcomes), diverge


class _Exit:
    """Sentinel node marking loop exit in the possibility-analysis graph."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "EXIT"


_EXIT = _Exit()
_MISSING = object()


def _build_dispatch(
    policy: s.Case,
) -> tuple[str, dict[int, s.Policy], s.Policy] | None:
    """Build a dictionary dispatch table for single-field ``case`` guards.

    Delegates to the evaluator's :func:`~repro.core.fdd.evaluator._dispatch_table`
    so the AST interpreter and the compiled-body fast path share one
    definition of case-dispatch semantics (first duplicate guard wins,
    mixed guards fall back to a linear scan).
    """
    from repro.core.fdd.evaluator import _dispatch_table

    dispatch = _dispatch_table(policy)
    if dispatch is None:
        return None
    field, table = dispatch
    return field, table, policy.default


def output_distribution(
    policy: s.Policy,
    inputs: Dist[Outcome] | Packet | Iterable[Packet],
    exact: bool = False,
) -> Dist[Outcome]:
    """Convenience wrapper: run ``policy`` on packets or a distribution.

    When ``inputs`` is an iterable of packets, the uniform distribution
    over them is used (the convention for multi-ingress network queries).
    """
    interp = Interpreter(exact=exact)
    if isinstance(inputs, (Packet, Dist)):
        return interp.run(policy, inputs)
    packets = list(inputs)
    return interp.run(policy, Dist.uniform(packets))
