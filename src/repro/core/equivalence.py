"""Program equivalence and refinement checking.

Corollary 3.2 of the paper reduces program equivalence to equality of the
stochastic matrices ``B[[p]]`` and ``B[[q]]``; in the implementation this
becomes equality of canonical FDDs (which, thanks to hash-consing, is a
pointer comparison).  For large network models, where full compilation is
impractical, equivalence and refinement are checked on the output
distributions of a given set of input packets — which is exactly what the
network properties of §2 and §7 require (the models are of the form
``in ; …`` and only the ingress packets matter).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core import syntax as s
from repro.core.compiler import Compiler
from repro.core.distributions import Dist
from repro.core.fdd.node import FddManager, FddNode
from repro.core.interpreter import Interpreter, Outcome
from repro.core.packet import DROP, Packet


# ---------------------------------------------------------------------------
# full (FDD-based) equivalence
# ---------------------------------------------------------------------------

def compile_pair(
    p: s.Policy,
    q: s.Policy,
    manager: FddManager | None = None,
    exact: bool = True,
) -> tuple[FddNode, FddNode]:
    """Compile two programs with a shared manager (required for comparison)."""
    manager = manager if manager is not None else FddManager()
    compiler = Compiler(manager=manager, exact=exact)
    return compiler.compile(p), compiler.compile(q)


def fdd_equivalent(
    p: s.Policy,
    q: s.Policy,
    manager: FddManager | None = None,
    exact: bool = True,
) -> bool:
    """Full program equivalence ``p ≡ q`` via canonical FDDs (Corollary 3.2).

    With exact arithmetic, structurally identical FDDs are interned to the
    same node, so the comparison is exact.
    """
    fdd_p, fdd_q = compile_pair(p, q, manager=manager, exact=exact)
    return fdd_p is fdd_q


# ---------------------------------------------------------------------------
# input-restricted equivalence and refinement
# ---------------------------------------------------------------------------

def output_distributions(
    p: s.Policy,
    inputs: Sequence[Packet],
    exact: bool = False,
    interpreter: Interpreter | None = None,
) -> dict[Packet, Dist[Outcome]]:
    """Per-input output distributions of ``p`` (forward interpretation)."""
    interp = interpreter if interpreter is not None else Interpreter(exact=exact)
    return {packet: interp.run_packet(p, packet) for packet in inputs}


def output_equivalent(
    p: s.Policy,
    q: s.Policy,
    inputs: Iterable[Packet],
    exact: bool = False,
    tolerance: float = 1e-9,
) -> bool:
    """Equivalence of ``p`` and ``q`` restricted to the given input packets."""
    inputs = list(inputs)
    dists_p = output_distributions(p, inputs, exact=exact)
    dists_q = output_distributions(q, inputs, exact=exact)
    for packet in inputs:
        if exact:
            if dists_p[packet] != dists_q[packet]:
                return False
        elif not dists_p[packet].close_to(dists_q[packet], tolerance=tolerance):
            return False
    return True


def refines(
    p: s.Policy,
    q: s.Policy,
    inputs: Iterable[Packet],
    exact: bool = False,
    tolerance: float = 1e-9,
) -> bool:
    """The refinement order ``p ≤ q`` restricted to the given inputs.

    ``p ≤ q`` holds when, for every input, ``q`` produces each output
    *packet* with probability at least that of ``p`` (the drop outcome is
    excluded, following the paper: ``q`` delivers packets with higher
    probability than ``p``).
    """
    inputs = list(inputs)
    dists_p = output_distributions(p, inputs, exact=exact)
    dists_q = output_distributions(q, inputs, exact=exact)
    ignore = frozenset([DROP])
    for packet in inputs:
        if not dists_p[packet].dominated_by(
            dists_q[packet], tolerance=tolerance, ignore=ignore
        ):
            return False
    return True


def strictly_refines(
    p: s.Policy,
    q: s.Policy,
    inputs: Iterable[Packet],
    exact: bool = False,
    tolerance: float = 1e-9,
) -> bool:
    """The strict refinement ``p < q``: ``p ≤ q`` and not ``q ≤ p``."""
    inputs = list(inputs)
    return refines(p, q, inputs, exact=exact, tolerance=tolerance) and not refines(
        q, p, inputs, exact=exact, tolerance=tolerance
    )


def compare(
    p: s.Policy,
    q: s.Policy,
    inputs: Iterable[Packet],
    exact: bool = False,
    tolerance: float = 1e-9,
) -> str:
    """Classify the relationship between two programs on the given inputs.

    Returns one of ``"≡"``, ``"<"``, ``">"``, or ``"incomparable"`` — the
    entries used in Figure 11(c) of the paper.
    """
    inputs = list(inputs)
    le = refines(p, q, inputs, exact=exact, tolerance=tolerance)
    ge = refines(q, p, inputs, exact=exact, tolerance=tolerance)
    if le and ge:
        return "≡"
    if le:
        return "<"
    if ge:
        return ">"
    return "incomparable"
