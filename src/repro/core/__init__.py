"""Core of the McNetKAT reproduction: language, semantics, and compiler.

The most commonly used names are re-exported here so that user code can
simply write::

    from repro.core import test, assign, seq, ite, while_do, Packet
"""

from repro.core.packet import DROP, Packet, PacketUniverse
from repro.core.distributions import Dist
from repro.core.syntax import (
    Assign,
    Case,
    Choice,
    IfThenElse,
    Not,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    Union,
    WhileDo,
    assign,
    assign_all,
    case,
    choice,
    conj,
    disj,
    drop,
    ite,
    neg,
    seq,
    skip,
    star,
    test,
    test_all,
    uniform,
    union,
    while_do,
)
from repro.core.sugar import first_up, increment, local, locals_in, uniform_among_up
from repro.core.pretty import pretty, pretty_multiline
from repro.core.parser import parse, parse_predicate
from repro.core.fields import FieldSpec, FieldTable
from repro.core.compiler import Compiler, GuardedFragmentError, compile_policy
from repro.core.interpreter import Interpreter, eval_predicate, output_distribution
from repro.core.equivalence import (
    compare,
    fdd_equivalent,
    output_equivalent,
    refines,
    strictly_refines,
)

__all__ = [
    "Assign",
    "Case",
    "Choice",
    "Compiler",
    "DROP",
    "Dist",
    "FieldSpec",
    "FieldTable",
    "GuardedFragmentError",
    "IfThenElse",
    "Interpreter",
    "Not",
    "Packet",
    "PacketUniverse",
    "Policy",
    "Predicate",
    "Seq",
    "Star",
    "Test",
    "Union",
    "WhileDo",
    "assign",
    "assign_all",
    "case",
    "choice",
    "compare",
    "compile_policy",
    "conj",
    "disj",
    "drop",
    "eval_predicate",
    "fdd_equivalent",
    "first_up",
    "increment",
    "ite",
    "local",
    "locals_in",
    "neg",
    "output_distribution",
    "output_equivalent",
    "parse",
    "parse_predicate",
    "pretty",
    "pretty_multiline",
    "refines",
    "seq",
    "skip",
    "star",
    "strictly_refines",
    "test",
    "test_all",
    "uniform",
    "uniform_among_up",
    "union",
    "while_do",
]
