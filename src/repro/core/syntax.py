"""Abstract syntax for ProbNetKAT (guarded and history-free fragment).

The grammar follows Figure 2 of the paper:

* predicates ``t, u`` — ``drop``, ``skip``, ``f = n``, disjunction,
  conjunction, negation;
* programs ``p, q`` — predicates (filters), assignments ``f <- n``,
  union ``p & q``, sequencing ``p ; q``, probabilistic choice
  ``p (+)_r q``, and iteration ``p*``;
* the guarded constructs ``if``/``while``/``case`` are first-class AST
  nodes (the backends only accept guarded programs; the general union and
  star are retained so the reference semantics can exercise them).

All nodes are immutable and hashable.  Programs are built either with the
node constructors or with the small DSL helpers (:func:`test`,
:func:`assign`, :func:`seq`, :func:`choice`, :func:`ite`,
:func:`while_do`, ...), and can be combined with operators:

``p >> q``  sequencing, ``p | q``  union, ``~t`` negation (predicates),
``t & u`` conjunction (predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence


# ---------------------------------------------------------------------------
# probabilities
# ---------------------------------------------------------------------------

def as_prob(value: float | int | Fraction) -> Fraction:
    """Convert a user-supplied probability to an exact :class:`Fraction`.

    Floats are converted via their decimal string form so that ``0.25``
    becomes ``1/4`` rather than a 53-bit binary approximation.
    """
    if isinstance(value, bool):
        raise TypeError("booleans are not probabilities")
    if isinstance(value, Fraction):
        prob = value
    elif isinstance(value, int):
        prob = Fraction(value)
    elif isinstance(value, float):
        prob = Fraction(str(value))
    else:
        raise TypeError(f"unsupported probability type {type(value)!r}")
    if prob < 0 or prob > 1:
        raise ValueError(f"probability {prob} outside [0, 1]")
    return prob


# ---------------------------------------------------------------------------
# base classes
# ---------------------------------------------------------------------------

class Policy:
    """Base class of all ProbNetKAT programs."""

    __slots__ = ()

    # operators -------------------------------------------------------------
    def __rshift__(self, other: "Policy") -> "Policy":
        """``p >> q`` is sequential composition ``p ; q``."""
        return seq(self, other)

    def __or__(self, other: "Policy") -> "Policy":
        """``p | q`` is parallel composition (union) ``p & q``."""
        return union(self, other)

    def choice(self, prob: float | Fraction, other: "Policy") -> "Policy":
        """``p.choice(r, q)`` is ``p ⊕_r q``."""
        return choice((self, prob), (other, 1 - as_prob(prob)))

    def star(self) -> "Policy":
        """Kleene iteration ``p*`` (not available to the guarded backends)."""
        return Star(self)

    # structural helpers -----------------------------------------------------
    def children(self) -> tuple["Policy", ...]:
        """Immediate sub-policies (predicates included)."""
        return ()

    def walk(self) -> Iterator["Policy"]:
        """Pre-order traversal of the syntax tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of AST nodes."""
        return sum(1 for _ in self.walk())

    def fields(self) -> frozenset[str]:
        """All field names mentioned by tests or assignments."""
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, (Test, Assign)):
                names.add(node.field)
        return frozenset(names)

    def field_values(self) -> dict[str, frozenset[int]]:
        """Per-field sets of values mentioned by tests or assignments.

        This is the information used by *dynamic domain reduction* when
        converting FDDs to sparse matrices (§5.1).
        """
        values: dict[str, set[int]] = {}
        for node in self.walk():
            if isinstance(node, (Test, Assign)):
                values.setdefault(node.field, set()).add(node.value)
        return {name: frozenset(vals) for name, vals in values.items()}

    def is_predicate(self) -> bool:
        return isinstance(self, Predicate)

    def __reduce__(self):
        """Support pickling (multiprocessing) despite frozen slotted dataclasses."""
        import dataclasses

        return (type(self), tuple(getattr(self, f.name) for f in dataclasses.fields(self)))

    def is_guarded(self) -> bool:
        """True when the program avoids bare union and iteration.

        The guarded fragment (§3) replaces union/iteration by
        conditionals and while loops; predicates may still use
        disjunction.  ``Case`` branching counts as guarded.
        """
        for node in self.walk():
            if isinstance(node, Star):
                return False
            if isinstance(node, Union) and not all(
                part.is_predicate() for part in node.parts
            ):
                return False
        return True

    def __repr__(self) -> str:
        from repro.core.pretty import pretty
        return pretty(self)


class Predicate(Policy):
    """Base class of predicates; predicates are also policies (filters)."""

    __slots__ = ()

    def __and__(self, other: "Predicate") -> "Predicate":
        return conj(self, other)

    def __or__(self, other: "Policy") -> "Policy":
        if isinstance(other, Predicate):
            return disj(self, other)
        return union(self, other)

    def __invert__(self) -> "Predicate":
        return neg(self)


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------

@dataclass(frozen=True, repr=False)
class TrueP(Predicate):
    """The always-true predicate ``skip``."""
    __slots__ = ()


@dataclass(frozen=True, repr=False)
class FalseP(Predicate):
    """The always-false predicate ``drop``."""
    __slots__ = ()


@dataclass(frozen=True, repr=False)
class Test(Predicate):
    """Field test ``f = n``."""
    __slots__ = ("field", "value")
    field: str
    value: int


@dataclass(frozen=True, repr=False)
class And(Predicate):
    """Predicate conjunction ``t ; u``."""
    __slots__ = ("left", "right")
    left: Predicate
    right: Predicate

    def children(self) -> tuple[Policy, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class Or(Predicate):
    """Predicate disjunction ``t & u``."""
    __slots__ = ("left", "right")
    left: Predicate
    right: Predicate

    def children(self) -> tuple[Policy, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class Not(Predicate):
    """Predicate negation ``¬t``."""
    __slots__ = ("pred",)
    pred: Predicate

    def children(self) -> tuple[Policy, ...]:
        return (self.pred,)


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------

@dataclass(frozen=True, repr=False)
class Assign(Policy):
    """Field assignment ``f <- n``."""
    __slots__ = ("field", "value")
    field: str
    value: int


@dataclass(frozen=True, repr=False)
class Seq(Policy):
    """Sequential composition ``p ; q`` (n-ary, flattened)."""
    __slots__ = ("parts",)
    parts: tuple[Policy, ...]

    def children(self) -> tuple[Policy, ...]:
        return self.parts


@dataclass(frozen=True, repr=False)
class Union(Policy):
    """Parallel composition ``p & q`` (n-ary, flattened).

    Only predicate unions are accepted by the guarded backends.
    """
    __slots__ = ("parts",)
    parts: tuple[Policy, ...]

    def children(self) -> tuple[Policy, ...]:
        return self.parts


@dataclass(frozen=True, repr=False)
class Choice(Policy):
    """Probabilistic choice ``p1 @ r1 ⊕ ... ⊕ pk @ rk`` with ``Σ ri = 1``."""
    __slots__ = ("branches",)
    branches: tuple[tuple[Policy, Fraction], ...]

    def children(self) -> tuple[Policy, ...]:
        return tuple(policy for policy, _ in self.branches)


@dataclass(frozen=True, repr=False)
class Star(Policy):
    """Kleene iteration ``p*`` (general, non-guarded)."""
    __slots__ = ("body",)
    body: Policy

    def children(self) -> tuple[Policy, ...]:
        return (self.body,)


@dataclass(frozen=True, repr=False)
class IfThenElse(Policy):
    """Guarded conditional ``if t then p else q``."""
    __slots__ = ("guard", "then", "otherwise")
    guard: Predicate
    then: Policy
    otherwise: Policy

    def children(self) -> tuple[Policy, ...]:
        return (self.guard, self.then, self.otherwise)


@dataclass(frozen=True, repr=False)
class WhileDo(Policy):
    """Guarded loop ``while t do p``."""
    __slots__ = ("guard", "body")
    guard: Predicate
    body: Policy

    def children(self) -> tuple[Policy, ...]:
        return (self.guard, self.body)


@dataclass(frozen=True, repr=False)
class Case(Policy):
    """N-ary disjoint branching (§6, added for parallel compilation).

    ``case t1 then p1 else case t2 then p2 ... else default``.  Semantically
    identical to a cascade of conditionals, but the native backend may
    compile the branches in parallel.
    """
    __slots__ = ("branches", "default")
    branches: tuple[tuple[Predicate, Policy], ...]
    default: Policy

    def children(self) -> tuple[Policy, ...]:
        parts: list[Policy] = []
        for guard, policy in self.branches:
            parts.append(guard)
            parts.append(policy)
        parts.append(self.default)
        return tuple(parts)


# canonical constants -------------------------------------------------------

SKIP = TrueP()
"""The identity program / always-true predicate."""

DROP_POLICY = FalseP()
"""The drop program / always-false predicate."""


# ---------------------------------------------------------------------------
# smart constructors (the DSL)
# ---------------------------------------------------------------------------

def skip() -> Predicate:
    """The identity policy ``skip``."""
    return SKIP


def drop() -> Predicate:
    """The drop policy ``drop``."""
    return DROP_POLICY


def test(field: str, value: int) -> Predicate:
    """Field test ``field = value``."""
    return Test(field, int(value))


def assign(field: str, value: int) -> Policy:
    """Field modification ``field <- value``."""
    return Assign(field, int(value))


def conj(*preds: Predicate) -> Predicate:
    """Predicate conjunction (identity: ``skip``)."""
    result: Predicate = SKIP
    for pred in preds:
        if not isinstance(pred, Predicate):
            raise TypeError(f"conjunction requires predicates, got {pred!r}")
        if isinstance(pred, TrueP):
            continue
        if isinstance(result, TrueP):
            result = pred
        else:
            result = And(result, pred)
    return result


def disj(*preds: Predicate) -> Predicate:
    """Predicate disjunction (identity: ``drop``)."""
    result: Predicate = DROP_POLICY
    for pred in preds:
        if not isinstance(pred, Predicate):
            raise TypeError(f"disjunction requires predicates, got {pred!r}")
        if isinstance(pred, FalseP):
            continue
        if isinstance(result, FalseP):
            result = pred
        else:
            result = Or(result, pred)
    return result


def neg(pred: Predicate) -> Predicate:
    """Predicate negation with double-negation elimination."""
    if not isinstance(pred, Predicate):
        raise TypeError(f"negation requires a predicate, got {pred!r}")
    if isinstance(pred, Not):
        return pred.pred
    if isinstance(pred, TrueP):
        return DROP_POLICY
    if isinstance(pred, FalseP):
        return SKIP
    return Not(pred)


def seq(*policies: Policy) -> Policy:
    """Sequential composition, flattening nested sequences.

    ``skip`` operands are dropped; a ``drop`` operand short-circuits the
    whole sequence to ``drop`` only when it is in policy position (this is
    sound because ``drop ; p ≡ drop``).
    """
    parts: list[Policy] = []
    for policy in policies:
        if not isinstance(policy, Policy):
            raise TypeError(f"seq requires policies, got {policy!r}")
        if isinstance(policy, TrueP):
            continue
        if isinstance(policy, FalseP):
            return DROP_POLICY
        if isinstance(policy, Seq):
            parts.extend(policy.parts)
        else:
            parts.append(policy)
    if not parts:
        return SKIP
    if len(parts) == 1:
        return parts[0]
    return Seq(tuple(parts))


def union(*policies: Policy) -> Policy:
    """Parallel composition, flattening nested unions."""
    parts: list[Policy] = []
    for policy in policies:
        if not isinstance(policy, Policy):
            raise TypeError(f"union requires policies, got {policy!r}")
        if isinstance(policy, FalseP):
            continue
        if isinstance(policy, Union):
            parts.extend(policy.parts)
        else:
            parts.append(policy)
    if not parts:
        return DROP_POLICY
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(part, Predicate) for part in parts):
        return disj(*parts)  # type: ignore[arg-type]
    return Union(tuple(parts))


def choice(*branches: tuple[Policy, float | Fraction]) -> Policy:
    """Probabilistic choice from ``(policy, probability)`` pairs.

    The probabilities must sum to 1.  Branches with probability 0 are
    removed and identical branches are merged.
    """
    weighted: dict[Policy, Fraction] = {}
    order: list[Policy] = []
    for policy, prob in branches:
        if not isinstance(policy, Policy):
            raise TypeError(f"choice requires policies, got {policy!r}")
        p = as_prob(prob)
        if p == 0:
            continue
        if policy not in weighted:
            order.append(policy)
            weighted[policy] = p
        else:
            weighted[policy] += p
    total = sum(weighted.values(), Fraction(0))
    if total != 1:
        raise ValueError(f"choice probabilities sum to {total}, expected 1")
    if len(order) == 1:
        return order[0]
    return Choice(tuple((policy, weighted[policy]) for policy in order))


def uniform(*policies: Policy) -> Policy:
    """Uniform probabilistic choice ``p1 ⊕ ... ⊕ pn``."""
    policies = tuple(policies)
    if not policies:
        raise ValueError("uniform choice over no policies")
    share = Fraction(1, len(policies))
    return choice(*[(policy, share) for policy in policies])


def ite(guard: Predicate, then: Policy, otherwise: Policy = SKIP) -> Policy:
    """Guarded conditional ``if guard then then else otherwise``."""
    if not isinstance(guard, Predicate):
        raise TypeError("ite guard must be a predicate")
    if isinstance(guard, TrueP):
        return then
    if isinstance(guard, FalseP):
        return otherwise
    return IfThenElse(guard, then, otherwise)


def while_do(guard: Predicate, body: Policy) -> Policy:
    """Guarded loop ``while guard do body``."""
    if not isinstance(guard, Predicate):
        raise TypeError("while guard must be a predicate")
    if isinstance(guard, FalseP):
        return SKIP
    return WhileDo(guard, body)


def star(body: Policy) -> Policy:
    """Kleene iteration ``body*`` (general fragment only)."""
    return Star(body)


def case(branches: Sequence[tuple[Predicate, Policy]], default: Policy = DROP_POLICY) -> Policy:
    """N-ary disjoint branching over ``(guard, policy)`` pairs."""
    cleaned: list[tuple[Predicate, Policy]] = []
    for guard, policy in branches:
        if not isinstance(guard, Predicate):
            raise TypeError("case guards must be predicates")
        if isinstance(guard, FalseP):
            continue
        cleaned.append((guard, policy))
    if not cleaned:
        return default
    return Case(tuple(cleaned), default)


def case_to_ite(policy: Case) -> Policy:
    """Expand a :class:`Case` node into a cascade of conditionals."""
    result: Policy = policy.default
    for guard, branch in reversed(policy.branches):
        result = ite(guard, branch, result)
    return result


def test_all(assignments: Mapping[str, int] | Iterable[tuple[str, int]]) -> Predicate:
    """Conjunction of tests, e.g. ``test_all({"sw": 1, "pt": 2})``."""
    items = assignments.items() if isinstance(assignments, Mapping) else assignments
    return conj(*[test(field, value) for field, value in items])


def assign_all(assignments: Mapping[str, int] | Iterable[tuple[str, int]]) -> Policy:
    """Sequence of assignments, e.g. ``assign_all({"sw": 2, "pt": 1})``."""
    items = assignments.items() if isinstance(assignments, Mapping) else assignments
    return seq(*[assign(field, value) for field, value in items])
