"""Pretty printer for ProbNetKAT programs.

Produces a concrete syntax close to the paper's notation, e.g.::

    if sw=1 then pt<-2 else if sw=2 then pt<-2 else drop

The output of :func:`pretty` round-trips through :mod:`repro.core.parser`.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import syntax as s


def _prob(p: Fraction) -> str:
    if p.denominator == 1:
        return str(p.numerator)
    return f"{p.numerator}/{p.denominator}"


def pretty(policy: s.Policy, indent: int = 0) -> str:
    """Render ``policy`` as a single-line concrete-syntax string."""
    return _pp(policy)


def _pp(policy: s.Policy) -> str:
    if isinstance(policy, s.TrueP):
        return "skip"
    if isinstance(policy, s.FalseP):
        return "drop"
    if isinstance(policy, s.Test):
        return f"{policy.field}={policy.value}"
    if isinstance(policy, s.Assign):
        return f"{policy.field}<-{policy.value}"
    if isinstance(policy, s.Not):
        return f"~({_pp(policy.pred)})"
    if isinstance(policy, s.And):
        return f"({_pp(policy.left)} ; {_pp(policy.right)})"
    if isinstance(policy, s.Or):
        return f"({_pp(policy.left)} | {_pp(policy.right)})"
    if isinstance(policy, s.Seq):
        return "(" + " ; ".join(_pp(part) for part in policy.parts) + ")"
    if isinstance(policy, s.Union):
        return "(" + " & ".join(_pp(part) for part in policy.parts) + ")"
    if isinstance(policy, s.Choice):
        inner = " (+) ".join(
            f"{_pp(branch)} @ {_prob(prob)}" for branch, prob in policy.branches
        )
        return f"({inner})"
    if isinstance(policy, s.Star):
        return f"({_pp(policy.body)})*"
    if isinstance(policy, s.IfThenElse):
        return (
            f"if {_pp(policy.guard)} then {_pp(policy.then)} "
            f"else {_pp(policy.otherwise)}"
        )
    if isinstance(policy, s.WhileDo):
        return f"while {_pp(policy.guard)} do {_pp(policy.body)}"
    if isinstance(policy, s.Case):
        parts = [
            f"case {_pp(guard)} then {_pp(branch)}" for guard, branch in policy.branches
        ]
        return " else ".join(parts) + f" else {_pp(policy.default)}"
    raise TypeError(f"unknown policy node: {type(policy)!r}")


def pretty_multiline(policy: s.Policy, width: int = 80) -> str:
    """A lightly indented multi-line rendering for large programs.

    Conditionals and case branches are placed on their own lines; all
    other constructs fall back to the single-line form.
    """
    return _pp_ml(policy, 0)


def _pp_ml(policy: s.Policy, depth: int) -> str:
    pad = "  " * depth
    if isinstance(policy, s.IfThenElse):
        return (
            f"{pad}if {_pp(policy.guard)} then\n"
            f"{_pp_ml(policy.then, depth + 1)}\n"
            f"{pad}else\n"
            f"{_pp_ml(policy.otherwise, depth + 1)}"
        )
    if isinstance(policy, s.WhileDo):
        return (
            f"{pad}while {_pp(policy.guard)} do\n"
            f"{_pp_ml(policy.body, depth + 1)}"
        )
    if isinstance(policy, s.Case):
        lines = []
        for guard, branch in policy.branches:
            lines.append(f"{pad}case {_pp(guard)} then")
            lines.append(_pp_ml(branch, depth + 1))
        lines.append(f"{pad}else")
        lines.append(_pp_ml(policy.default, depth + 1))
        return "\n".join(lines)
    if isinstance(policy, s.Seq):
        return " ;\n".join(_pp_ml(part, depth) for part in policy.parts)
    return f"{pad}{_pp(policy)}"
