"""Finite probability distributions.

ProbNetKAT's semantics manipulates discrete distributions over finite
outcome spaces (packets, packet sets, Markov-chain states).  This module
provides a small, exact-by-default distribution type used throughout the
library:

* probabilities may be :class:`fractions.Fraction` (exact, the default in
  the FDD frontend, mirroring McNetKAT's use of rational arithmetic) or
  ``float`` (used after sparse linear solves, mirroring UMFPACK);
* the monadic operations ``map``/``bind`` implement the Giry-monad
  structure used by the denotational semantics (Appendix A).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Generic, Hashable, Iterable, Iterator, Mapping, TypeVar

Number = Fraction | float | int
T = TypeVar("T", bound=Hashable)
S = TypeVar("S", bound=Hashable)

#: Probability-mass tolerance used when comparing float-valued distributions.
DEFAULT_TOLERANCE = 1e-9


def _as_number(value: Number) -> Fraction | float:
    """Normalise supported numeric types (ints become exact Fractions)."""
    if isinstance(value, bool):
        raise TypeError("booleans are not probabilities")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, (Fraction, float)):
        return value
    raise TypeError(f"unsupported probability type: {type(value)!r}")


class Dist(Generic[T]):
    """A finitely-supported (sub)probability distribution.

    Parameters
    ----------
    weights:
        Mapping (or iterable of pairs) from outcome to probability mass.
        Outcomes with zero mass are removed from the support.
    check:
        When ``True`` (default) the total mass must be 1 up to
        :data:`DEFAULT_TOLERANCE`; sub-distributions can be built with
        ``check=False``.

    Examples
    --------
    >>> d = Dist({"a": Fraction(1, 2), "b": Fraction(1, 2)})
    >>> d("a")
    Fraction(1, 2)
    >>> d.map(str.upper)("A")
    Fraction(1, 2)
    """

    __slots__ = ("_weights",)

    def __init__(
        self,
        weights: Mapping[T, Number] | Iterable[tuple[T, Number]],
        check: bool = True,
    ):
        items = weights.items() if isinstance(weights, Mapping) else weights
        acc: dict[T, Fraction | float] = {}
        for outcome, mass in items:
            mass = _as_number(mass)
            if mass < 0 and not (isinstance(mass, float) and mass > -DEFAULT_TOLERANCE):
                raise ValueError(f"negative probability {mass} for {outcome!r}")
            if mass == 0:
                continue
            if outcome in acc:
                acc[outcome] = acc[outcome] + mass
            else:
                acc[outcome] = mass
        self._weights: dict[T, Fraction | float] = acc
        if check:
            total = self.total_mass()
            if isinstance(total, Fraction):
                if total != 1:
                    raise ValueError(f"distribution mass is {total}, expected 1")
            elif abs(total - 1.0) > 1e-6:
                raise ValueError(f"distribution mass is {total}, expected 1")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def _from_weights(cls, weights: dict[T, "Fraction | float"]) -> "Dist[T]":
        """Wrap an already-clean weight dict without validation.

        Internal hot-path constructor: the caller must own ``weights``
        (it is stored, not copied) and guarantee positive, normalised
        numeric masses — e.g. products of probabilities from validated
        distributions.
        """
        dist = object.__new__(cls)
        dist._weights = weights
        return dist

    @staticmethod
    def point(outcome: T) -> "Dist[T]":
        """The Dirac (point-mass) distribution on ``outcome``."""
        return Dist({outcome: Fraction(1)})

    @staticmethod
    def uniform(outcomes: Iterable[T]) -> "Dist[T]":
        """The uniform distribution over the given outcomes."""
        outcomes = list(outcomes)
        if not outcomes:
            raise ValueError("cannot build a uniform distribution over no outcomes")
        p = Fraction(1, len(outcomes))
        return Dist([(o, p) for o in outcomes])

    @staticmethod
    def convex(parts: Iterable[tuple["Dist[T]", Number]], check: bool = True) -> "Dist[T]":
        """Convex combination ``sum_i w_i * d_i`` of distributions."""
        acc: dict[T, Fraction | float] = {}
        for dist, weight in parts:
            weight = _as_number(weight)
            if weight == 0:
                continue
            for outcome, mass in dist.items():
                acc[outcome] = acc.get(outcome, Fraction(0)) + weight * mass
        return Dist(acc, check=check)

    # -- queries --------------------------------------------------------------
    def __call__(self, outcome: T) -> Fraction | float:
        """Probability mass assigned to ``outcome`` (0 when unsupported)."""
        return self._weights.get(outcome, Fraction(0))

    def prob(self, outcome: T) -> Fraction | float:
        """Alias for :meth:`__call__`."""
        return self(outcome)

    def prob_of(self, predicate: Callable[[T], bool]) -> Fraction | float:
        """Total mass of outcomes satisfying ``predicate``."""
        total: Fraction | float = Fraction(0)
        for outcome, mass in self._weights.items():
            if predicate(outcome):
                total = total + mass
        return total

    def support(self) -> frozenset[T]:
        """The set of outcomes with strictly positive mass."""
        return frozenset(self._weights)

    def items(self) -> Iterator[tuple[T, Fraction | float]]:
        return iter(self._weights.items())

    def as_dict(self) -> dict[T, Fraction | float]:
        return dict(self._weights)

    def total_mass(self) -> Fraction | float:
        """Total probability mass (1 for a proper distribution)."""
        total: Fraction | float = Fraction(0)
        for mass in self._weights.values():
            total = total + mass
        return total

    def expectation(self, value: Callable[[T], Number]) -> float:
        """Expected value of ``value`` under this distribution (as float)."""
        return float(sum(float(mass) * float(value(o)) for o, mass in self._weights.items()))

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self) -> Iterator[T]:
        return iter(self._weights)

    def __contains__(self, outcome: T) -> bool:
        return outcome in self._weights

    # -- monad operations ------------------------------------------------------
    def map(self, func: Callable[[T], S]) -> "Dist[S]":
        """Pushforward along ``func`` (the functorial action ``D(f)``)."""
        acc: dict[S, Fraction | float] = {}
        for outcome, mass in self._weights.items():
            image = func(outcome)
            acc[image] = acc.get(image, Fraction(0)) + mass
        return Dist(acc, check=False)

    def bind(self, kernel: Callable[[T], "Dist[S]"]) -> "Dist[S]":
        """Monadic bind (``kernel†`` applied to this distribution)."""
        acc: dict[S, Fraction | float] = {}
        for outcome, mass in self._weights.items():
            for image, inner in kernel(outcome).items():
                acc[image] = acc.get(image, Fraction(0)) + mass * inner
        return Dist(acc, check=False)

    def product(self, other: "Dist[S]") -> "Dist[tuple[T, S]]":
        """Product measure of two independent distributions."""
        acc: dict[tuple[T, S], Fraction | float] = {}
        for a, pa in self._weights.items():
            for b, pb in other.items():
                acc[(a, b)] = acc.get((a, b), Fraction(0)) + pa * pb
        return Dist(acc, check=False)

    def normalise(self) -> "Dist[T]":
        """Rescale a non-empty sub-distribution to total mass 1."""
        total = self.total_mass()
        if total == 0:
            raise ValueError("cannot normalise the zero sub-distribution")
        return Dist({o: m / total for o, m in self._weights.items()}, check=False)

    def with_floats(self) -> "Dist[T]":
        """Convert all masses to floats (used at solver boundaries)."""
        return Dist({o: float(m) for o, m in self._weights.items()}, check=False)

    def with_fractions(self, limit_denominator: int | None = None) -> "Dist[T]":
        """Convert all masses to exact fractions (optionally approximating)."""
        converted: dict[T, Fraction] = {}
        for outcome, mass in self._weights.items():
            frac = Fraction(mass) if not isinstance(mass, Fraction) else mass
            if limit_denominator is not None:
                frac = frac.limit_denominator(limit_denominator)
            converted[outcome] = frac
        return Dist(converted, check=False)

    # -- comparisons ------------------------------------------------------------
    def close_to(self, other: "Dist[T]", tolerance: float = DEFAULT_TOLERANCE) -> bool:
        """Pointwise comparison up to ``tolerance`` (total-variation style)."""
        outcomes = set(self._weights) | set(other._weights)
        return all(abs(float(self(o)) - float(other(o))) <= tolerance for o in outcomes)

    def tv_distance(self, other: "Dist[T]") -> float:
        """Total-variation distance between two distributions."""
        outcomes = set(self._weights) | set(other._weights)
        return 0.5 * sum(abs(float(self(o)) - float(other(o))) for o in outcomes)

    def dominated_by(self, other: "Dist[T]", tolerance: float = DEFAULT_TOLERANCE,
                     ignore: frozenset[T] | None = None) -> bool:
        """Pointwise ``self(o) <= other(o) + tolerance`` for all outcomes.

        ``ignore`` lists outcomes excluded from the comparison (the
        refinement order of the paper compares only proper packets and
        ignores the drop outcome).
        """
        ignored = ignore or frozenset()
        outcomes = (set(self._weights) | set(other._weights)) - set(ignored)
        return all(float(self(o)) <= float(other(o)) + tolerance for o in outcomes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dist):
            return NotImplemented
        outcomes = set(self._weights) | set(other._weights)
        for o in outcomes:
            a, b = self(o), other(o)
            if isinstance(a, Fraction) and isinstance(b, Fraction):
                if a != b:
                    return False
            elif abs(float(a) - float(b)) > DEFAULT_TOLERANCE:
                return False
        return True

    def __hash__(self) -> int:
        return hash(frozenset((o, float(m)) for o, m in self._weights.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{o!r}: {m}" for o, m in sorted(
            self._weights.items(), key=lambda kv: repr(kv[0])))
        return f"Dist({{{parts}}})"
