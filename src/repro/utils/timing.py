"""Small timing helpers used by the benchmark harnesses and backends."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across several measured sections.

    An optional ``listener`` is called as ``listener(name, elapsed)``
    after every measured section — the hook the service's telemetry
    layer uses to turn backend phases into trace spans without the
    backend knowing tracing exists.  A listener that raises would
    poison the measured operation's normal return path, so keep them
    trivial (the telemetry listener only buffers a record).

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("compile"):
    ...     sum(range(10))
    45
    >>> watch.total() >= 0
    True
    """

    sections: dict[str, float] = field(default_factory=dict)
    listener: Callable[[str, float], None] | None = None

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.sections[name] = self.sections.get(name, 0.0) + elapsed
            if self.listener is not None:
                self.listener(name, elapsed)

    def total(self) -> float:
        """Total time accumulated over all sections, in seconds."""
        return sum(self.sections.values())

    def __getitem__(self, name: str) -> float:
        return self.sections[name]


@contextmanager
def timed():
    """Context manager yielding a single-element list holding elapsed seconds."""
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
