"""Small timing helpers used by the benchmark harnesses and backends."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across several measured sections.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("compile"):
    ...     sum(range(10))
    45
    >>> watch.total() >= 0
    True
    """

    sections: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.sections[name] = self.sections.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Total time accumulated over all sections, in seconds."""
        return sum(self.sections.values())

    def __getitem__(self, name: str) -> float:
        return self.sections[name]


@contextmanager
def timed():
    """Context manager yielding a single-element list holding elapsed seconds."""
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
