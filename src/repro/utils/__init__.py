"""Utility helpers shared across the :mod:`repro` package."""

from repro.utils.timing import Stopwatch, timed

__all__ = ["Stopwatch", "timed"]
