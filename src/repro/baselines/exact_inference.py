"""A Bayonet-style general-purpose exact inference baseline.

The paper compares McNetKAT against Bayonet, which translates network
models into a general-purpose probabilistic language analysed by the
symbolic inference engine PSI.  Bayonet's approach does not exploit the
two domain-specific optimisations that make McNetKAT fast:

1. it does not restrict attention to the packets reachable from the
   query's ingress (no dynamic domain reduction / reachability pruning);
2. it has no closed form for loops — iteration is unrolled up to a bound.

This baseline reproduces those two structural properties in a small exact
interpreter: program state is a distribution over the *entire* declared
variable space (every combination of field values is represented, dense),
and ``while`` loops are evaluated by bounded unrolling with a convergence
check.  Absolute running times obviously differ from Bayonet/PSI, but the
scaling behaviour — exponential-state blow-up as the network grows —
matches, which is what the Figure 10 comparison is about.
"""

from __future__ import annotations

import numpy as np

from repro.core import syntax as s
from repro.core.compiler import GuardedFragmentError
from repro.core.distributions import Dist
from repro.core.fields import FieldTable
from repro.core.interpreter import Outcome
from repro.core.packet import DROP, Packet, PacketUniverse, _DropType


class UnrollLimitExceeded(RuntimeError):
    """Raised when a loop fails to converge within the unrolling bound."""


class ExactInferenceBaseline:
    """Whole-state-space exact inference over guarded ProbNetKAT programs.

    Parameters
    ----------
    unroll_limit:
        Maximum number of loop unrollings before giving up.
    tolerance:
        Convergence threshold on the total-variation distance between
        consecutive unrollings.
    max_states:
        Safety bound on the size of the declared state space (the product
        of all field domains).
    """

    def __init__(
        self,
        unroll_limit: int = 10_000,
        tolerance: float = 1e-12,
        max_states: int = 200_000,
    ):
        self.unroll_limit = unroll_limit
        self.tolerance = tolerance
        self.max_states = max_states
        self._universe: list[Packet] = []
        self._index: dict[Packet, int] = {}

    # -- public API -----------------------------------------------------------
    def output_distribution(
        self,
        policy: s.Policy,
        input_packet: Packet,
        fields: FieldTable | None = None,
    ) -> Dist[Outcome]:
        """Exact output distribution of ``policy`` on ``input_packet``."""
        table = fields if fields is not None else self._infer_fields(policy, input_packet)
        universe = PacketUniverse(table.as_domains())
        if universe.size > self.max_states:
            raise MemoryError(
                f"declared state space has {universe.size} packets, "
                f"exceeding the baseline's limit of {self.max_states}"
            )
        self._universe = list(universe.packets)
        self._index = {packet: i for i, packet in enumerate(self._universe)}

        start = self._complete(input_packet, table)
        vector = np.zeros(len(self._universe) + 1)
        vector[self._index[start]] = 1.0
        result = self._run(policy, vector)

        weights: dict[Outcome, float] = {}
        for i, mass in enumerate(result[:-1]):
            if mass > 0.0:
                weights[self._universe[i]] = float(mass)
        if result[-1] > 0.0:
            weights[DROP] = float(result[-1])
        return Dist(weights, check=False)

    def delivery_probability(
        self,
        policy: s.Policy,
        input_packet: Packet,
        delivered: s.Predicate,
        fields: FieldTable | None = None,
    ) -> float:
        """Probability that the output satisfies ``delivered``."""
        from repro.core.interpreter import eval_predicate

        dist = self.output_distribution(policy, input_packet, fields=fields)
        return float(
            dist.prob_of(
                lambda out: not isinstance(out, _DropType) and eval_predicate(delivered, out)
            )
        )

    # -- helpers ----------------------------------------------------------------
    def _infer_fields(self, policy: s.Policy, packet: Packet) -> FieldTable:
        table = FieldTable.from_policy(policy)
        for name, value in packet.items():
            table.declare(name, min(0, value), value)
        return table

    def _complete(self, packet: Packet, table: FieldTable) -> Packet:
        """Extend the input packet with default values for undeclared fields."""
        values = {spec.name: spec.low for spec in table}
        values.update(packet.as_dict())
        return Packet(values)

    # -- dense interpretation --------------------------------------------------------
    def _run(self, policy: s.Policy, vector: np.ndarray) -> np.ndarray:
        """Push a dense state distribution through a policy."""
        if isinstance(policy, s.Predicate):
            return self._filter(policy, vector)
        if isinstance(policy, s.Assign):
            return self._assign(policy.field, policy.value, vector)
        if isinstance(policy, s.Seq):
            for part in policy.parts:
                vector = self._run(part, vector)
            return vector
        if isinstance(policy, s.Choice):
            result = np.zeros_like(vector)
            for branch, prob in policy.branches:
                result += float(prob) * self._run(branch, vector.copy())
            return result
        if isinstance(policy, s.IfThenElse):
            mask = self._mask(policy.guard)
            taken = vector * mask
            not_taken = vector * (1.0 - mask)
            return self._run(policy.then, taken) + self._run(policy.otherwise, not_taken)
        if isinstance(policy, s.Case):
            return self._run(s.case_to_ite(policy), vector)
        if isinstance(policy, s.WhileDo):
            return self._run_while(policy, vector)
        if isinstance(policy, (s.Union, s.Star)):
            raise GuardedFragmentError(
                "the exact-inference baseline handles the guarded fragment only"
            )
        raise TypeError(f"unknown policy node {type(policy)!r}")

    def _mask(self, pred: s.Predicate) -> np.ndarray:
        from repro.core.interpreter import eval_predicate

        mask = np.zeros(len(self._universe) + 1)
        for i, packet in enumerate(self._universe):
            if eval_predicate(pred, packet):
                mask[i] = 1.0
        return mask

    def _filter(self, pred: s.Predicate, vector: np.ndarray) -> np.ndarray:
        mask = self._mask(pred)
        kept = vector * mask
        dropped = float(vector[:-1].sum() - kept[:-1].sum())
        result = kept
        result[-1] = vector[-1] + dropped
        return result

    def _assign(self, field: str, value: int, vector: np.ndarray) -> np.ndarray:
        result = np.zeros_like(vector)
        result[-1] = vector[-1]
        for i, packet in enumerate(self._universe):
            mass = vector[i]
            if mass == 0.0:
                continue
            target = packet.set(field, value)
            result[self._index[target]] += mass
        return result

    def _run_while(self, loop: s.WhileDo, vector: np.ndarray) -> np.ndarray:
        """Bounded unrolling of a while loop (no closed form, like Bayonet)."""
        mask = self._mask(loop.guard)
        settled = vector * (1.0 - mask)
        settled[-1] = vector[-1]
        active = vector * mask
        active[-1] = 0.0
        for _ in range(self.unroll_limit):
            if active[:-1].sum() <= self.tolerance:
                return settled
            stepped = self._run(loop.body, active)
            newly_settled = stepped * (1.0 - mask)
            newly_settled[-1] = stepped[-1]
            settled = settled + newly_settled
            active = stepped * mask
            active[-1] = 0.0
        raise UnrollLimitExceeded(
            f"while loop did not converge within {self.unroll_limit} unrollings"
        )
