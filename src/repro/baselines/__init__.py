"""Baselines used for performance comparisons (§6)."""

from repro.baselines.exact_inference import ExactInferenceBaseline

__all__ = ["ExactInferenceBaseline"]
