"""Failure models: per-hop sampling of link-health flags.

The paper models link failures by giving every switch boolean flags
``up_i`` (one per local port) and running a *failure program* ``f`` at
every hop, before the switch policy and the topology program (§2, §7).
Three shapes of failure model appear:

* ``f0`` — no failures: every flag is set to 1;
* independent failures — every failable link fails independently with
  probability ``pr`` (the ``k = ∞`` model of §7);
* bounded failures ``f_k`` — links fail independently with probability
  ``pr``, but at most ``k`` failures may be observed in total, encoded
  with a saturating global failure counter.

All failure programs are organised as a ``case`` over the switch field so
that only the flags of the current switch are (re)sampled at each hop.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.core import sugar
from repro.core import syntax as s

#: Default name of the global failure counter used by bounded models.
FAILURE_COUNTER = "fails"


def _up_field(prefix: str, port: int) -> str:
    return f"{prefix}{port}"


def failure_free(
    failable: Mapping[int, Iterable[int]],
    up_prefix: str = "up",
    sw_field: str = "sw",
) -> s.Policy:
    """The failure model ``f0``: every failable link is up at every hop."""
    branches = []
    for switch in sorted(failable):
        flags = s.seq(
            *[s.assign(_up_field(up_prefix, port), 1) for port in sorted(failable[switch])]
        )
        branches.append((s.test(sw_field, switch), flags))
    return s.case(branches, s.skip())


def independent_failure_program(
    failable: Mapping[int, Iterable[int]],
    probability: float | Fraction,
    up_prefix: str = "up",
    sw_field: str = "sw",
) -> s.Policy:
    """Independent failures with probability ``pr`` (the ``k = ∞`` model)."""
    pr = s.as_prob(probability)
    branches = []
    for switch in sorted(failable):
        steps = []
        for port in sorted(failable[switch]):
            up = _up_field(up_prefix, port)
            steps.append(
                s.choice((s.assign(up, 0), pr), (s.assign(up, 1), 1 - pr))
            )
        branches.append((s.test(sw_field, switch), s.seq(*steps)))
    return s.case(branches, s.skip())


def bounded_failure_program(
    failable: Mapping[int, Iterable[int]],
    probability: float | Fraction,
    max_failures: int,
    up_prefix: str = "up",
    sw_field: str = "sw",
    counter_field: str = FAILURE_COUNTER,
) -> s.Policy:
    """The bounded failure model ``f_k`` of §7.

    Each failable link of the current switch fails independently with
    probability ``pr`` *provided* fewer than ``max_failures`` failures
    have been observed so far; the observation count is tracked in a
    saturating counter field.  With ``max_failures = 0`` this degenerates
    to ``f0``.
    """
    pr = s.as_prob(probability)
    if max_failures < 0:
        raise ValueError("max_failures must be non-negative")
    if max_failures == 0:
        return failure_free(failable, up_prefix=up_prefix, sw_field=sw_field)
    below_budget = s.disj(*[s.test(counter_field, j) for j in range(max_failures)])
    branches = []
    for switch in sorted(failable):
        steps = []
        for port in sorted(failable[switch]):
            up = _up_field(up_prefix, port)
            fail = s.seq(s.assign(up, 0), sugar.increment(counter_field, max_failures))
            sample = s.choice((fail, pr), (s.assign(up, 1), 1 - pr))
            steps.append(s.ite(below_budget, sample, s.assign(up, 1)))
        branches.append((s.test(sw_field, switch), s.seq(*steps)))
    return s.case(branches, s.skip())


def failure_program(
    failable: Mapping[int, Iterable[int]],
    probability: float | Fraction,
    max_failures: int | None = None,
    up_prefix: str = "up",
    sw_field: str = "sw",
    counter_field: str = FAILURE_COUNTER,
) -> s.Policy:
    """Dispatch to the appropriate failure model.

    ``max_failures = None`` selects independent failures (``k = ∞``),
    ``max_failures = 0`` the failure-free model, and any other value the
    bounded model ``f_k``.
    """
    if max_failures is None:
        return independent_failure_program(
            failable, probability, up_prefix=up_prefix, sw_field=sw_field
        )
    if max_failures == 0:
        return failure_free(failable, up_prefix=up_prefix, sw_field=sw_field)
    return bounded_failure_program(
        failable,
        probability,
        max_failures,
        up_prefix=up_prefix,
        sw_field=sw_field,
        counter_field=counter_field,
    )


def running_example_failure_models() -> dict[str, s.Policy]:
    """The three failure models ``f0``, ``f1``, ``f2`` of §2.

    These sample the two flags ``up2`` and ``up3`` of switch 1 in the
    three-switch running example: ``f0`` never fails, ``f1`` fails at most
    one of the two links (each with probability 1/4), and ``f2`` fails
    the links independently with probability 0.2.
    """
    up2_1 = s.assign("up2", 1)
    up3_1 = s.assign("up3", 1)
    f0 = s.seq(up2_1, up3_1)
    f1 = s.choice(
        (f0, Fraction(1, 2)),
        (s.seq(s.assign("up2", 0), up3_1), Fraction(1, 4)),
        (s.seq(up2_1, s.assign("up3", 0)), Fraction(1, 4)),
    )
    f2 = s.seq(
        s.choice((s.assign("up2", 1), Fraction(4, 5)), (s.assign("up2", 0), Fraction(1, 5))),
        s.choice((s.assign("up3", 1), Fraction(4, 5)), (s.assign("up3", 0), Fraction(1, 5))),
    )
    return {"f0": f0, "f1": f1, "f2": f2}
