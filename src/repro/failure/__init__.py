"""Probabilistic link-failure models (§2 and §7 of the paper)."""

from repro.failure.models import (
    bounded_failure_program,
    failure_free,
    failure_program,
    independent_failure_program,
    running_example_failure_models,
)

__all__ = [
    "bounded_failure_program",
    "failure_free",
    "failure_program",
    "independent_failure_program",
    "running_example_failure_models",
]
