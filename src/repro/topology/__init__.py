"""Topologies: generic graphs, FatTrees, AB FatTrees, chains, and WAN samples."""

from repro.topology.graph import Port, Topology
from repro.topology.fattree import (
    FatTreeShape,
    aggregation_switches,
    core_switches,
    edge_switches,
    fat_tree,
)
from repro.topology.abfattree import ab_fat_tree, pod_type
from repro.topology.chain import ChainModel, chain_model, chain_topology
from repro.topology import dot, zoo

__all__ = [
    "ChainModel",
    "FatTreeShape",
    "Port",
    "Topology",
    "ab_fat_tree",
    "aggregation_switches",
    "chain_model",
    "chain_topology",
    "core_switches",
    "dot",
    "edge_switches",
    "fat_tree",
    "pod_type",
    "zoo",
]
