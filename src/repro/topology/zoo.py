"""Small real-world topologies in the style of the Internet Topology Zoo.

The Topology Zoo distributes wide-area network topologies as GML files.
This module bundles a few representative ones (Abilene, a simplified
GÉANT, and NSFNet) defined programmatically, plus a minimal GML
reader/writer compatible with Zoo-style files, so that the library can be
exercised on wide-area graphs in addition to data-center fabrics.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.topology.graph import Topology

#: City-level node lists and adjacency for the bundled topologies.
_BUILTIN: dict[str, tuple[Sequence[str], Sequence[tuple[str, str]]]] = {
    "abilene": (
        [
            "Seattle", "Sunnyvale", "LosAngeles", "Denver", "KansasCity",
            "Houston", "Chicago", "Indianapolis", "Atlanta", "WashingtonDC",
            "NewYork",
        ],
        [
            ("Seattle", "Sunnyvale"), ("Seattle", "Denver"),
            ("Sunnyvale", "LosAngeles"), ("Sunnyvale", "Denver"),
            ("LosAngeles", "Houston"), ("Denver", "KansasCity"),
            ("KansasCity", "Houston"), ("KansasCity", "Chicago"),
            ("Houston", "Atlanta"), ("Chicago", "Indianapolis"),
            ("Indianapolis", "Atlanta"), ("Atlanta", "WashingtonDC"),
            ("WashingtonDC", "NewYork"), ("Chicago", "NewYork"),
        ],
    ),
    "nsfnet": (
        [
            "Seattle", "PaloAlto", "SanDiego", "SaltLake", "Boulder",
            "Houston", "Lincoln", "Champaign", "AnnArbor", "Pittsburgh",
            "Atlanta", "CollegePark", "Ithaca", "Princeton",
        ],
        [
            ("Seattle", "PaloAlto"), ("Seattle", "SaltLake"),
            ("PaloAlto", "SanDiego"), ("PaloAlto", "SaltLake"),
            ("SanDiego", "Houston"), ("SaltLake", "Boulder"),
            ("Boulder", "Lincoln"), ("Boulder", "Houston"),
            ("Houston", "Atlanta"), ("Lincoln", "Champaign"),
            ("Champaign", "AnnArbor"), ("Champaign", "Pittsburgh"),
            ("AnnArbor", "Ithaca"), ("Pittsburgh", "Princeton"),
            ("Pittsburgh", "Ithaca"), ("Atlanta", "CollegePark"),
            ("CollegePark", "Princeton"), ("Ithaca", "Princeton"),
        ],
    ),
    "geant-lite": (
        [
            "London", "Paris", "Amsterdam", "Frankfurt", "Geneva",
            "Milan", "Vienna", "Prague", "Madrid", "Budapest",
        ],
        [
            ("London", "Paris"), ("London", "Amsterdam"),
            ("Paris", "Geneva"), ("Paris", "Madrid"),
            ("Amsterdam", "Frankfurt"), ("Frankfurt", "Vienna"),
            ("Frankfurt", "Geneva"), ("Geneva", "Milan"),
            ("Milan", "Vienna"), ("Vienna", "Prague"),
            ("Prague", "Frankfurt"), ("Vienna", "Budapest"),
            ("Madrid", "Milan"),
        ],
    ),
}


def available_topologies() -> list[str]:
    """Names of the bundled Topology-Zoo-style topologies."""
    return sorted(_BUILTIN)


def load(name: str, with_hosts: bool = True) -> Topology:
    """Load a bundled topology by name.

    Every city becomes a switch with an integer identifier (1-based,
    alphabetical by city name, recorded in the ``city`` attribute); when
    ``with_hosts`` is set, each switch gets one attached host so the
    topology can be used directly with the network model builders.
    """
    if name not in _BUILTIN:
        raise KeyError(f"unknown topology {name!r}; available: {available_topologies()}")
    cities, links = _BUILTIN[name]
    ordered = sorted(cities)
    ids = {city: index + 1 for index, city in enumerate(ordered)}
    topo = Topology(name=name)
    for city in ordered:
        topo.add_switch(ids[city], level="wan", city=city)
        if with_hosts:
            host = f"h{ids[city]}"
            topo.add_host(host)
            topo.add_link(ids[city], host)
    for a, b in links:
        topo.add_link(ids[a], ids[b])
    return topo


# ---------------------------------------------------------------------------
# GML import/export (Topology Zoo interchange format)
# ---------------------------------------------------------------------------

def to_gml(topo: Topology) -> str:
    """Render a topology in (minimal) GML, the Topology Zoo format."""
    lines = ["graph [", f'  label "{topo.name}"']
    ids: dict[object, int] = {}
    for index, node in enumerate(sorted(topo.graph.nodes, key=str)):
        ids[node] = index
        attrs = topo.attributes(node)
        lines.append("  node [")
        lines.append(f"    id {index}")
        lines.append(f'    label "{node}"')
        lines.append(f'    kind "{attrs.get("kind", "switch")}"')
        lines.append("  ]")
    seen = set()
    for link in topo.directed_links():
        key = frozenset([(link.node, link.port), (link.peer, link.peer_port)])
        if key in seen:
            continue
        seen.add(key)
        lines.append("  edge [")
        lines.append(f"    source {ids[link.node]}")
        lines.append(f"    target {ids[link.peer]}")
        lines.append("  ]")
    lines.append("]")
    return "\n".join(lines)


_GML_NODE_RE = re.compile(
    r"node\s*\[\s*id\s+(?P<id>\d+)\s+label\s+\"(?P<label>[^\"]*)\""
    r"(?:\s+kind\s+\"(?P<kind>[^\"]*)\")?",
)
_GML_EDGE_RE = re.compile(r"edge\s*\[\s*source\s+(?P<source>\d+)\s+target\s+(?P<target>\d+)")


def from_gml(source: str, name: str = "topology") -> Topology:
    """Parse a GML topology (as produced by :func:`to_gml` or the Topology Zoo)."""
    topo = Topology(name=name)
    labels: dict[int, object] = {}
    for match in _GML_NODE_RE.finditer(source):
        raw = match.group("label")
        node: object = int(raw) if raw.lstrip("-").isdigit() else raw
        labels[int(match.group("id"))] = node
        if (match.group("kind") or "switch") == "host":
            topo.add_host(node)
        else:
            topo.add_switch(node)
    for match in _GML_EDGE_RE.finditer(source):
        topo.add_link(labels[int(match.group("source"))], labels[int(match.group("target"))])
    return topo
