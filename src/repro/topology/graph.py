"""Network topologies: switches, hosts, ports, and links.

A :class:`Topology` is an undirected multigraph of switches and hosts in
which every link endpoint is assigned a local port number, mirroring how
McNetKAT ingests Graphviz topology descriptions.  The class can generate
the ProbNetKAT *topology program* ``t`` (§2): a cascade of conditionals
that matches packets at the source end of each link and moves them to the
destination end, optionally guarded by link-health flags (``up_i``) for
links that may fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import networkx as nx

from repro.core import syntax as s

Node = Hashable


@dataclass(frozen=True)
class Port:
    """One directed link endpoint: ``(node, port) -> (peer, peer_port)``."""

    node: Node
    port: int
    peer: Node
    peer_port: int


class Topology:
    """A switch/host topology with numbered ports.

    Parameters
    ----------
    name:
        Human-readable name (used in DOT/GML output and benchmark labels).
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self.graph = nx.Graph(name=name)
        # (node, port) -> (peer node, peer port)
        self._ports: dict[tuple[Node, int], tuple[Node, int]] = {}
        self._next_port: dict[Node, int] = {}

    # -- construction ------------------------------------------------------------
    def add_switch(self, switch: Node, **attrs) -> None:
        """Add a switch node (attributes: level, pod, index, subtree type...)."""
        self.graph.add_node(switch, kind="switch", **attrs)

    def add_host(self, host: Node, **attrs) -> None:
        """Add a host (end-point) node."""
        self.graph.add_node(host, kind="host", **attrs)

    def _allocate_port(self, node: Node) -> int:
        port = self._next_port.get(node, 1)
        self._next_port[node] = port + 1
        return port

    def add_link(
        self,
        a: Node,
        b: Node,
        port_a: int | None = None,
        port_b: int | None = None,
        **attrs,
    ) -> tuple[int, int]:
        """Add a bidirectional link, allocating port numbers when omitted."""
        if a not in self.graph or b not in self.graph:
            raise KeyError("both endpoints must be added before linking them")
        port_a = self._allocate_port(a) if port_a is None else port_a
        port_b = self._allocate_port(b) if port_b is None else port_b
        if (a, port_a) in self._ports or (b, port_b) in self._ports:
            raise ValueError(f"port already in use on link {a}:{port_a} -- {b}:{port_b}")
        self.graph.add_edge(a, b, ports={a: port_a, b: port_b}, **attrs)
        self._ports[(a, port_a)] = (b, port_b)
        self._ports[(b, port_b)] = (a, port_a)
        self._next_port[a] = max(self._next_port.get(a, 1), port_a + 1)
        self._next_port[b] = max(self._next_port.get(b, 1), port_b + 1)
        return port_a, port_b

    # -- queries -------------------------------------------------------------------
    def is_switch(self, node: Node) -> bool:
        return self.graph.nodes[node].get("kind") == "switch"

    def is_host(self, node: Node) -> bool:
        return self.graph.nodes[node].get("kind") == "host"

    def switches(self) -> list[Node]:
        return [n for n, data in self.graph.nodes(data=True) if data.get("kind") == "switch"]

    def hosts(self) -> list[Node]:
        return [n for n, data in self.graph.nodes(data=True) if data.get("kind") == "host"]

    def attributes(self, node: Node) -> dict:
        return dict(self.graph.nodes[node])

    def neighbors(self, node: Node) -> list[Node]:
        return list(self.graph.neighbors(node))

    def degree(self, node: Node) -> int:
        return self.graph.degree(node)

    def max_degree(self) -> int:
        return max((self.graph.degree(n) for n in self.graph.nodes), default=0)

    def port_to(self, a: Node, b: Node) -> int:
        """The local port number at ``a`` of the link towards ``b``."""
        ports = self.graph.edges[a, b]["ports"]
        return ports[a]

    def peer(self, node: Node, port: int) -> tuple[Node, int]:
        """The remote end ``(peer, peer_port)`` of a local ``(node, port)``."""
        return self._ports[(node, port)]

    def ports(self, node: Node) -> dict[int, Node]:
        """All occupied ports of a node, mapping port number to neighbour."""
        return {
            port: peer
            for (owner, port), (peer, _peer_port) in self._ports.items()
            if owner == node
        }

    def directed_links(self) -> Iterator[Port]:
        """All directed link endpoints (each undirected link appears twice)."""
        for (node, port), (peer, peer_port) in sorted(
            self._ports.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        ):
            yield Port(node, port, peer, peer_port)

    def switch_links(self) -> Iterator[Port]:
        """Directed links whose both endpoints are switches."""
        for link in self.directed_links():
            if self.is_switch(link.node) and self.is_switch(link.peer):
                yield link

    def switch_graph(self) -> nx.Graph:
        """The switch-only subgraph (hosts removed)."""
        return self.graph.subgraph(self.switches()).copy()

    def link_count(self) -> int:
        return self.graph.number_of_edges()

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, switches={len(self.switches())}, "
            f"hosts={len(self.hosts())}, links={self.link_count()})"
        )

    # -- ProbNetKAT program generation ------------------------------------------------
    def program(
        self,
        failable: Mapping[Node, Iterable[int]] | None = None,
        sw_field: str = "sw",
        pt_field: str = "pt",
        up_prefix: str = "up",
    ) -> s.Policy:
        """The topology program ``t`` (or ``t̂`` when ``failable`` is given).

        For each directed switch-to-switch link ``(a, pa) -> (b, pb)`` the
        program contains the rule ``if sw=a ; pt=pa then sw<-b ; pt<-pb``.
        Links listed in ``failable`` additionally require ``up<pa> = 1``,
        so packets sent over a failed link are dropped — exactly the
        behaviour of ``t̂`` in §2.  The rules are organised as a ``case``
        over the switch field (with a nested ``case`` over the port field)
        so the forward interpreter can dispatch in constant time.
        """
        failable = {node: set(ports) for node, ports in (failable or {}).items()}
        by_switch: dict[Node, list[Port]] = {}
        for link in self.switch_links():
            by_switch.setdefault(link.node, []).append(link)

        switch_branches: list[tuple[s.Predicate, s.Policy]] = []
        for node in sorted(by_switch, key=str):
            port_branches: list[tuple[s.Predicate, s.Policy]] = []
            for link in sorted(by_switch[node], key=lambda l: l.port):
                move = s.seq(
                    s.assign(sw_field, self._switch_id(link.peer)),
                    s.assign(pt_field, link.peer_port),
                )
                if link.port in failable.get(node, ()):  # guarded by link health
                    rule: s.Policy = s.ite(
                        s.test(f"{up_prefix}{link.port}", 1), move, s.drop()
                    )
                else:
                    rule = move
                port_branches.append((s.test(pt_field, link.port), rule))
            switch_branches.append(
                (s.test(sw_field, self._switch_id(node)), s.case(port_branches, s.drop()))
            )
        return s.case(switch_branches, s.drop())

    def _switch_id(self, node: Node) -> int:
        if not isinstance(node, int):
            raise TypeError(
                f"switch identifiers must be integers for program generation, got {node!r}"
            )
        return node

    # -- ingress/egress helpers -----------------------------------------------------
    def host_facing_ports(self, switch: Node) -> list[int]:
        """Ports of a switch that connect to hosts."""
        return sorted(
            port for port, peer in self.ports(switch).items() if self.is_host(peer)
        )

    def ingress_locations(self, exclude: Iterable[Node] = ()) -> list[tuple[Node, int]]:
        """All (switch, host-facing port) pairs, excluding the given switches."""
        excluded = set(exclude)
        locations = []
        for switch in sorted(self.switches(), key=str):
            if switch in excluded:
                continue
            for port in self.host_facing_ports(switch):
                locations.append((switch, port))
        return locations
