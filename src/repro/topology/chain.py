"""The chain-of-diamonds topology from the Bayonet comparison (§6, Figure 9).

The topology consists of ``k`` "diamonds" in a row.  Diamond ``i`` has
four switches ``S0..S3`` (numbered ``4i+1 .. 4i+4`` here): ``S0`` splits
traffic between ``S1`` and ``S2``, both forward to ``S3``, and ``S3``
feeds the next diamond.  Host ``H1`` attaches before the first diamond
and ``H2`` after the last.  In every diamond the link ``S2 -- S3`` may
fail with probability ``pfail``; ``S2`` drops the packet when it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core import syntax as s
from repro.topology.graph import Topology


def chain_topology(diamonds: int, with_hosts: bool = True) -> Topology:
    """Build the chain topology with the given number of diamonds."""
    if diamonds < 1:
        raise ValueError("the chain needs at least one diamond")
    topo = Topology(name=f"chain-{diamonds}")
    for i in range(diamonds):
        base = 4 * i
        for offset, role in ((1, "split"), (2, "upper"), (3, "lower"), (4, "join")):
            topo.add_switch(base + offset, level="chain", diamond=i, role=role)
    for i in range(diamonds):
        base = 4 * i
        s0, s1, s2, s3 = base + 1, base + 2, base + 3, base + 4
        topo.add_link(s0, s1)
        topo.add_link(s0, s2)
        topo.add_link(s1, s3)
        topo.add_link(s2, s3, failable=True)
        if i + 1 < diamonds:
            topo.add_link(s3, 4 * (i + 1) + 1)
    if with_hosts:
        topo.add_host("H1")
        topo.add_host("H2")
        topo.add_link(1, "H1")
        topo.add_link(4 * diamonds, "H2")
    return topo


@dataclass
class ChainModel:
    """A fully assembled ProbNetKAT model of the chain network.

    Attributes
    ----------
    policy:
        The complete model ``in ; (f;p;t) ; while ¬out do (f;p;t)``.
    ingress:
        The packet injected at H1's switch.
    delivered:
        Predicate satisfied exactly by packets that reached H2's switch.
    """

    topology: Topology
    policy: s.Policy
    ingress: "object"
    delivered: s.Predicate
    diamonds: int
    pfail: Fraction


def chain_model(diamonds: int, pfail: float | Fraction = Fraction(1, 1000)) -> ChainModel:
    """Build the ProbNetKAT model used in the Figure 10 benchmark.

    The forwarding policy mirrors the Bayonet example: the split switch
    forwards to the upper or lower path with probability 1/2 each, the
    lower switch drops the packet when its link to the join switch is
    down, and the join switch forwards into the next diamond (or delivers
    to H2 at the end of the chain).
    """
    from repro.core.packet import Packet
    from repro.failure.models import failure_program
    from repro.network.model import build_model

    topo = chain_topology(diamonds)
    pfail = s.as_prob(pfail)
    dest = 4 * diamonds  # the final join switch (connected to H2)

    branches: list[tuple[s.Predicate, s.Policy]] = []
    for switch in sorted(topo.switches()):
        role = topo.attributes(switch)["role"]
        ports = topo.ports(switch)
        if switch == dest:
            continue  # the loop exits at the destination switch
        if role == "split":
            upper = next(p for p, peer in ports.items() if topo.is_switch(peer)
                         and topo.attributes(peer)["role"] == "upper")
            lower = next(p for p, peer in ports.items() if topo.is_switch(peer)
                         and topo.attributes(peer)["role"] == "lower")
            action = s.uniform(s.assign("pt", upper), s.assign("pt", lower))
        elif role in ("upper", "lower"):
            join = next(p for p, peer in ports.items() if topo.is_switch(peer)
                        and topo.attributes(peer)["role"] == "join")
            action = s.assign("pt", join)
        else:  # join switch forwarding into the next diamond
            nxt = next(p for p, peer in ports.items() if topo.is_switch(peer)
                       and topo.attributes(peer)["role"] == "split"
                       and topo.attributes(peer)["diamond"]
                       == topo.attributes(switch)["diamond"] + 1)
            action = s.assign("pt", nxt)
        branches.append((s.test("sw", switch), action))
    policy = s.case(branches, s.drop())

    # Only the lower-path links (S2 -- S3) can fail.
    failable = {}
    for link in topo.switch_links():
        if topo.graph.edges[link.node, link.peer].get("failable") and \
                topo.attributes(link.node)["role"] == "lower":
            failable.setdefault(link.node, []).append(link.port)
    failure = failure_program(failable, probability=pfail)

    ingress_port = topo.port_to(1, "H1")
    model = build_model(
        topo,
        routing=policy,
        dest=dest,
        failure=failure,
        failable=failable,
        ingress=[(1, ingress_port)],
    )
    return ChainModel(
        topology=topo,
        policy=model.policy,
        ingress=Packet({"sw": 1, "pt": ingress_port}),
        delivered=model.delivered,
        diamonds=diamonds,
        pfail=pfail,
    )
