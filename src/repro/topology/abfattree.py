"""AB FatTree topologies (Liu et al., F10; §7 / Figure 11(a) / Appendix E).

An AB FatTree has the same switches as a standard FatTree but rewires the
aggregation-to-core links so that pods come in two *types*:

* type A pods use the standard wiring — aggregation switch ``i`` connects
  to the core switches of row ``i``;
* type B pods use a staggered wiring — aggregation switch ``i`` connects
  to the core switches of *column* ``i``.

As a consequence, core switch ``(a, b)`` reaches type-A pods through their
aggregation switch ``a`` and type-B pods through their aggregation switch
``b``.  When the downward link of a core towards the destination pod
fails, aggregation switches of the *opposite* type reach the destination
pod through a different aggregation switch — the 3-hop detour that F10
exploits (Appendix E).
"""

from __future__ import annotations

from repro.topology.fattree import FatTreeShape, _build_pods
from repro.topology.graph import Topology


def ab_fat_tree(p: int, with_hosts: bool = True) -> Topology:
    """Build a *p*-ary AB FatTree with pods alternating between types A and B."""
    shape = FatTreeShape(p)
    topo = Topology(name=f"abfattree-{p}")
    _build_pods(topo, shape, with_hosts=with_hosts, alternate_types=True)
    for pod in range(shape.pods):
        pod_type = "A" if pod % 2 == 0 else "B"
        for i in range(shape.agg_per_pod):
            agg = shape.agg_id(pod, i)
            for j in range(shape.half):
                if pod_type == "A":
                    core = shape.core_id(i, j)
                else:
                    core = shape.core_id(j, i)
                topo.add_link(agg, core)
    return topo


def pod_type(topo: Topology, switch: int) -> str:
    """The subtree type (``"A"`` or ``"B"``) of an edge/aggregation switch."""
    subtree = topo.attributes(switch).get("subtree")
    if subtree is None:
        raise KeyError(f"switch {switch} has no subtree type (is it a core switch?)")
    return subtree
