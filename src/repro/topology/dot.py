"""Reading and writing topologies in Graphviz DOT format.

McNetKAT's frontend generates network models from Graphviz topology
descriptions; this module provides a small, dependency-free DOT
writer/reader for the same purpose (node attribute ``kind`` distinguishes
switches from hosts, edge attributes ``src_port``/``dst_port`` carry the
port numbering).
"""

from __future__ import annotations

import re

from repro.topology.graph import Topology


def to_dot(topo: Topology) -> str:
    """Render a topology as a Graphviz graph with port annotations."""
    lines = [f'graph "{topo.name}" {{']
    for node in sorted(topo.graph.nodes, key=str):
        attrs = topo.attributes(node)
        kind = attrs.get("kind", "switch")
        extra = "".join(
            f", {key}={value!r}" if isinstance(value, str) else f", {key}={value}"
            for key, value in sorted(attrs.items())
            if key not in ("kind",) and isinstance(value, (int, str))
        )
        lines.append(f'  "{node}" [kind="{kind}"{extra}];')
    seen = set()
    for link in topo.directed_links():
        key = frozenset([(link.node, link.port), (link.peer, link.peer_port)])
        if key in seen:
            continue
        seen.add(key)
        lines.append(
            f'  "{link.node}" -- "{link.peer}" '
            f"[src_port={link.port}, dst_port={link.peer_port}];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(topo: Topology, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(topo))
        handle.write("\n")


_NODE_RE = re.compile(r'^\s*"(?P<name>[^"]+)"\s*\[(?P<attrs>[^\]]*)\]\s*;\s*$')
_EDGE_RE = re.compile(
    r'^\s*"(?P<a>[^"]+)"\s*--\s*"(?P<b>[^"]+)"\s*\[(?P<attrs>[^\]]*)\]\s*;\s*$'
)
_ATTR_RE = re.compile(r"(?P<key>\w+)\s*=\s*(?P<value>\"[^\"]*\"|'[^']*'|[^,\s]+)")


def _parse_attrs(text: str) -> dict[str, object]:
    attrs: dict[str, object] = {}
    for match in _ATTR_RE.finditer(text):
        key = match.group("key")
        raw = match.group("value").strip("\"'")
        attrs[key] = int(raw) if raw.lstrip("-").isdigit() else raw
    return attrs


def _coerce_node(name: str) -> object:
    return int(name) if name.lstrip("-").isdigit() else name


def from_dot(source: str, name: str = "topology") -> Topology:
    """Parse a topology from the DOT dialect produced by :func:`to_dot`."""
    topo = Topology(name=name)
    edges: list[tuple[object, object, dict[str, object]]] = []
    for line in source.splitlines():
        node_match = _NODE_RE.match(line)
        if node_match:
            attrs = _parse_attrs(node_match.group("attrs"))
            node = _coerce_node(node_match.group("name"))
            kind = attrs.pop("kind", "switch")
            if kind == "host":
                topo.add_host(node, **attrs)
            else:
                topo.add_switch(node, **attrs)
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            attrs = _parse_attrs(edge_match.group("attrs"))
            edges.append(
                (
                    _coerce_node(edge_match.group("a")),
                    _coerce_node(edge_match.group("b")),
                    attrs,
                )
            )
    for a, b, attrs in edges:
        topo.add_link(
            a,
            b,
            port_a=attrs.get("src_port"),
            port_b=attrs.get("dst_port"),
        )
    return topo


def read_dot(path: str) -> Topology:
    with open(path, "r", encoding="utf-8") as handle:
        return from_dot(handle.read())
