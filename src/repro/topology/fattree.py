"""FatTree data-center topologies (Al-Fares et al., §6 / Figure 6).

A *p*-ary FatTree (``p`` even) has three levels:

* ``(p/2)^2`` core switches,
* ``p`` pods, each containing ``p/2`` aggregation and ``p/2`` edge
  switches,
* ``p/2`` hosts per edge switch (``p^3/4`` hosts total).

Switch identifiers are dense integers: edge switches first (pod-major),
then aggregation switches, then core switches, so that ``sw = 1`` is the
first edge switch of pod 0 — the destination used throughout the paper's
case study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.graph import Topology


@dataclass(frozen=True)
class FatTreeShape:
    """Derived size parameters of a *p*-ary FatTree."""

    p: int

    def __post_init__(self) -> None:
        if self.p < 2 or self.p % 2 != 0:
            raise ValueError("FatTree parameter p must be an even integer >= 2")

    @property
    def half(self) -> int:
        return self.p // 2

    @property
    def pods(self) -> int:
        return self.p

    @property
    def edge_per_pod(self) -> int:
        return self.half

    @property
    def agg_per_pod(self) -> int:
        return self.half

    @property
    def edge_count(self) -> int:
        return self.p * self.half

    @property
    def agg_count(self) -> int:
        return self.p * self.half

    @property
    def core_count(self) -> int:
        return self.half * self.half

    @property
    def switch_count(self) -> int:
        return self.edge_count + self.agg_count + self.core_count

    @property
    def host_count(self) -> int:
        return self.edge_count * self.half

    # -- switch numbering -------------------------------------------------------
    def edge_id(self, pod: int, index: int) -> int:
        return 1 + pod * self.edge_per_pod + index

    def agg_id(self, pod: int, index: int) -> int:
        return 1 + self.edge_count + pod * self.agg_per_pod + index

    def core_id(self, row: int, column: int) -> int:
        return 1 + self.edge_count + self.agg_count + row * self.half + column


def fat_tree(p: int, with_hosts: bool = True) -> Topology:
    """Build a standard *p*-ary FatTree topology.

    Aggregation switch ``i`` of every pod connects to core switches
    ``(i, 0) … (i, p/2-1)`` — the symmetric wiring whose lack of short
    detours motivates the AB FatTree (§7, Appendix E).
    """
    shape = FatTreeShape(p)
    topo = Topology(name=f"fattree-{p}")
    _build_pods(topo, shape, with_hosts=with_hosts)
    for pod in range(shape.pods):
        for i in range(shape.agg_per_pod):
            agg = shape.agg_id(pod, i)
            for j in range(shape.half):
                topo.add_link(agg, shape.core_id(i, j))
    return topo


def _build_pods(
    topo: Topology, shape: FatTreeShape, with_hosts: bool, alternate_types: bool = False
) -> None:
    """Add edge/aggregation/core switches, pod-internal links, and hosts.

    ``alternate_types`` labels pods with alternating subtree types A/B —
    meaningful only for the AB FatTree wiring; a standard FatTree has a
    single subtree type, which is precisely why it lacks 3-hop detours.
    """
    for row in range(shape.half):
        for column in range(shape.half):
            topo.add_switch(
                shape.core_id(row, column), level="core", row=row, column=column
            )
    for pod in range(shape.pods):
        pod_type = ("A" if pod % 2 == 0 else "B") if alternate_types else "A"
        for i in range(shape.agg_per_pod):
            topo.add_switch(
                shape.agg_id(pod, i), level="agg", pod=pod, index=i, subtree=pod_type
            )
        for j in range(shape.edge_per_pod):
            edge = shape.edge_id(pod, j)
            topo.add_switch(edge, level="edge", pod=pod, index=j, subtree=pod_type)
            for i in range(shape.agg_per_pod):
                topo.add_link(edge, shape.agg_id(pod, i))
            if with_hosts:
                for h in range(shape.half):
                    host = f"h{edge}_{h}"
                    topo.add_host(host)
                    topo.add_link(edge, host)


def edge_switches(topo: Topology) -> list[int]:
    """All edge-level switches of a (AB) FatTree, sorted by identifier."""
    return sorted(
        sw for sw in topo.switches() if topo.attributes(sw).get("level") == "edge"
    )


def core_switches(topo: Topology) -> list[int]:
    return sorted(
        sw for sw in topo.switches() if topo.attributes(sw).get("level") == "core"
    )


def aggregation_switches(topo: Topology) -> list[int]:
    return sorted(
        sw for sw in topo.switches() if topo.attributes(sw).get("level") == "agg"
    )
