"""Parallel computation of loop transition rows (§6, Figure 8).

McNetKAT parallelises model construction by compiling the per-switch
branches of the ``case sw=…`` program independently and combining the
results map-reduce style.  In this reproduction the analogous expensive,
embarrassingly parallel work is computing the transition row of every
reachable loop-head state (one row = one forward run of the loop body, a
per-switch computation for network models).  This module distributes that
work over a :mod:`multiprocessing` pool.
"""

from __future__ import annotations

import os
import pickle
from typing import Iterable, Sequence

from dataclasses import dataclass
from multiprocessing import get_context

from repro.backends.native import NativeBackend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.interpreter import Interpreter, Outcome
from repro.core.packet import DROP, Packet, _DropType

# Worker-process state, initialised once per worker by ``_worker_init``.
_WORKER: dict[str, object] = {}


def _worker_init(body_bytes: bytes) -> None:
    _WORKER["body"] = pickle.loads(body_bytes)
    _WORKER["interp"] = Interpreter()


def _worker_rows(packets: Sequence[Packet]) -> list[tuple[Packet, list[tuple[Packet | None, float]]]]:
    body: s.Policy = _WORKER["body"]  # type: ignore[assignment]
    interp: Interpreter = _WORKER["interp"]  # type: ignore[assignment]
    results = []
    for packet in packets:
        dist = interp.run_packet(body, packet)
        row = [
            (None if isinstance(outcome, _DropType) else outcome, float(prob))
            for outcome, prob in dist.items()
        ]
        results.append((packet, row))
    return results


def _chunk(items: Sequence[Packet], chunks: int) -> list[list[Packet]]:
    chunks = max(1, min(chunks, len(items)))
    size = (len(items) + chunks - 1) // chunks
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def transition_rows(
    body: s.Policy,
    packets: Iterable[Packet],
    workers: int | None = None,
) -> dict[Packet, Dist[Outcome]]:
    """Compute ``{packet: body-output-distribution}`` with a process pool.

    With ``workers`` ≤ 1 (or very small inputs) the computation runs
    sequentially in-process, so the function is safe to use
    unconditionally.
    """
    packets = list(packets)
    workers = workers if workers is not None else (os.cpu_count() or 1)
    if workers <= 1 or len(packets) < 4:
        interp = Interpreter()
        return {packet: interp.run_packet(body, packet) for packet in packets}

    body_bytes = pickle.dumps(body)
    try:
        context = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = get_context("spawn")
    rows: dict[Packet, Dist[Outcome]] = {}
    with context.Pool(
        processes=workers, initializer=_worker_init, initargs=(body_bytes,)
    ) as pool:
        for batch in pool.map(_worker_rows, _chunk(packets, workers * 4)):
            for packet, row in batch:
                weights = {
                    (DROP if outcome is None else outcome): prob for outcome, prob in row
                }
                rows[packet] = Dist(weights, check=False)
    return rows


class ParallelInterpreter(Interpreter):
    """A forward interpreter whose loop exploration runs on multiple cores.

    Loop-head states are explored breadth-first in waves; the transition
    rows of each wave are computed in parallel worker processes.  The
    absorption solve itself remains sequential (it is a single sparse LU
    factorisation), matching the structure of McNetKAT's parallel backend
    where per-switch compilation is parallel and the final combination is
    not.
    """

    def __init__(self, workers: int | None = None, exact: bool = False, **kwargs):
        super().__init__(exact=exact, **kwargs)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)

    def _explore_loop(self, loop: s.WhileDo, seed: Packet) -> None:
        from repro.core.interpreter import eval_predicate

        rows = self._loop_rows.setdefault(id(loop), {})
        wave = [seed] if seed not in rows else []
        while wave:
            computed = transition_rows(loop.body, wave, workers=self.workers)
            rows.update(computed)
            if len(rows) > self.max_loop_states:
                raise RuntimeError(
                    f"loop exploration exceeded {self.max_loop_states} states"
                )
            next_wave: list[Packet] = []
            seen_next: set[Packet] = set()
            for row in computed.values():
                for outcome in row.support():
                    if isinstance(outcome, _DropType):
                        continue
                    if (
                        eval_predicate(loop.guard, outcome)
                        and outcome not in rows
                        and outcome not in seen_next
                    ):
                        seen_next.add(outcome)
                        next_wave.append(outcome)
            wave = next_wave


@dataclass
class ParallelBackend(NativeBackend):
    """The native backend facade with multi-core loop exploration.

    Identical query API to :class:`NativeBackend`, but loop-head states
    are explored in waves by a process pool (``workers=None`` uses every
    core).  Registered in the backend registry as ``"parallel"``.
    """

    workers: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._interpreter = ParallelInterpreter(workers=self.workers, exact=self.exact)
