"""Parallel computation of loop transition rows (§6, Figure 8).

McNetKAT parallelises model construction by compiling the per-switch
branches of the ``case sw=…`` program independently and combining the
results map-reduce style.  In this reproduction the analogous expensive,
embarrassingly parallel work is computing the transition row of every
reachable loop-head state (one row = one evaluation of the loop body, a
per-switch computation for network models).  This module distributes
that work over a :mod:`multiprocessing` pool.

Workers receive the *compiled* loop body — the manager-independent spec
of its per-switch FDDs (:meth:`repro.core.fdd.evaluator.CompiledBody.to_spec`)
— not the pickled AST, so they evaluate diagrams instead of re-walking
the syntax tree.  Bodies the compiler cannot handle fall back to
shipping the AST.  Exact interpreters keep exact weights end to end:
worker rows preserve :class:`~fractions.Fraction` probabilities instead
of coercing them through ``float``.
"""

from __future__ import annotations

import os
import pickle
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

from dataclasses import dataclass
from multiprocessing import get_context

from repro.backends.native import NativeBackend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.fdd.evaluator import CompiledBody
from repro.core.interpreter import Interpreter, Outcome
from repro.core.packet import DROP, Packet, _DropType

# Worker-process state, initialised once per worker by ``_worker_init``.
_WORKER: dict[str, object] = {}

#: A worker payload: ("spec", compiled-body spec, exact) or
#: ("ast", pickled body, exact).
_Payload = tuple[str, object, bool]


def _make_payload(body: s.Policy, exact: bool, compiled: CompiledBody | None) -> _Payload:
    if compiled is not None:
        return ("spec", compiled.to_spec(), exact)
    return ("ast", pickle.dumps(body), exact)


def _worker_init(payload: _Payload) -> None:
    kind, data, exact = payload
    if kind == "spec":
        _WORKER["runner"] = CompiledBody.from_spec(data).run_packet
    else:
        body: s.Policy = pickle.loads(data)
        interpreter = Interpreter(exact=exact)
        _WORKER["runner"] = lambda packet: interpreter.run_packet(body, packet)


def _worker_rows(
    packets: Sequence[Packet],
) -> list[tuple[Packet, list[tuple[Packet | None, object]]]]:
    runner: Callable[[Packet], Dist[Outcome]] = _WORKER["runner"]  # type: ignore[assignment]
    results = []
    for packet in packets:
        dist = runner(packet)
        # Probabilities keep their type (Fraction stays Fraction): exact
        # interpreters must not silently degrade to floats.
        row = [
            (None if isinstance(outcome, _DropType) else outcome, prob)
            for outcome, prob in dist.items()
        ]
        results.append((packet, row))
    return results


def _chunk(items: Sequence[Packet], chunks: int) -> list[list[Packet]]:
    chunks = max(1, min(chunks, len(items)))
    size = (len(items) + chunks - 1) // chunks
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _merge_batches(batches, rows: dict[Packet, Dist[Outcome]]) -> None:
    for batch in batches:
        for packet, row in batch:
            weights = {
                (DROP if outcome is None else outcome): prob for outcome, prob in row
            }
            rows[packet] = Dist(weights, check=False)


@contextmanager
def _row_pool(payload: _Payload, workers: int):
    """A worker pool computing ``{packet: row}`` maps, reused across waves."""
    try:
        context = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = get_context("spawn")
    with context.Pool(
        processes=workers, initializer=_worker_init, initargs=(payload,)
    ) as pool:

        def compute(packets: Sequence[Packet]) -> dict[Packet, Dist[Outcome]]:
            rows: dict[Packet, Dist[Outcome]] = {}
            _merge_batches(
                pool.map(_worker_rows, _chunk(list(packets), workers * 4)), rows
            )
            return rows

        yield compute


def transition_rows(
    body: s.Policy,
    packets: Iterable[Packet],
    workers: int | None = None,
    exact: bool = False,
    compiled: CompiledBody | None = None,
) -> dict[Packet, Dist[Outcome]]:
    """Compute ``{packet: body-output-distribution}`` with a process pool.

    With ``workers`` ≤ 1 (or very small inputs) the computation runs
    sequentially in-process, so the function is safe to use
    unconditionally.  ``compiled`` supplies an already-compiled body
    whose spec is shipped to the workers (and used directly on the
    sequential path).
    """
    packets = list(packets)
    workers = workers if workers is not None else (os.cpu_count() or 1)
    if workers <= 1 or len(packets) < 4:
        if compiled is not None:
            return {packet: compiled.run_packet(packet) for packet in packets}
        interp = Interpreter(exact=exact)
        return {packet: interp.run_packet(body, packet) for packet in packets}

    with _row_pool(_make_payload(body, exact, compiled), workers) as compute:
        return compute(packets)


class ParallelInterpreter(Interpreter):
    """A forward interpreter whose loop exploration runs on multiple cores.

    Loop-head states are explored breadth-first in waves; the transition
    rows of each wave are computed in parallel worker processes, each of
    which evaluates the compiled body FDDs rebuilt from the spec shipped
    at pool start-up.  The absorption solve itself remains sequential
    (it is a single sparse LU factorisation), matching the structure of
    McNetKAT's parallel backend where per-switch compilation is parallel
    and the final combination is not.
    """

    def __init__(self, workers: int | None = None, exact: bool = False, **kwargs):
        super().__init__(exact=exact, **kwargs)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)

    def _explore_loop(self, loop: s.WhileDo, seed: Packet) -> None:
        rows = self._loop_rows.setdefault(id(loop), {})
        if seed in rows:
            return
        if self.workers <= 1:
            super()._explore_loop(loop, seed)
            return
        compiled = self._compiled_body(loop)
        pool_cm = None
        compute = None
        try:
            wave = [seed]
            while wave:
                if len(wave) < 4:
                    # Tiny waves (incremental seeds over a mostly-explored
                    # loop) are cheaper in-process than over IPC — no pool
                    # is even started for them.
                    computed = {
                        packet: compiled.run_packet(packet)
                        if compiled is not None
                        else self.run_packet(loop.body, packet)
                        for packet in wave
                    }
                else:
                    if compute is None:
                        payload = _make_payload(loop.body, self.exact, compiled)
                        pool_cm = _row_pool(payload, self.workers)
                        compute = pool_cm.__enter__()
                    computed = compute(wave)
                rows.update(computed)
                if len(rows) > self.max_loop_states:
                    raise RuntimeError(
                        f"loop exploration exceeded {self.max_loop_states} states"
                    )
                wave = self._next_wave(loop, computed, rows)
        finally:
            if pool_cm is not None:
                pool_cm.__exit__(None, None, None)

    def _next_wave(
        self,
        loop: s.WhileDo,
        computed: dict[Packet, Dist[Outcome]],
        rows: dict[Packet, Dist[Outcome]],
    ) -> list[Packet]:
        from repro.core.interpreter import eval_predicate

        next_wave: list[Packet] = []
        seen_next: set[Packet] = set()
        for row in computed.values():
            for outcome in row.support():
                if isinstance(outcome, _DropType):
                    continue
                if (
                    eval_predicate(loop.guard, outcome)
                    and outcome not in rows
                    and outcome not in seen_next
                ):
                    seen_next.add(outcome)
                    next_wave.append(outcome)
        return next_wave


@dataclass
class ParallelBackend(NativeBackend):
    """The native backend facade with multi-core loop exploration.

    Identical query API to :class:`NativeBackend`, but loop-head states
    are explored in waves by a process pool (``workers=None`` uses every
    core).  Registered in the backend registry as ``"parallel"``.
    """

    workers: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._interpreter = ParallelInterpreter(
            workers=self.workers, exact=self.exact, compiler=self._compiler
        )
