"""Parallel computation of loop transition rows (§6, Figure 8).

McNetKAT parallelises model construction by compiling the per-switch
branches of the ``case sw=…`` program independently and combining the
results map-reduce style.  In this reproduction the analogous expensive,
embarrassingly parallel work is computing the transition row of every
reachable loop-head state (one row = one evaluation of the loop body, a
per-switch computation for network models).  This module distributes
that work over a :mod:`multiprocessing` pool.

Workers receive the *compiled* loop body — the manager-independent spec
of its per-switch FDDs (:meth:`repro.core.fdd.evaluator.CompiledBody.to_spec`)
— not the pickled AST, so they evaluate diagrams instead of re-walking
the syntax tree.  Bodies the compiler cannot handle fall back to
shipping the AST.  Exact interpreters keep exact weights end to end:
worker rows preserve :class:`~fractions.Fraction` probabilities instead
of coercing them through ``float``.
"""

from __future__ import annotations

import os
import pickle
import weakref
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

from dataclasses import dataclass
from multiprocessing import get_context

from repro.backends.native import NativeBackend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.fdd.evaluator import CompiledBody
from repro.core.interpreter import Interpreter, Outcome
from repro.core.packet import DROP, Packet, _DropType

# Worker-process state, initialised once per worker by ``_worker_init``.
_WORKER: dict[str, object] = {}

#: A worker payload: ("spec", compiled-body spec, exact) or
#: ("ast", pickled body, exact).
_Payload = tuple[str, object, bool]


def _make_payload(body: s.Policy, exact: bool, compiled: CompiledBody | None) -> _Payload:
    if compiled is not None:
        return ("spec", compiled.to_spec(), exact)
    return ("ast", pickle.dumps(body), exact)


def _worker_init(payload: _Payload) -> None:
    kind, data, exact = payload
    if kind == "spec":
        _WORKER["runner"] = CompiledBody.from_spec(data).run_packet
    else:
        body: s.Policy = pickle.loads(data)
        interpreter = Interpreter(exact=exact)
        _WORKER["runner"] = lambda packet: interpreter.run_packet(body, packet)


def _worker_rows(
    packets: Sequence[Packet],
) -> list[tuple[Packet, list[tuple[Packet | None, object]]]]:
    runner: Callable[[Packet], Dist[Outcome]] = _WORKER["runner"]  # type: ignore[assignment]
    results = []
    for packet in packets:
        dist = runner(packet)
        # Probabilities keep their type (Fraction stays Fraction): exact
        # interpreters must not silently degrade to floats.
        row = [
            (None if isinstance(outcome, _DropType) else outcome, prob)
            for outcome, prob in dist.items()
        ]
        results.append((packet, row))
    return results


def _chunk(items: Sequence[Packet], chunks: int) -> list[list[Packet]]:
    chunks = max(1, min(chunks, len(items)))
    size = (len(items) + chunks - 1) // chunks
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _merge_batches(batches, rows: dict[Packet, Dist[Outcome]]) -> None:
    for batch in batches:
        for packet, row in batch:
            weights = {
                (DROP if outcome is None else outcome): prob for outcome, prob in row
            }
            rows[packet] = Dist(weights, check=False)


def _shutdown_pool(pool) -> None:
    """Terminate and join a worker pool (finalizer-safe, idempotent)."""
    pool.terminate()
    pool.join()


def _start_pool(payload: _Payload, workers: int):
    """Start a worker pool computing ``{packet: row}`` maps.

    Returns ``(pool, compute)``; the caller owns the pool and must
    ``terminate()``/``join()`` it (or use :func:`_row_pool` for scoped
    use).  The pool is reused across exploration waves — and, via
    :class:`ParallelInterpreter`, across whole loop explorations.
    """
    try:
        context = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = get_context("spawn")
    pool = context.Pool(processes=workers, initializer=_worker_init, initargs=(payload,))

    def compute(packets: Sequence[Packet]) -> dict[Packet, Dist[Outcome]]:
        rows: dict[Packet, Dist[Outcome]] = {}
        _merge_batches(
            pool.map(_worker_rows, _chunk(list(packets), workers * 4)), rows
        )
        return rows

    return pool, compute


@contextmanager
def _row_pool(payload: _Payload, workers: int):
    """Scoped wrapper around :func:`_start_pool` (pool torn down on exit)."""
    pool, compute = _start_pool(payload, workers)
    try:
        with pool:
            yield compute
    finally:
        pool.join()


def transition_rows(
    body: s.Policy,
    packets: Iterable[Packet],
    workers: int | None = None,
    exact: bool = False,
    compiled: CompiledBody | None = None,
) -> dict[Packet, Dist[Outcome]]:
    """Compute ``{packet: body-output-distribution}`` with a process pool.

    With ``workers`` ≤ 1 (or very small inputs) the computation runs
    sequentially in-process, so the function is safe to use
    unconditionally.  ``compiled`` supplies an already-compiled body
    whose spec is shipped to the workers (and used directly on the
    sequential path).
    """
    packets = list(packets)
    workers = workers if workers is not None else (os.cpu_count() or 1)
    if workers <= 1 or len(packets) < 4:
        if compiled is not None:
            return {packet: compiled.run_packet(packet) for packet in packets}
        interp = Interpreter(exact=exact)
        return {packet: interp.run_packet(body, packet) for packet in packets}

    with _row_pool(_make_payload(body, exact, compiled), workers) as compute:
        return compute(packets)


class ParallelInterpreter(Interpreter):
    """A forward interpreter whose loop exploration runs on multiple cores.

    Loop-head states are explored breadth-first in waves; the transition
    rows of each wave are computed in parallel worker processes, each of
    which evaluates the compiled body FDDs rebuilt from the spec shipped
    at pool start-up.  The absorption solve itself remains sequential
    (it is a single sparse LU factorisation), matching the structure of
    McNetKAT's parallel backend where per-switch compilation is parallel
    and the final combination is not.

    The worker pool is *persistent*: started on the first wave that needs
    it and reused across waves, incremental re-explorations, and every
    loop sharing the same body (the common case — a network model's
    pre-loop hop and its loop share one body).  Exploring a loop with a
    *different* body restarts the pool, since workers are initialised
    with one compiled-body spec.  The pool lives until :meth:`close` —
    call it explicitly, use the interpreter as a context manager, or let
    the owning backend/session close it.
    """

    def __init__(self, workers: int | None = None, exact: bool = False, **kwargs):
        super().__init__(exact=exact, **kwargs)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.pools_started = 0
        self._pool_body: s.Policy | None = None
        self._pool = None
        self._pool_compute: Callable[[Sequence[Packet]], dict[Packet, Dist[Outcome]]] | None = None
        self._pool_finalizer: weakref.finalize | None = None

    def close(self) -> None:
        """Terminate the persistent worker pool (idempotent)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()  # terminates + joins the pool, once
        self._pool_finalizer = None
        self._pool = None
        self._pool_compute = None
        self._pool_body = None

    def _pool_for(self, body: s.Policy, compiled: CompiledBody | None):
        """The persistent pool's compute function, (re)starting it if needed."""
        if self._pool_compute is not None and self._pool_body is body:
            return self._pool_compute
        self.close()
        payload = _make_payload(body, self.exact, compiled)
        self._pool, self._pool_compute = _start_pool(payload, self.workers)
        # Safety net for interpreters nobody closes (e.g. a throwaway
        # backend="parallel" resolved inside an analysis call): when this
        # interpreter is garbage-collected, its worker processes go too.
        self._pool_finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        self._pool_body = body
        self.pools_started += 1
        return self._pool_compute

    def _explore_loop(self, loop: s.WhileDo, seed: Packet) -> None:
        rows = self._loop_rows.setdefault(id(loop), {})
        if seed in rows:
            return
        if self.workers <= 1:
            super()._explore_loop(loop, seed)
            return
        compiled = self._compiled_body(loop)
        wave = [seed]
        while wave:
            if len(wave) < 4:
                # Tiny waves (incremental seeds over a mostly-explored
                # loop) are cheaper in-process than over IPC — no pool
                # is even started for them.
                computed = {
                    packet: compiled.run_packet(packet)
                    if compiled is not None
                    else self.run_packet(loop.body, packet)
                    for packet in wave
                }
            else:
                computed = self._pool_for(loop.body, compiled)(wave)
            rows.update(computed)
            if len(rows) > self.max_loop_states:
                raise RuntimeError(
                    f"loop exploration exceeded {self.max_loop_states} states"
                )
            wave = self._next_wave(loop, computed, rows)

    def _next_wave(
        self,
        loop: s.WhileDo,
        computed: dict[Packet, Dist[Outcome]],
        rows: dict[Packet, Dist[Outcome]],
    ) -> list[Packet]:
        from repro.core.interpreter import eval_predicate

        next_wave: list[Packet] = []
        seen_next: set[Packet] = set()
        for row in computed.values():
            for outcome in row.support():
                if isinstance(outcome, _DropType):
                    continue
                if (
                    eval_predicate(loop.guard, outcome)
                    and outcome not in rows
                    and outcome not in seen_next
                ):
                    seen_next.add(outcome)
                    next_wave.append(outcome)
        return next_wave


@dataclass
class ParallelBackend(NativeBackend):
    """The native backend facade with multi-core loop exploration.

    Identical query API to :class:`NativeBackend`, but loop-head states
    are explored in waves by a process pool (``workers=None`` uses every
    core).  Registered in the backend registry as ``"parallel"``.
    """

    workers: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._interpreter = ParallelInterpreter(
            workers=self.workers, exact=self.exact, compiler=self._compiler
        )
