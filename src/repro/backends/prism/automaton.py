"""Thompson-style automaton construction for the PRISM backend (§5.2).

Guarded ProbNetKAT programs are first translated into a finite state
machine whose edges carry a predicate, a probability, and a sequence of
field updates, subject to the paper's well-formedness conditions:

1. for each state, the predicates on its outgoing edge groups partition
   the state space;
2. for each state and predicate, the probabilities of the edges guarded
   by that predicate sum to one.

The machine is then simplified by collapsing basic blocks — chains of
unconditional probability-one edges — which is the step that keeps the
program counter small and the resulting PRISM model tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable

from repro.core import syntax as s
from repro.core.compiler import GuardedFragmentError


@dataclass(frozen=True)
class Edge:
    """A transition ``src --[guard, prob, updates]--> dst``."""

    src: int
    guard: s.Predicate
    probability: Fraction
    updates: tuple[tuple[str, int], ...]
    dst: int


@dataclass
class Automaton:
    """A probabilistic control-flow automaton with distinguished states.

    ``start`` is the entry point, ``accept`` the normal exit, and ``reject``
    the state reached when a test fails (the packet is dropped).
    """

    start: int
    accept: int
    reject: int
    edges: list[Edge] = field(default_factory=list)
    state_count: int = 0

    def states(self) -> range:
        return range(self.state_count)

    def outgoing(self, state: int) -> list[Edge]:
        return [edge for edge in self.edges if edge.src == state]

    def successors(self, state: int) -> set[int]:
        return {edge.dst for edge in self.edges if edge.src == state}


class _Builder:
    def __init__(self) -> None:
        self.edges: list[Edge] = []
        self.count = 0

    def fresh(self) -> int:
        state = self.count
        self.count += 1
        return state

    def edge(
        self,
        src: int,
        dst: int,
        guard: s.Predicate = s.SKIP,
        probability: Fraction | int = 1,
        updates: Iterable[tuple[str, int]] = (),
    ) -> None:
        self.edges.append(
            Edge(src, guard, Fraction(probability), tuple(updates), dst)
        )


def build_automaton(policy: s.Policy) -> Automaton:
    """Translate a guarded policy into its control-flow automaton."""
    builder = _Builder()
    start = builder.fresh()
    accept = builder.fresh()
    reject = builder.fresh()
    _translate(builder, policy, start, accept, reject)
    automaton = Automaton(
        start=start,
        accept=accept,
        reject=reject,
        edges=builder.edges,
        state_count=builder.count,
    )
    return collapse_basic_blocks(automaton)


def _translate(builder: _Builder, policy: s.Policy, entry: int, exit_: int, reject: int) -> None:
    if isinstance(policy, s.Predicate):
        if isinstance(policy, s.TrueP):
            builder.edge(entry, exit_)
            return
        if isinstance(policy, s.FalseP):
            builder.edge(entry, reject)
            return
        builder.edge(entry, exit_, guard=policy)
        builder.edge(entry, reject, guard=s.neg(policy))
        return
    if isinstance(policy, s.Assign):
        builder.edge(entry, exit_, updates=((policy.field, policy.value),))
        return
    if isinstance(policy, s.Seq):
        current = entry
        parts = list(policy.parts)
        for index, part in enumerate(parts):
            target = exit_ if index == len(parts) - 1 else builder.fresh()
            _translate(builder, part, current, target, reject)
            current = target
        if not parts:
            builder.edge(entry, exit_)
        return
    if isinstance(policy, s.Choice):
        for branch, probability in policy.branches:
            branch_entry = builder.fresh()
            builder.edge(entry, branch_entry, probability=probability)
            _translate(builder, branch, branch_entry, exit_, reject)
        return
    if isinstance(policy, s.IfThenElse):
        then_entry = builder.fresh()
        else_entry = builder.fresh()
        builder.edge(entry, then_entry, guard=policy.guard)
        builder.edge(entry, else_entry, guard=s.neg(policy.guard))
        _translate(builder, policy.then, then_entry, exit_, reject)
        _translate(builder, policy.otherwise, else_entry, exit_, reject)
        return
    if isinstance(policy, s.Case):
        _translate(builder, s.case_to_ite(policy), entry, exit_, reject)
        return
    if isinstance(policy, s.WhileDo):
        body_entry = builder.fresh()
        builder.edge(entry, body_entry, guard=policy.guard)
        builder.edge(entry, exit_, guard=s.neg(policy.guard))
        _translate(builder, policy.body, body_entry, entry, reject)
        return
    if isinstance(policy, (s.Union, s.Star)):
        raise GuardedFragmentError(
            "the PRISM backend only supports the guarded fragment "
            "(no bare union or Kleene star)"
        )
    raise TypeError(f"unknown policy node {type(policy)!r}")


def collapse_basic_blocks(automaton: Automaton) -> Automaton:
    """Collapse chains of unconditional probability-one edges.

    A state whose *only* outgoing edge is ``--[skip, 1, updates]--> next``
    is merged into its successor whenever the successor's outgoing edges
    do not test any field written by ``updates`` (otherwise the guard
    would have to be rewritten).  Protected states (start, accept,
    reject) are never removed.
    """
    protected = {automaton.start, automaton.accept, automaton.reject}
    edges = list(automaton.edges)
    changed = True
    while changed:
        changed = False
        by_src: dict[int, list[Edge]] = {}
        for edge in edges:
            by_src.setdefault(edge.src, []).append(edge)
        for state, outgoing in by_src.items():
            if state in protected or len(outgoing) != 1:
                continue
            only = outgoing[0]
            if only.probability != 1 or not isinstance(only.guard, s.TrueP):
                continue
            if only.dst == state:
                continue
            written = {name for name, _ in only.updates}
            successor_edges = by_src.get(only.dst, [])
            if any(
                written & edge.guard.fields() for edge in successor_edges
            ):
                continue
            # Splice: redirect the state's unique edge through the successor.
            replacement: list[Edge] = []
            for edge in edges:
                if edge.src != state:
                    replacement.append(edge)
            for succ_edge in successor_edges:
                merged_updates = dict(only.updates)
                merged_updates.update(dict(succ_edge.updates))
                replacement.append(
                    Edge(
                        state,
                        succ_edge.guard,
                        succ_edge.probability,
                        tuple(sorted(merged_updates.items())),
                        succ_edge.dst,
                    )
                )
            if successor_edges:
                edges = replacement
                changed = True
                break
    reachable = _reachable_states(automaton.start, edges)
    reachable |= protected
    kept = [edge for edge in edges if edge.src in reachable]
    remap = {old: new for new, old in enumerate(sorted(reachable))}
    renumbered = [
        Edge(remap[e.src], e.guard, e.probability, e.updates, remap[e.dst])
        for e in kept
        if e.dst in remap
    ]
    return Automaton(
        start=remap[automaton.start],
        accept=remap[automaton.accept],
        reject=remap[automaton.reject],
        edges=renumbered,
        state_count=len(remap),
    )


def _reachable_states(start: int, edges: list[Edge]) -> set[int]:
    successors: dict[int, set[int]] = {}
    for edge in edges:
        successors.setdefault(edge.src, set()).add(edge.dst)
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for succ in successors.get(state, ()):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen
