"""A miniature DTMC engine for translated PRISM programs.

The real PRISM binary cannot be bundled in this offline reproduction, so
this module provides a small discrete-time Markov chain engine that
executes :class:`PrismModel` programs directly: it explores the reachable
variable valuations, classifies terminal states (no enabled command), and
computes reachability probabilities with the same absorbing-chain solvers
the native backend uses.  The state space it explores is exactly the one
PRISM would build for the same model, so backend-to-backend performance
comparisons keep their shape.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.markov import reachable_states, solve_absorption, solve_absorption_exact
from repro.backends.prism.model import Command, PrismModel

Valuation = tuple[tuple[str, int], ...]


def eval_guard(pred: s.Predicate, valuation: Mapping[str, int]) -> bool:
    """Evaluate a predicate over a variable valuation."""
    if isinstance(pred, s.TrueP):
        return True
    if isinstance(pred, s.FalseP):
        return False
    if isinstance(pred, s.Test):
        return valuation.get(pred.field) == pred.value
    if isinstance(pred, s.And):
        return eval_guard(pred.left, valuation) and eval_guard(pred.right, valuation)
    if isinstance(pred, s.Or):
        return eval_guard(pred.left, valuation) or eval_guard(pred.right, valuation)
    if isinstance(pred, s.Not):
        return not eval_guard(pred.pred, valuation)
    raise TypeError(f"not a predicate: {pred!r}")


class MiniDtmc:
    """Explicit-state engine for a :class:`PrismModel`.

    Parameters
    ----------
    model:
        The PRISM program to execute.
    exact:
        Solve reachability with exact rational arithmetic ("exact mode"
        in the paper's Figure 10) instead of sparse float64 LU
        ("approximate mode").
    max_states:
        Safety bound on the number of explored valuations.
    """

    def __init__(self, model: PrismModel, exact: bool = False, max_states: int = 5_000_000):
        model.check_well_formed()
        self.model = model
        self.exact = exact
        self.max_states = max_states
        # Index commands by the pc value they test, when determinable, to
        # avoid scanning every command in every state.
        self._by_pc: dict[int, list[Command]] = {}
        self._unindexed: list[Command] = []
        for command in model.commands:
            pc_value = _pc_test(command.guard)
            if pc_value is None:
                self._unindexed.append(command)
            else:
                self._by_pc.setdefault(pc_value, []).append(command)

    # -- state handling ---------------------------------------------------------
    def _freeze(self, valuation: Mapping[str, int]) -> Valuation:
        return tuple(sorted(valuation.items()))

    def _candidates(self, valuation: Mapping[str, int]) -> list[Command]:
        pc = valuation.get("pc")
        indexed = self._by_pc.get(pc, []) if pc is not None else []
        return indexed + self._unindexed

    def successors(self, state: Valuation) -> Dist[Valuation]:
        """One-step transition distribution (point mass on ``state`` if terminal)."""
        valuation = dict(state)
        enabled = [
            command
            for command in self._candidates(valuation)
            if eval_guard(command.guard, valuation)
        ]
        if not enabled:
            return Dist.point(state)
        if len(enabled) > 1:
            raise ValueError(
                "PRISM model is nondeterministic: multiple commands enabled in one state"
            )
        (command,) = enabled
        weights: dict[Valuation, Fraction] = {}
        for branch in command.branches:
            updated = dict(valuation)
            updated.update(branch.updates_dict())
            successor = self._freeze(updated)
            weights[successor] = weights.get(successor, Fraction(0)) + branch.probability
        return Dist(weights)

    def is_terminal(self, state: Valuation) -> bool:
        valuation = dict(state)
        return not any(
            eval_guard(command.guard, valuation) for command in self._candidates(valuation)
        )

    # -- analysis ------------------------------------------------------------------
    def explore(self, overrides: Mapping[str, int] | None = None) -> list[Valuation]:
        """All valuations reachable from the initial state."""
        start = self._freeze(self.model.initial_valuation(overrides))
        states = reachable_states(
            [start], lambda state: self.successors(state).support()
        )
        if len(states) > self.max_states:
            raise RuntimeError(f"state space exceeded {self.max_states} states")
        return states

    def terminal_distribution(
        self, overrides: Mapping[str, int] | None = None
    ) -> Dist[Valuation]:
        """Distribution over terminal valuations reached from the initial state."""
        start = self._freeze(self.model.initial_valuation(overrides))
        states = self.explore(overrides)
        terminal = [state for state in states if self.is_terminal(state)]
        transient = [state for state in states if not self.is_terminal(state)]
        if start in terminal:
            return Dist.point(start)
        transitions = {
            state: dict(self.successors(state).items()) for state in transient
        }
        solver = solve_absorption_exact if self.exact else solve_absorption
        result = solver(transient, terminal, transitions)
        row = dict(result.get(start, {}))
        lost = result.lost_mass.get(start, 0)
        if lost:
            # Divergence: report the missing mass on a synthetic outcome.
            row[(("__diverged__", 1),)] = lost
        return Dist(row, check=False)

    def probability(
        self,
        target: s.Predicate | Callable[[Mapping[str, int]], bool],
        overrides: Mapping[str, int] | None = None,
    ) -> float | Fraction:
        """P[eventually reach a terminal state satisfying ``target``]."""
        dist = self.terminal_distribution(overrides)
        if isinstance(target, s.Predicate):
            check = lambda valuation: eval_guard(target, valuation)  # noqa: E731
        else:
            check = target
        total: Fraction | float = Fraction(0)
        for state, mass in dist.items():
            if dict(state).get("__diverged__"):
                continue
            if check(dict(state)):
                total = total + mass
        return total


def _pc_test(pred: s.Predicate) -> int | None:
    """Extract the ``pc = n`` conjunct of a guard, if syntactically present."""
    if isinstance(pred, s.Test) and pred.field == "pc":
        return pred.value
    if isinstance(pred, s.And):
        left = _pc_test(pred.left)
        if left is not None:
            return left
        return _pc_test(pred.right)
    return None
