"""Representation of PRISM programs (DTMC modules).

A PRISM program is a set of bounded integer variables together with
guarded probabilistic commands::

    [] guard -> p1:(updates1) + ... + pk:(updatesk);

Guards are represented by ProbNetKAT predicates over the variables (the
program counter ``pc`` is just another variable), which keeps the
translation compact and lets the mini DTMC engine reuse the predicate
evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping

from repro.core import syntax as s


@dataclass(frozen=True)
class PrismVariable:
    """A bounded integer PRISM variable ``name : [low..high] init init``."""

    name: str
    low: int
    high: int
    init: int = 0

    def __post_init__(self) -> None:
        if not (self.low <= self.init <= self.high):
            raise ValueError(
                f"initial value {self.init} of {self.name} outside [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class Branch:
    """One probabilistic alternative of a command: probability and updates."""

    probability: Fraction
    updates: tuple[tuple[str, int], ...]

    def updates_dict(self) -> dict[str, int]:
        return dict(self.updates)


@dataclass(frozen=True)
class Command:
    """A guarded probabilistic command."""

    guard: s.Predicate
    branches: tuple[Branch, ...]

    def total_probability(self) -> Fraction:
        return sum((b.probability for b in self.branches), Fraction(0))


@dataclass
class PrismModel:
    """A PRISM DTMC module: variables, commands, and named labels."""

    name: str = "program"
    variables: list[PrismVariable] = field(default_factory=list)
    commands: list[Command] = field(default_factory=list)
    labels: dict[str, s.Predicate] = field(default_factory=dict)

    def variable(self, name: str) -> PrismVariable:
        for var in self.variables:
            if var.name == name:
                return var
        raise KeyError(name)

    def variable_names(self) -> tuple[str, ...]:
        return tuple(var.name for var in self.variables)

    def initial_valuation(self, overrides: Mapping[str, int] | None = None) -> dict[str, int]:
        """The initial variable valuation, with optional per-field overrides."""
        valuation = {var.name: var.init for var in self.variables}
        for name, value in (overrides or {}).items():
            if name not in valuation:
                raise KeyError(f"unknown PRISM variable {name!r}")
            valuation[name] = value
        return valuation

    def add_label(self, name: str, predicate: s.Predicate) -> None:
        self.labels[name] = predicate

    def state_space_size(self) -> int:
        """Product of the variable ranges (the full, unreachable-included size)."""
        size = 1
        for var in self.variables:
            size *= var.high - var.low + 1
        return size

    def check_well_formed(self) -> None:
        """Validate that every command's probabilities sum to one."""
        for index, command in enumerate(self.commands):
            total = command.total_probability()
            if total != 1:
                raise ValueError(
                    f"command {index} has branch probabilities summing to {total}"
                )


def updates_from_mapping(updates: Mapping[str, int] | Iterable[tuple[str, int]]) -> tuple[tuple[str, int], ...]:
    """Normalise updates into the sorted tuple form used by :class:`Branch`."""
    items = updates.items() if isinstance(updates, Mapping) else updates
    return tuple(sorted(items))
