"""The PRISM backend ("PPNK" in the paper, §5.2).

McNetKAT's second backend is a purely syntactic translation of guarded
ProbNetKAT to the input language of the PRISM probabilistic model
checker.  This package reproduces that translation:

* :mod:`repro.backends.prism.automaton` — the Thompson-style state
  machine with basic-block collapsing;
* :mod:`repro.backends.prism.model` — the PRISM program representation;
* :mod:`repro.backends.prism.translate` — guarded ProbNetKAT → PRISM;
* :mod:`repro.backends.prism.codegen` — PRISM source emission;
* :mod:`repro.backends.prism.engine` — a miniature DTMC engine that
  executes translated programs (standing in for the PRISM binary, which
  cannot be bundled in this offline environment).
"""

from repro.backends.prism.model import Command, PrismModel, PrismVariable
from repro.backends.prism.translate import PrismBackend, translate_policy
from repro.backends.prism.codegen import to_prism_source
from repro.backends.prism.engine import MiniDtmc

__all__ = [
    "Command",
    "MiniDtmc",
    "PrismBackend",
    "PrismModel",
    "PrismVariable",
    "to_prism_source",
    "translate_policy",
]
