"""Translation from guarded ProbNetKAT to PRISM models (§5.2).

The translation is purely syntactic and runs in (essentially) linear
time: build the control-flow automaton, collapse basic blocks, then emit
one PRISM command per (state, guard) group, using a program counter
variable ``pc`` to encode the control state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.core import syntax as s
from repro.core.fields import FieldTable
from repro.core.packet import Packet
from repro.backends.prism.automaton import Edge, build_automaton
from repro.backends.prism.model import Branch, Command, PrismModel, PrismVariable
from repro.utils.timing import Stopwatch

#: Name of the program-counter variable added by the translation.
PC = "pc"


def translate_policy(
    policy: s.Policy,
    fields: FieldTable | None = None,
    name: str = "program",
    delivered: s.Predicate | None = None,
) -> PrismModel:
    """Translate a guarded policy into a :class:`PrismModel`.

    Parameters
    ----------
    policy:
        The program to translate (guarded fragment only).
    fields:
        Field declarations providing variable bounds; inferred from the
        program's mentioned values when omitted.
    delivered:
        Optional predicate added as the PRISM label ``"delivered"``
        (conjoined with termination at the accepting control state).
    """
    table = fields if fields is not None else FieldTable.from_policy(policy)
    automaton = build_automaton(policy)
    model = PrismModel(name=name)

    model.variables.append(
        PrismVariable(PC, 0, max(automaton.state_count - 1, 1), init=automaton.start)
    )
    for spec in table:
        model.variables.append(PrismVariable(spec.name, spec.low, spec.high, init=spec.low))

    for state in automaton.states():
        outgoing = automaton.outgoing(state)
        if not outgoing:
            continue
        groups: dict[s.Predicate, list[Edge]] = {}
        order: list[s.Predicate] = []
        for edge in outgoing:
            if edge.guard not in groups:
                groups[edge.guard] = []
                order.append(edge.guard)
            groups[edge.guard].append(edge)
        for guard in order:
            edges = groups[guard]
            branches = []
            for edge in edges:
                updates = dict(edge.updates)
                updates[PC] = edge.dst
                branches.append(
                    Branch(Fraction(edge.probability), tuple(sorted(updates.items())))
                )
            full_guard = s.conj(s.test(PC, state), guard) if not isinstance(
                guard, s.TrueP
            ) else s.test(PC, state)
            model.commands.append(Command(full_guard, tuple(branches)))

    model.add_label("terminated", s.test(PC, automaton.accept))
    model.add_label("dropped", s.test(PC, automaton.reject))
    if delivered is not None:
        model.add_label("delivered", s.conj(s.test(PC, automaton.accept), delivered))
    model.check_well_formed()
    return model


@dataclass
class PrismBackend:
    """Facade bundling translation, code generation, and the mini engine.

    This plays the role of the "PPNK" backend in the paper's plots: the
    ProbNetKAT-to-PRISM translation is the artifact under test, and the
    bundled :class:`MiniDtmc` engine stands in for the PRISM binary.
    """

    exact: bool = False
    watch: Stopwatch = field(default_factory=Stopwatch)

    def translate(
        self,
        policy: s.Policy,
        fields: FieldTable | None = None,
        delivered: s.Predicate | None = None,
    ) -> PrismModel:
        with self.watch.measure("translate"):
            return translate_policy(policy, fields=fields, delivered=delivered)

    def source(
        self,
        policy: s.Policy,
        fields: FieldTable | None = None,
        delivered: s.Predicate | None = None,
    ) -> str:
        from repro.backends.prism.codegen import to_prism_source

        model = self.translate(policy, fields=fields, delivered=delivered)
        return to_prism_source(model)

    def probability(
        self,
        policy: s.Policy,
        input_packet: Packet | Mapping[str, int],
        target: s.Predicate,
        fields: FieldTable | None = None,
    ) -> float | Fraction:
        """P[eventually terminated ∧ target] from the given input packet."""
        from repro.backends.prism.engine import MiniDtmc

        overrides = (
            input_packet.as_dict() if isinstance(input_packet, Packet) else dict(input_packet)
        )
        table = fields
        if table is None:
            table = FieldTable.from_policy(policy)
            for name, value in overrides.items():
                table.declare(name, min(0, value), value)
        model = self.translate(policy, fields=table, delivered=target)
        engine = MiniDtmc(model, exact=self.exact)
        with self.watch.measure("model_check"):
            return engine.probability(model.labels["delivered"], overrides=overrides)

    def timings(self) -> dict[str, float]:
        return dict(self.watch.sections)
