"""Emission of PRISM source code from :class:`PrismModel` instances.

The generated text is valid input for the real PRISM model checker
(``dtmc`` model type), so it can be exported from this reproduction and
checked with PRISM directly when the binary is available.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import syntax as s
from repro.backends.prism.model import Command, PrismModel


def predicate_to_prism(pred: s.Predicate) -> str:
    """Render a predicate as a PRISM boolean expression."""
    if isinstance(pred, s.TrueP):
        return "true"
    if isinstance(pred, s.FalseP):
        return "false"
    if isinstance(pred, s.Test):
        return f"{pred.field}={pred.value}"
    if isinstance(pred, s.And):
        return f"({predicate_to_prism(pred.left)} & {predicate_to_prism(pred.right)})"
    if isinstance(pred, s.Or):
        return f"({predicate_to_prism(pred.left)} | {predicate_to_prism(pred.right)})"
    if isinstance(pred, s.Not):
        return f"!({predicate_to_prism(pred.pred)})"
    raise TypeError(f"not a predicate: {pred!r}")


def _probability_to_prism(prob: Fraction) -> str:
    if prob.denominator == 1:
        return str(prob.numerator)
    return f"{prob.numerator}/{prob.denominator}"


def _command_to_prism(command: Command) -> str:
    branches = []
    for branch in command.branches:
        updates = " & ".join(f"({name}'={value})" for name, value in branch.updates)
        if not updates:
            updates = "true"
        branches.append(f"{_probability_to_prism(branch.probability)}:{updates}")
    return f"  [] {predicate_to_prism(command.guard)} -> {' + '.join(branches)};"


def to_prism_source(model: PrismModel) -> str:
    """Render a full PRISM program (module, variables, commands, labels)."""
    lines = ["dtmc", "", f"module {model.name}"]
    for var in model.variables:
        lines.append(f"  {var.name} : [{var.low}..{var.high}] init {var.init};")
    lines.append("")
    for command in model.commands:
        lines.append(_command_to_prism(command))
    lines.append("endmodule")
    if model.labels:
        lines.append("")
        for name, predicate in model.labels.items():
            lines.append(f'label "{name}" = {predicate_to_prism(predicate)};')
    lines.append("")
    return "\n".join(lines)


def write_prism_source(model: PrismModel, path: str) -> None:
    """Write the PRISM source of ``model`` to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prism_source(model))
