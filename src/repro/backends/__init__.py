"""Analysis backends: native (FDD / forward interpreter) and PRISM (§5)."""

from repro.backends.native import NativeBackend
from repro.backends.parallel import ParallelInterpreter, transition_rows

__all__ = ["NativeBackend", "ParallelInterpreter", "transition_rows"]
