"""Analysis backends and the backend registry (§5–§6).

Four backends answer queries about compiled network models:

* ``native`` — FDD compilation plus the forward interpreter ("PNK");
* ``matrix`` — the batched sparse-matrix engine: compile once, factorize
  ``I - Q`` once, answer every ingress query by multi-RHS solves;
* ``parallel`` — the native backend with multi-core loop exploration;
* ``prism`` — the ProbNetKAT→PRISM translation with a mini DTMC engine
  ("PPNK"; note its query API is probability-oriented, see
  :class:`repro.backends.prism.PrismBackend`).

:func:`get_backend` instantiates a backend by name so analyses and
benchmarks can select one with a plain string.  Backends that implement
``fork()`` (currently the matrix backend) can serve as replica pools for
parallel sharded execution: a fork is a fully independent instance — its
own FDD manager, plan caches, and ``splu`` factorizations — sharing only
the immutable :class:`~repro.backends.matrix.PlanSpecStore` of compiled
plan specs with its siblings (see :mod:`repro.service.pool`).
"""

from repro.backends.matrix import MatrixBackend, PlanSpecStore, QueryPlan
from repro.backends.native import NativeBackend
from repro.backends.parallel import ParallelBackend, ParallelInterpreter, transition_rows
from repro.backends.prism import PrismBackend

#: Registry of backend names to backend classes.
BACKENDS = {
    "native": NativeBackend,
    "matrix": MatrixBackend,
    "parallel": ParallelBackend,
    "prism": PrismBackend,
}


def get_backend(name: str, **options):
    """Instantiate the backend registered under ``name``.

    ``options`` are forwarded to the backend constructor, e.g.
    ``get_backend("matrix", class_limit=10_000)``.
    """
    try:
        backend_class = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r}; available backends: {known}") from None
    return backend_class(**options)


def resolve_backend(backend):
    """Normalise a ``backend=`` argument: names become fresh instances.

    ``None`` and backend instances pass through unchanged, so analysis
    entry points can accept ``backend="matrix"`` as well as a shared,
    pre-warmed backend object.
    """
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


__all__ = [
    "BACKENDS",
    "MatrixBackend",
    "NativeBackend",
    "ParallelBackend",
    "ParallelInterpreter",
    "PlanSpecStore",
    "PrismBackend",
    "QueryPlan",
    "get_backend",
    "resolve_backend",
    "transition_rows",
]
