"""The batched sparse-matrix query backend (§5–§6).

This backend realises the paper's performance story at query time: a
network model compiles *once* into sparse stochastic matrices over
symbolic packet classes, the absorbing-chain system ``I - Q`` of each
loop is factorized *once* with ``splu``, and every ingress query — output
distributions, hop-count CDFs, delivery/resilience probabilities — is
answered by batched multi-RHS solves against the cached factorization.

Compared with the native backend (which re-solves a growing absorption
system for every new ingress seed), the matrix backend:

* decomposes a guarded model ``in ; body ; while ¬out do body ; …`` into
  loop-free *FDD stages* and *loop stages*;
* compiles each stage to a canonical FDD once (stages are shared across
  queries on the same policy object);
* converts loop bodies to sparse transition matrices over the symbolic
  classes *reachable* from the query's ingress set (dynamic domain
  reduction restricted to the reachable subspace, §5.1);
* solves all absorption columns with one factorization via
  :func:`repro.core.markov.solve_absorption_batched`.

Loop-free stages are evaluated exactly (rational leaf distributions);
loop solutions are float64, like the native backend's LU path.
"""

from __future__ import annotations

import threading
from bisect import insort
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core import syntax as s
from repro.core.compiler import Compiler, ops_evaluate_bool
from repro.core.distributions import Dist
from repro.core.fdd.evaluator import ClassRow
from repro.core.fdd.matrix import (
    SymbolicPacket,
    TransitionMatrix,
    fdd_to_matrix,
    matrix_domains,
)
from repro.core.fdd.node import FddManager, FddNode, node_from_spec, node_size, node_to_spec
from repro.core.fdd.node import output_distribution as fdd_output_distribution
from repro.core.interpreter import Outcome
from repro.core.markov import IncrementalAbsorptionSolver
from repro.core.packet import DROP, Packet, _DropType
from repro.utils.timing import Stopwatch


@dataclass
class _FddStage:
    """A loop-free policy segment, compiled to one canonical FDD."""

    fdd: FddNode


class _LoopStage:
    """A ``while`` loop with its cached matrices and absorption solutions.

    The stage owns three caches that persist across queries:

    * ``row_cache`` — symbolic class → one-step body transition row
      (:class:`~repro.core.fdd.evaluator.ClassRow` array segments);
    * ``solutions`` — transient class → absorption distribution;
    * ``matrix`` — the most recent reachable :class:`TransitionMatrix`.

    New ingress classes extend the explored space; when that happens only
    the *newly discovered* subsystem is factorized — already-solved
    classes act as absorbing gateways whose final distributions are
    composed in (:class:`~repro.core.markov.IncrementalAbsorptionSolver`)
    — so subsequent queries are pure cache hits and no class ever
    participates in more than one factorization.  Small growth steps
    (below ``schur_crossover`` of the solved space) skip even that and
    run the solver's Schur-complement low-rank update, counted by
    :attr:`schur_updates` instead of :attr:`factorizations`.
    """

    def __init__(
        self,
        loop: s.WhileDo | None,
        guard_fdd: FddNode,
        body_fdd: FddNode,
        domains: dict[str, tuple[int, ...]],
        manager: FddManager,
        schur_crossover: float = 0.25,
        watch: Stopwatch | None = None,
    ):
        #: The source AST of the loop, when this stage was built from one.
        #: Purely informational: query evaluation only ever consults the
        #: compiled ``guard_fdd`` (see :meth:`entered_by`), so stages
        #: rebuilt from manager-independent specs — in a forked replica or
        #: a worker process — carry ``None`` here and behave identically.
        self.loop = loop
        self.guard_fdd = guard_fdd
        self.body_fdd = body_fdd
        self.domains = domains
        self.manager = manager
        self.schur_crossover = schur_crossover
        self.watch = watch
        self.row_cache: dict[SymbolicPacket, ClassRow] = {}
        self.solutions: dict[SymbolicPacket, Dist] = {}
        self.matrix: TransitionMatrix | None = None
        self.solver = IncrementalAbsorptionSolver(
            schur_crossover=schur_crossover, watch=watch
        )
        self._guard_cache: dict[SymbolicPacket, bool] = {}
        self._seeds: set[SymbolicPacket] = set()
        # Seeds kept in class order incrementally (one bisect per *new*
        # seed), with per-class sort keys memoised, so growth steps and
        # repeated batch queries never re-sort the whole seed set.
        self._seed_order: list[SymbolicPacket] = []
        self._sort_keys: dict[SymbolicPacket, tuple] = {}
        # Per-field membership sets and a packet->class memo: classification
        # runs once per distinct outcome packet, not once per occurrence.
        self._domain_sets = {field: frozenset(values) for field, values in domains.items()}
        self._class_cache: dict[Packet, SymbolicPacket] = {}
        # (solution class, input packet) -> concrete output packet, so
        # repeated batches replay loop solutions without rebuilding packets.
        self._concrete_cache: dict[tuple[SymbolicPacket, Packet], Packet] = {}

    @property
    def factorizations(self) -> int:
        """Full subsystem factorizations performed so far."""
        return self.solver.factorizations

    @property
    def schur_updates(self) -> int:
        """Growth steps answered by the low-rank Schur update instead."""
        return self.solver.schur_updates

    def guard_holds(self, cls: SymbolicPacket) -> bool:
        cached = self._guard_cache.get(cls)
        if cached is None:
            cached = ops_evaluate_bool(self.manager, self.guard_fdd, cls)
            self._guard_cache[cls] = cached
        return cached

    def entered_by(self, packet: Packet) -> bool:
        """Whether a concrete packet enters the loop (guard holds on it).

        Evaluated on the *compiled* guard FDD via the packet's symbolic
        class — never on the guard AST — so stages rebuilt from specs
        (which carry no AST) answer exactly like freshly compiled ones.
        The loop's domains include every value the guard tests (they are
        built with the guard's values folded in), so classification is
        lossless for guard evaluation: a field value outside the domain
        classifies as a wildcard, which fails every equality test, just
        as the concrete value would.
        """
        return self.guard_holds(self.classify_packet(packet))

    def classify_packet(self, packet: Packet) -> SymbolicPacket:
        """The symbolic class of a concrete packet over this loop's domain."""
        cached = self._class_cache.get(packet)
        if cached is None:
            values: dict[str, int | None] = {}
            for field, members in self._domain_sets.items():
                value = packet.get(field)
                values[field] = value if value in members else None
            cached = SymbolicPacket(values)
            self._class_cache[packet] = cached
        return cached

    def sort_key(self, cls: SymbolicPacket) -> tuple:
        """The memoised total-order key of a class (see :func:`_class_sort_key`)."""
        cached = self._sort_keys.get(cls)
        if cached is None:
            cached = _class_sort_key(cls)
            self._sort_keys[cls] = cached
        return cached

    def add_seeds(self, classes: Iterable[SymbolicPacket]) -> None:
        """Insert new seed classes, keeping ``seed_order`` sorted incrementally."""
        for cls in classes:
            if cls not in self._seeds:
                self._seeds.add(cls)
                insort(self._seed_order, cls, key=self.sort_key)

    @property
    def seed_order(self) -> list[SymbolicPacket]:
        """All seeds seen so far, in class order (maintained, never re-sorted)."""
        return self._seed_order

    def concretize(self, cls: SymbolicPacket, base: Packet) -> Packet:
        """Memoised :func:`_concretize`: the output packet of ``cls`` on ``base``."""
        key = (cls, base)
        cached = self._concrete_cache.get(key)
        if cached is None:
            cached = _concretize(cls, base)
            self._concrete_cache[key] = cached
        return cached


@dataclass
class QueryPlan:
    """A policy decomposed into alternating FDD and loop stages.

    ``specs`` caches the manager-independent serialization of the stages
    (see :meth:`MatrixBackend.plan_key` and :class:`PlanSpecStore`); it is
    filled lazily the first time the plan is published or keyed.
    """

    policy: s.Policy | None
    stages: list[_FddStage | _LoopStage]
    specs: tuple | None = field(default=None, repr=False)

    @property
    def loop_stages(self) -> list[_LoopStage]:
        return [stage for stage in self.stages if isinstance(stage, _LoopStage)]


class PlanSpecStore:
    """Compiled-plan specs shared by all replicas forked from one backend.

    A backend replica pool (:class:`repro.service.pool.BackendPool`) must
    not share mutable compiled state between replicas — each replica owns
    its own :class:`~repro.core.fdd.node.FddManager`, plan caches, and
    ``splu`` factorizations.  What *can* be shared is the immutable
    serialized form of a compiled plan: per-stage FDD specs produced by
    :func:`~repro.core.fdd.node.node_to_spec` (plus the loop AST and its
    symbolic domains, both read-only).  The first replica to plan a policy
    publishes its specs here; every other replica rebuilds the plan into
    its own manager via :func:`~repro.core.fdd.node.node_from_spec`
    (linear in diagram size) instead of re-running AST compilation.

    The store's lock is a *leaf* lock in the service lock hierarchy: it is
    held only for dict operations, never while compiling or solving, so it
    can safely be taken while a replica lease is held.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # id(policy) -> (policy, manager field order, stage specs).  The
        # policy is retained so a recycled id cannot alias a different
        # program (same discipline as the per-backend plan cache).
        self._entries: dict[int, tuple[s.Policy, tuple[str, ...], tuple]] = {}

    def get(self, policy: s.Policy) -> tuple[tuple[str, ...], tuple] | None:
        """The published ``(field_order, stage_specs)`` of ``policy``, if any."""
        with self._lock:
            entry = self._entries.get(id(policy))
            if entry is not None and entry[0] is policy:
                return entry[1], entry[2]
        return None

    def publish(
        self, policy: s.Policy, fields: tuple[str, ...], stage_specs: tuple
    ) -> None:
        """Publish the compiled specs of ``policy`` (first writer wins)."""
        with self._lock:
            entry = self._entries.get(id(policy))
            if entry is None or entry[0] is not policy:
                self._entries[id(policy)] = (policy, fields, stage_specs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class MatrixBackend:
    """Batched sparse-matrix backend: compile once, factorize once, query many.

    Parameters
    ----------
    class_limit:
        Bound on the number of symbolic classes explored per loop (and on
        full-domain conversions via :meth:`transition_matrix`).
    exact:
        Accepted for registry symmetry with the native backend but must
        stay ``False``: the batched solver is float64 by design (use the
        native backend for exact rational loop solving).
    schur_crossover:
        Growth fraction above which a loop's incremental solver prefers a
        fresh subsystem factorization over the Schur-complement low-rank
        update (see :class:`~repro.core.markov.IncrementalAbsorptionSolver`).
    """

    exact: bool = False
    class_limit: int = 1_000_000
    schur_crossover: float = 0.25
    watch: Stopwatch = field(default_factory=Stopwatch)

    def __post_init__(self) -> None:
        if self.exact:
            raise ValueError(
                "MatrixBackend is float64-only (splu); use NativeBackend(exact=True) "
                "for exact rational arithmetic"
            )
        self.manager = FddManager()
        self._compiler = Compiler(manager=self.manager, class_limit=self.class_limit)
        #: Class rows written into transition matrices by this backend
        #: (the vectorized-assembly work counter exported via
        #: :meth:`solver_stats` and worker reports).
        self.assembly_rows = 0
        #: How many plans this backend built by *compiling an AST* (the
        #: expensive path).  Plans rebuilt from published specs and adopted
        #: plans do not count — worker processes assert this stays 0.
        self.ast_compilations = 0
        # Plan cache keyed by policy object identity (the policy is kept in
        # the value so a recycled id cannot alias a different program).
        self._plans: dict[int, tuple[s.Policy, QueryPlan]] = {}
        # Plans adopted from a manager-independent wire payload, keyed by
        # the caller's plan id (see adopt_plan; used by worker processes).
        self._adopted: dict[object, QueryPlan] = {}
        # TransitionMatrix cache keyed by canonical FDD identity: FDDs are
        # hash-consed, so semantically equal policies share one matrix.
        self._matrices: dict[FddNode, TransitionMatrix] = {}
        # Manager-independent canonical stage keys (see plan_key).
        self._plan_keys: dict[int, tuple[s.Policy, tuple]] = {}
        # Shared plan-spec store, created on the first fork() and shared by
        # every replica forked from this backend (or from its forks).
        self._spec_store: PlanSpecStore | None = None

    # -- compilation ----------------------------------------------------------
    def compile(self, policy: s.Policy) -> FddNode:
        """Compile ``policy`` to its canonical FDD (timed as ``"compile"``)."""
        with self.watch.measure("compile"):
            return self._compiler.compile(policy)

    def fdd_size(self, policy: s.Policy) -> int:
        """Number of distinct nodes in the compiled FDD of ``policy``."""
        return node_size(self.compile(policy))

    def transition_matrix(self, policy: s.Policy) -> TransitionMatrix:
        """The full-domain sparse stochastic matrix of a (loop-free) policy.

        The result is cached by the canonical FDD of the policy, so any
        two semantically equal policies share a single matrix.
        """
        fdd = self.compile(policy)
        cached = self._matrices.get(fdd)
        if cached is None:
            with self.watch.measure("assemble"):
                cached = fdd_to_matrix(fdd, limit=self.class_limit)
            self.assembly_rows += cached.assembled_rows
            self._matrices[fdd] = cached
        return cached

    def plan(self, policy: s.Policy) -> QueryPlan:
        """Decompose ``policy`` into compiled stages (cached per policy).

        A backend that belongs to a replica pool first consults the shared
        :class:`PlanSpecStore`: when another replica already compiled this
        policy, its stages are rebuilt from their manager-independent
        specs (cheap, linear in diagram size) instead of re-running AST
        compilation; otherwise the freshly built plan is published so the
        other replicas can skip the compile in turn.
        """
        cached = self._plans.get(id(policy))
        if cached is not None and cached[0] is policy:
            return cached[1]
        store = self._spec_store
        published = store.get(policy) if store is not None else None
        with self.watch.measure("compile"):
            if published is not None:
                plan = self._plan_from_spec(policy, *published)
            else:
                plan = self._build_plan(policy)
                if store is not None:
                    store.publish(policy, self.manager.fields, self._stage_specs(plan))
        self._plans[id(policy)] = (policy, plan)
        return plan

    def fork(self) -> "MatrixBackend":
        """A fresh, independent replica of this backend (for pooled serving).

        The replica has its *own* :class:`~repro.core.fdd.node.FddManager`,
        compiler, plan/matrix caches, and ``splu`` factorizations — no
        mutable state is shared, so replicas may serve queries from
        different threads without any cross-replica locking.  The only
        shared object is the immutable :class:`PlanSpecStore` (created on
        the first fork), through which already-compiled plans propagate as
        manager-independent specs.  The replica registers this manager's
        field order up front so rebuilt diagrams stay canonical.
        """
        store = self._spec_store
        if store is None:
            store = self._spec_store = PlanSpecStore()
            for policy, plan in self._plans.values():
                store.publish(policy, self.manager.fields, self._stage_specs(plan))
        replica = MatrixBackend(
            exact=self.exact,
            class_limit=self.class_limit,
            schur_crossover=self.schur_crossover,
        )
        replica._spec_store = store
        replica.manager.register_fields(self.manager.fields)
        return replica

    def plan_key(self, policy: s.Policy) -> tuple:
        """A canonical, manager-independent cache key for ``policy``.

        The key serializes the compiled stage FDDs via
        :func:`~repro.core.fdd.node.node_to_spec`, so it is structural:
        two semantically equal policies — or the same policy compiled by
        two different replicas (different managers, different node ids) —
        produce the *same* key.  Session result caches key on this, which
        is what lets a replica pool share one result cache.
        """
        cached = self._plan_keys.get(id(policy))
        if cached is not None and cached[0] is policy:
            return cached[1]
        specs = self._stage_specs(self.plan(policy))
        # Keep only the structural prefix of each stage spec: the loop AST
        # and domain entries are derivable from the guard/body diagrams.
        key = ("fdd-stages", tuple(entry[:3] for entry in specs))
        self._plan_keys[id(policy)] = (policy, key)
        return key

    def _stage_specs(self, plan: QueryPlan) -> tuple:
        """Manager-independent stage specs of ``plan`` (cached on the plan).

        Specs are plain picklable data — FDD node lists, field names, and
        domain values — with **no AST objects**: loop stages serialize only
        their compiled guard/body diagrams and domains, which is all query
        evaluation needs (:meth:`_LoopStage.entered_by`).  This is what
        lets the same payload rebuild a plan in a forked replica *or* ship
        to a worker process.
        """
        if plan.specs is None:
            entries: list[tuple] = []
            for stage in plan.stages:
                if isinstance(stage, _FddStage):
                    entries.append(("fdd", node_to_spec(stage.fdd)))
                else:
                    entries.append((
                        "loop",
                        node_to_spec(stage.guard_fdd),
                        node_to_spec(stage.body_fdd),
                        tuple(sorted(stage.domains.items())),
                    ))
            plan.specs = tuple(entries)
        return plan.specs

    def _plan_from_spec(
        self, policy: s.Policy | None, fields: tuple[str, ...], stage_specs: tuple
    ) -> QueryPlan:
        """Rebuild a plan from published specs into this backend's manager."""
        self.manager.register_fields(fields)
        stages: list[_FddStage | _LoopStage] = []
        for entry in stage_specs:
            if entry[0] == "fdd":
                stages.append(_FddStage(node_from_spec(self.manager, entry[1])))
            else:
                _, guard_spec, body_spec, domains = entry
                stages.append(
                    _LoopStage(
                        None,
                        node_from_spec(self.manager, guard_spec),
                        node_from_spec(self.manager, body_spec),
                        dict(domains),
                        self.manager,
                        schur_crossover=self.schur_crossover,
                        watch=self.watch,
                    )
                )
        return QueryPlan(policy, stages, specs=stage_specs)

    # -- spec-shipped plans (worker processes) ----------------------------------
    def plan_payload(self, policy: s.Policy) -> tuple[tuple[str, ...], tuple]:
        """The ``(field_order, stage_specs)`` wire payload of ``policy``.

        The payload is entirely manager-independent plain data (no AST
        objects, no FDD nodes), so it can cross a process boundary and be
        adopted by a worker's own backend via :meth:`adopt_plan`.  The
        policy is compiled here if it has not been planned yet.
        """
        return self.manager.fields, self._stage_specs(self.plan(policy))

    def adopt_plan(
        self, plan_id: object, fields: tuple[str, ...], stage_specs: tuple
    ) -> QueryPlan:
        """Rebuild a shipped plan under ``plan_id`` (idempotent per id).

        This is the worker-process half of spec shipping: the plan is
        reconstructed from its manager-independent payload — *no AST
        compilation happens* (:attr:`ast_compilations` is untouched) — and
        registered under the caller-chosen id so later
        :meth:`query_plan` calls can reference it without a policy object.
        """
        plan = self._adopted.get(plan_id)
        if plan is None:
            with self.watch.measure("adopt"):
                plan = self._plan_from_spec(None, fields, stage_specs)
            self._adopted[plan_id] = plan
        return plan

    @property
    def adopted_plans(self) -> int:
        """Number of plans adopted from wire payloads (worker introspection)."""
        return len(self._adopted)

    def query_plan(
        self, plan_id: object, inputs: Iterable[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Batched per-ingress distributions of an adopted plan."""
        plan = self._adopted.get(plan_id)
        if plan is None:
            raise KeyError(
                f"no adopted plan {plan_id!r}: ship its payload with adopt_plan first"
            )
        return self._run_plan(plan, list(inputs))

    def _build_plan(self, policy: s.Policy) -> QueryPlan:
        self.ast_compilations += 1
        parts: Sequence[s.Policy] = (
            policy.parts if isinstance(policy, s.Seq) else [policy]
        )
        stages: list[_FddStage | _LoopStage] = []
        pending: list[s.Policy] = []

        def flush() -> None:
            if not pending:
                return
            fdd = self._compiler.compile(s.seq(*pending))
            if fdd is not self.manager.true_leaf:
                stages.append(_FddStage(fdd))
            pending.clear()

        for part in parts:
            if isinstance(part, s.WhileDo):
                flush()
                guard_fdd = self._compiler.compile(part.guard)
                body_fdd = self._compiler.compile(part.body)
                domains = matrix_domains(body_fdd, extra_values=matrix_domains(guard_fdd))
                stages.append(
                    _LoopStage(
                        part,
                        guard_fdd,
                        body_fdd,
                        {f: tuple(sorted(v)) for f, v in domains.items()},
                        self.manager,
                        schur_crossover=self.schur_crossover,
                        watch=self.watch,
                    )
                )
            else:
                pending.append(part)
        flush()
        return QueryPlan(policy, stages)

    # -- queries ----------------------------------------------------------------
    def output_distributions(
        self, policy: s.Policy, inputs: Iterable[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Per-ingress output distributions, batched over the whole set.

        All ingress packets advance through the plan together, so every
        loop is factorized at most once for the union of their entry
        states (versus one incremental re-solve per packet in the
        interpreter-based native path).
        """
        packets = list(inputs)
        plan = self.plan(policy)
        return self._run_plan(plan, packets)

    def _run_plan(
        self, plan: QueryPlan, packets: list[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Advance a batch of ingress packets through a compiled plan."""
        with self.watch.measure("query"):
            dists: list[dict[Outcome, object]] = [{packet: 1} for packet in packets]
            for stage in plan.stages:
                if isinstance(stage, _FddStage):
                    dists = self._apply_fdd_stage(stage, dists)
                else:
                    dists = self._apply_loop_stage(stage, dists)
        return {
            packet: Dist(weights, check=False)
            for packet, weights in zip(packets, dists)
        }

    def output_distribution(
        self, policy: s.Policy, inputs: Packet | Dist[Outcome] | Iterable[Packet]
    ) -> Dist[Outcome]:
        """Output distribution on a packet, a distribution, or a uniform ingress set."""
        if isinstance(inputs, Packet):
            weighted: list[tuple[Outcome, object]] = [(inputs, 1)]
        elif isinstance(inputs, Dist):
            weighted = list(inputs.items())
        else:
            packets = list(inputs)
            if not packets:
                raise ValueError("cannot build a uniform distribution over no outcomes")
            share = s.as_prob(1) / len(packets)
            weighted = [(packet, share) for packet in packets]
        proper = [pk for pk, _ in weighted if not isinstance(pk, _DropType)]
        outputs = self.output_distributions(policy, proper)
        parts: list[tuple[Dist[Outcome], object]] = []
        for outcome, mass in weighted:
            if isinstance(outcome, _DropType):
                parts.append((Dist.point(DROP), mass))
            else:
                parts.append((outputs[outcome], mass))
        return Dist.convex(parts, check=False)

    # -- network-model conveniences ------------------------------------------------
    def delivery_probabilities(self, model) -> dict[Packet, float]:
        """Per-ingress delivery probability of a network model (batched)."""
        outputs = self.output_distributions(model.policy, model.ingress_packets)
        return {
            packet: float(
                dist.prob_of(
                    lambda out: not isinstance(out, _DropType)
                    and out.get("sw") == model.dest
                )
            )
            for packet, dist in outputs.items()
        }

    def certainly_delivers(self, model, tolerance: float = 1e-9) -> bool:
        """Whether every ingress packet is delivered with probability one.

        Numerical analogue of the interpreter's structural possibility
        analysis: delivery mass must be within ``tolerance`` of 1 for all
        ingresses.  All ingresses share one batched solve.
        """
        return all(
            probability >= 1.0 - tolerance
            for probability in self.delivery_probabilities(model).values()
        )

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock time per phase.

        ``"compile"`` covers FDD compilation and plan building;
        ``"query"`` is end-to-end query time, *inclusive* of its
        ``"assemble"`` (vectorized reachable-matrix construction),
        ``"factorize"`` (``splu`` of a growth step's ``I − Q`` block),
        and ``"solve"`` (batched right-hand-side solves) sub-phases,
        which are also reported separately.
        """
        return dict(self.watch.sections)

    def solver_stats(self) -> dict[str, int]:
        """Cumulative numeric-kernel counters for introspection.

        ``factorizations``/``schur_updates`` aggregate over every loop
        stage of every cached or adopted plan (see
        :class:`~repro.core.markov.IncrementalAbsorptionSolver`);
        ``assembly_rows`` counts class rows written into transition
        matrices by the vectorized assembly pass.  Worker processes ship
        this dict home in their stats blob, so pool ``worker_reports()``
        and CLI stats can show where replica time goes.
        """
        factorizations = 0
        schur_updates = 0
        plans = [plan for _policy, plan in self._plans.values()]
        plans.extend(self._adopted.values())
        for plan in plans:
            for stage in plan.loop_stages:
                factorizations += stage.factorizations
                schur_updates += stage.schur_updates
        return {
            "factorizations": factorizations,
            "schur_updates": schur_updates,
            "assembly_rows": self.assembly_rows,
        }

    @property
    def compiler(self) -> Compiler:
        return self._compiler

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (registry/session API symmetry).

        The matrix backend owns no worker pool; ``close()`` exists so
        sessions can manage any registry backend uniformly.
        """

    def __enter__(self) -> "MatrixBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def warm(self, policy: s.Policy, inputs: Iterable[Packet]) -> "MatrixBackend":
        """Pre-compile ``policy`` and pre-solve its loops for an ingress set.

        Calling this once with the *union* of an expected query stream's
        ingress packets factorizes every loop for the whole set up front,
        so subsequent slice-wise :meth:`output_distributions` calls hit
        the row/solution caches instead of growing the system query by
        query.  (Sessions achieve the same through
        ``AnalysisSession.warm``, which additionally populates the
        session-level result cache.  A *pooled* session never calls this
        directly outside a replica lease: warmup takes the same
        per-replica lease path as query execution, so it cannot race a
        concurrent ``query_batch`` on the same destination.)
        """
        self.output_distributions(policy, inputs)
        return self

    def clear_caches(self) -> None:
        """Drop cached plans, matrices, and loop solutions.

        A shared backend accumulates one plan (plus loop caches) per
        distinct policy queried; long-lived sweeps over many models can
        call this between batches to bound memory.  Compiled FDD nodes
        stay interned in the manager, and the shared :class:`PlanSpecStore`
        (if this backend is a pool replica) keeps its published specs —
        those are the pool's compile-once artifact, not per-query state.
        """
        self._plans.clear()
        self._matrices.clear()
        self._plan_keys.clear()
        self._adopted.clear()

    def reset_solutions(self) -> None:
        """Drop per-loop solver state while keeping compiled plans.

        Every cached plan keeps its compiled stage FDDs, but each loop
        stage is rebuilt empty: transition-row caches, absorption
        solutions, and the incremental ``splu`` factorizations are
        released.  This bounds solver memory for long-lived sessions
        without paying recompilation, and gives benchmarks a repeatable
        solver-path measurement (every pass after a reset re-runs matrix
        construction and factorization, not just cache lookups).
        """
        plans = [plan for _policy, plan in self._plans.values()]
        plans.extend(self._adopted.values())
        for plan in plans:
            for position, stage in enumerate(plan.stages):
                if isinstance(stage, _LoopStage):
                    plan.stages[position] = _LoopStage(
                        stage.loop,
                        stage.guard_fdd,
                        stage.body_fdd,
                        stage.domains,
                        stage.manager,
                        schur_crossover=stage.schur_crossover,
                        watch=stage.watch,
                    )

    # -- stage application ---------------------------------------------------------
    def _apply_fdd_stage(
        self, stage: _FddStage, dists: list[dict[Outcome, object]]
    ) -> list[dict[Outcome, object]]:
        cache: dict[Packet, Dist] = {}
        advanced: list[dict[Outcome, object]] = []
        for dist in dists:
            acc: dict[Outcome, object] = {}
            for outcome, mass in dist.items():
                if isinstance(outcome, _DropType):
                    acc[DROP] = acc.get(DROP, 0) + mass
                    continue
                row = cache.get(outcome)
                if row is None:
                    row = fdd_output_distribution(stage.fdd, outcome)
                    cache[outcome] = row
                for successor, weight in row.items():
                    acc[successor] = acc.get(successor, 0) + mass * weight
            advanced.append(acc)
        return advanced

    def _apply_loop_stage(
        self, stage: _LoopStage, dists: list[dict[Outcome, object]]
    ) -> list[dict[Outcome, object]]:
        entries: set[Packet] = set()
        for dist in dists:
            for outcome in dist:
                if isinstance(outcome, _DropType):
                    continue
                if stage.entered_by(outcome):
                    entries.add(outcome)
        self._solve_loop(stage, entries)
        advanced: list[dict[Outcome, object]] = []
        for dist in dists:
            acc: dict[Outcome, object] = {}
            for outcome, mass in dist.items():
                if isinstance(outcome, _DropType):
                    acc[DROP] = acc.get(DROP, 0) + mass
                    continue
                if outcome not in entries:  # guard already false: loop is identity
                    acc[outcome] = acc.get(outcome, 0) + mass
                    continue
                solution = stage.solutions[stage.classify_packet(outcome)]
                for cls, weight in solution.items():
                    successor: Outcome = (
                        DROP
                        if isinstance(cls, _DropType)
                        else stage.concretize(cls, outcome)
                    )
                    acc[successor] = acc.get(successor, 0) + mass * weight
            advanced.append(acc)
        return advanced

    def _solve_loop(self, stage: _LoopStage, entries: Iterable[Packet]) -> None:
        """Ensure absorption solutions exist for all entry packets' classes.

        The reachable class space is (re)explored from the union of all
        seeds seen so far (transition rows are memoised, so only genuinely
        new classes are expanded).  When growth is discovered, only the
        subsystem of the *new* transient classes is factorized: classes
        solved by an earlier seed are treated as absorbing gateways whose
        final absorption distributions are composed in afterwards
        (:class:`~repro.core.markov.IncrementalAbsorptionSolver`), so each
        class participates in exactly one — small — factorization instead
        of the whole reachable system being re-solved on every growth.
        """
        entry_classes = {stage.classify_packet(packet) for packet in entries}
        if entry_classes <= stage.solutions.keys():
            return
        stage.add_seeds(entry_classes)
        with self.watch.measure("assemble"):
            matrix = fdd_to_matrix(
                stage.body_fdd,
                extra_values=stage.domains,
                limit=self.class_limit,
                seeds=stage.seed_order,
                absorbing_when=lambda cls: not stage.guard_holds(cls),
                row_cache=stage.row_cache,
            )
        self.assembly_rows += matrix.assembled_rows
        stage.matrix = matrix
        transient = [cls for cls in matrix.classes if stage.guard_holds(cls)]
        # The incremental solver only reads rows of not-yet-solved states
        # (solved distributions are final; exploration closes forward
        # reachability, so a solved class can never gain a successor).
        solved = stage.solver.solved_states
        transitions = {
            cls: dict(stage.row_cache[cls].items())
            for cls in transient
            if cls not in solved
        }
        if not transitions:
            return
        # The solver reports its own "factorize"/"solve" sections on this
        # backend's stopwatch (it was constructed with watch=self.watch),
        # so no outer measurement wraps it — the phases stay disjoint.
        result = stage.solver.solve(transient, transitions)
        for cls in transient:
            if cls in stage.solutions:
                continue
            row = dict(result.get(cls, {}))
            lost = result.lost_mass.get(cls, 0)
            if lost:
                # Diverging mass is assigned to drop (guarded limit semantics).
                row[DROP] = row.get(DROP, 0) + lost
            stage.solutions[cls] = Dist(row, check=False)


def _class_sort_key(cls: SymbolicPacket) -> tuple:
    """A total order on symbolic classes (wildcards sort before values)."""
    return tuple(
        (fieldname, value is not None, 0 if value is None else value)
        for fieldname, value in cls.values
    )


def _concretize(cls: SymbolicPacket, base: Packet) -> Packet:
    """The concrete output packet of class ``cls`` for input packet ``base``.

    Concretely-valued class fields are written onto the packet; wildcard
    fields were untouched by the loop (a wildcard can only be preserved,
    never created), so the packet keeps its own value — or stays without
    the field — exactly like the forward interpreter.
    """
    values = base.as_dict()
    for fieldname, value in cls.values:
        if value is not None:
            values[fieldname] = value
    return Packet(values)
