"""The batched sparse-matrix query backend (§5–§6).

This backend realises the paper's performance story at query time: a
network model compiles *once* into sparse stochastic matrices over
symbolic packet classes, the absorbing-chain system ``I - Q`` of each
loop is factorized *once* with ``splu``, and every ingress query — output
distributions, hop-count CDFs, delivery/resilience probabilities — is
answered by batched multi-RHS solves against the cached factorization.

Compared with the native backend (which re-solves a growing absorption
system for every new ingress seed), the matrix backend:

* decomposes a guarded model ``in ; body ; while ¬out do body ; …`` into
  loop-free *FDD stages* and *loop stages*;
* compiles each stage to a canonical FDD once (stages are shared across
  queries on the same policy object);
* converts loop bodies to sparse transition matrices over the symbolic
  classes *reachable* from the query's ingress set (dynamic domain
  reduction restricted to the reachable subspace, §5.1);
* solves all absorption columns with one factorization via
  :func:`repro.core.markov.solve_absorption_batched`.

Loop-free stages are evaluated exactly (rational leaf distributions);
loop solutions are float64, like the native backend's LU path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core import syntax as s
from repro.core.compiler import Compiler, ops_evaluate_bool
from repro.core.distributions import Dist
from repro.core.fdd.matrix import (
    SymbolicPacket,
    TransitionMatrix,
    fdd_to_matrix,
    matrix_domains,
)
from repro.core.fdd.node import FddManager, FddNode, node_size
from repro.core.fdd.node import output_distribution as fdd_output_distribution
from repro.core.interpreter import Outcome, eval_predicate
from repro.core.markov import IncrementalAbsorptionSolver
from repro.core.packet import DROP, Packet, _DropType
from repro.utils.timing import Stopwatch


@dataclass
class _FddStage:
    """A loop-free policy segment, compiled to one canonical FDD."""

    fdd: FddNode


class _LoopStage:
    """A ``while`` loop with its cached matrices and absorption solutions.

    The stage owns three caches that persist across queries:

    * ``row_cache`` — symbolic class → one-step body transition row;
    * ``solutions`` — transient class → absorption distribution;
    * ``matrix`` — the most recent reachable :class:`TransitionMatrix`.

    New ingress classes extend the explored space; when that happens only
    the *newly discovered* subsystem is factorized — already-solved
    classes act as absorbing gateways whose final distributions are
    composed in (:class:`~repro.core.markov.IncrementalAbsorptionSolver`)
    — so subsequent queries are pure cache hits and no class ever
    participates in more than one factorization.
    """

    def __init__(
        self,
        loop: s.WhileDo,
        guard_fdd: FddNode,
        body_fdd: FddNode,
        domains: dict[str, tuple[int, ...]],
        manager: FddManager,
    ):
        self.loop = loop
        self.guard_fdd = guard_fdd
        self.body_fdd = body_fdd
        self.domains = domains
        self.manager = manager
        self.row_cache: dict[SymbolicPacket, Dist] = {}
        self.solutions: dict[SymbolicPacket, Dist] = {}
        self.matrix: TransitionMatrix | None = None
        self.solver = IncrementalAbsorptionSolver()
        self._guard_cache: dict[SymbolicPacket, bool] = {}
        self._seeds: set[SymbolicPacket] = set()
        # Per-field membership sets and a packet->class memo: classification
        # runs once per distinct outcome packet, not once per occurrence.
        self._domain_sets = {field: frozenset(values) for field, values in domains.items()}
        self._class_cache: dict[Packet, SymbolicPacket] = {}

    @property
    def factorizations(self) -> int:
        """Linear-system factorizations performed so far (one per growth step)."""
        return self.solver.factorizations

    def guard_holds(self, cls: SymbolicPacket) -> bool:
        cached = self._guard_cache.get(cls)
        if cached is None:
            cached = ops_evaluate_bool(self.manager, self.guard_fdd, cls)
            self._guard_cache[cls] = cached
        return cached

    def classify_packet(self, packet: Packet) -> SymbolicPacket:
        """The symbolic class of a concrete packet over this loop's domain."""
        cached = self._class_cache.get(packet)
        if cached is None:
            values: dict[str, int | None] = {}
            for field, members in self._domain_sets.items():
                value = packet.get(field)
                values[field] = value if value in members else None
            cached = SymbolicPacket(values)
            self._class_cache[packet] = cached
        return cached


@dataclass
class QueryPlan:
    """A policy decomposed into alternating FDD and loop stages."""

    policy: s.Policy
    stages: list[_FddStage | _LoopStage]

    @property
    def loop_stages(self) -> list[_LoopStage]:
        return [stage for stage in self.stages if isinstance(stage, _LoopStage)]


@dataclass
class MatrixBackend:
    """Batched sparse-matrix backend: compile once, factorize once, query many.

    Parameters
    ----------
    class_limit:
        Bound on the number of symbolic classes explored per loop (and on
        full-domain conversions via :meth:`transition_matrix`).
    exact:
        Accepted for registry symmetry with the native backend but must
        stay ``False``: the batched solver is float64 by design (use the
        native backend for exact rational loop solving).
    """

    exact: bool = False
    class_limit: int = 1_000_000
    watch: Stopwatch = field(default_factory=Stopwatch)

    def __post_init__(self) -> None:
        if self.exact:
            raise ValueError(
                "MatrixBackend is float64-only (splu); use NativeBackend(exact=True) "
                "for exact rational arithmetic"
            )
        self.manager = FddManager()
        self._compiler = Compiler(manager=self.manager, class_limit=self.class_limit)
        # Plan cache keyed by policy object identity (the policy is kept in
        # the value so a recycled id cannot alias a different program).
        self._plans: dict[int, tuple[s.Policy, QueryPlan]] = {}
        # TransitionMatrix cache keyed by canonical FDD identity: FDDs are
        # hash-consed, so semantically equal policies share one matrix.
        self._matrices: dict[FddNode, TransitionMatrix] = {}

    # -- compilation ----------------------------------------------------------
    def compile(self, policy: s.Policy) -> FddNode:
        """Compile ``policy`` to its canonical FDD (timed as ``"compile"``)."""
        with self.watch.measure("compile"):
            return self._compiler.compile(policy)

    def fdd_size(self, policy: s.Policy) -> int:
        """Number of distinct nodes in the compiled FDD of ``policy``."""
        return node_size(self.compile(policy))

    def transition_matrix(self, policy: s.Policy) -> TransitionMatrix:
        """The full-domain sparse stochastic matrix of a (loop-free) policy.

        The result is cached by the canonical FDD of the policy, so any
        two semantically equal policies share a single matrix.
        """
        fdd = self.compile(policy)
        cached = self._matrices.get(fdd)
        if cached is None:
            with self.watch.measure("build"):
                cached = fdd_to_matrix(fdd, limit=self.class_limit)
            self._matrices[fdd] = cached
        return cached

    def plan(self, policy: s.Policy) -> QueryPlan:
        """Decompose ``policy`` into compiled stages (cached per policy)."""
        cached = self._plans.get(id(policy))
        if cached is not None and cached[0] is policy:
            return cached[1]
        with self.watch.measure("compile"):
            plan = self._build_plan(policy)
        self._plans[id(policy)] = (policy, plan)
        return plan

    def _build_plan(self, policy: s.Policy) -> QueryPlan:
        parts: Sequence[s.Policy] = (
            policy.parts if isinstance(policy, s.Seq) else [policy]
        )
        stages: list[_FddStage | _LoopStage] = []
        pending: list[s.Policy] = []

        def flush() -> None:
            if not pending:
                return
            fdd = self._compiler.compile(s.seq(*pending))
            if fdd is not self.manager.true_leaf:
                stages.append(_FddStage(fdd))
            pending.clear()

        for part in parts:
            if isinstance(part, s.WhileDo):
                flush()
                guard_fdd = self._compiler.compile(part.guard)
                body_fdd = self._compiler.compile(part.body)
                domains = matrix_domains(body_fdd, extra_values=matrix_domains(guard_fdd))
                stages.append(
                    _LoopStage(
                        part,
                        guard_fdd,
                        body_fdd,
                        {f: tuple(sorted(v)) for f, v in domains.items()},
                        self.manager,
                    )
                )
            else:
                pending.append(part)
        flush()
        return QueryPlan(policy, stages)

    # -- queries ----------------------------------------------------------------
    def output_distributions(
        self, policy: s.Policy, inputs: Iterable[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Per-ingress output distributions, batched over the whole set.

        All ingress packets advance through the plan together, so every
        loop is factorized at most once for the union of their entry
        states (versus one incremental re-solve per packet in the
        interpreter-based native path).
        """
        packets = list(inputs)
        plan = self.plan(policy)
        with self.watch.measure("query"):
            dists: list[dict[Outcome, object]] = [{packet: 1} for packet in packets]
            for stage in plan.stages:
                if isinstance(stage, _FddStage):
                    dists = self._apply_fdd_stage(stage, dists)
                else:
                    dists = self._apply_loop_stage(stage, dists)
        return {
            packet: Dist(weights, check=False)
            for packet, weights in zip(packets, dists)
        }

    def output_distribution(
        self, policy: s.Policy, inputs: Packet | Dist[Outcome] | Iterable[Packet]
    ) -> Dist[Outcome]:
        """Output distribution on a packet, a distribution, or a uniform ingress set."""
        if isinstance(inputs, Packet):
            weighted: list[tuple[Outcome, object]] = [(inputs, 1)]
        elif isinstance(inputs, Dist):
            weighted = list(inputs.items())
        else:
            packets = list(inputs)
            if not packets:
                raise ValueError("cannot build a uniform distribution over no outcomes")
            share = s.as_prob(1) / len(packets)
            weighted = [(packet, share) for packet in packets]
        proper = [pk for pk, _ in weighted if not isinstance(pk, _DropType)]
        outputs = self.output_distributions(policy, proper)
        parts: list[tuple[Dist[Outcome], object]] = []
        for outcome, mass in weighted:
            if isinstance(outcome, _DropType):
                parts.append((Dist.point(DROP), mass))
            else:
                parts.append((outputs[outcome], mass))
        return Dist.convex(parts, check=False)

    # -- network-model conveniences ------------------------------------------------
    def delivery_probabilities(self, model) -> dict[Packet, float]:
        """Per-ingress delivery probability of a network model (batched)."""
        outputs = self.output_distributions(model.policy, model.ingress_packets)
        return {
            packet: float(
                dist.prob_of(
                    lambda out: not isinstance(out, _DropType)
                    and out.get("sw") == model.dest
                )
            )
            for packet, dist in outputs.items()
        }

    def certainly_delivers(self, model, tolerance: float = 1e-9) -> bool:
        """Whether every ingress packet is delivered with probability one.

        Numerical analogue of the interpreter's structural possibility
        analysis: delivery mass must be within ``tolerance`` of 1 for all
        ingresses.  All ingresses share one batched solve.
        """
        return all(
            probability >= 1.0 - tolerance
            for probability in self.delivery_probabilities(model).values()
        )

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock time per phase.

        ``"compile"`` covers FDD compilation and plan building;
        ``"query"`` is end-to-end query time, *inclusive* of its
        ``"build"`` (reachable-matrix construction) and ``"solve"``
        (factorization + batched solve) sub-phases, which are also
        reported separately.
        """
        return dict(self.watch.sections)

    @property
    def compiler(self) -> Compiler:
        return self._compiler

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (registry/session API symmetry).

        The matrix backend owns no worker pool; ``close()`` exists so
        sessions can manage any registry backend uniformly.
        """

    def __enter__(self) -> "MatrixBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def warm(self, policy: s.Policy, inputs: Iterable[Packet]) -> "MatrixBackend":
        """Pre-compile ``policy`` and pre-solve its loops for an ingress set.

        Calling this once with the *union* of an expected query stream's
        ingress packets factorizes every loop for the whole set up front,
        so subsequent slice-wise :meth:`output_distributions` calls hit
        the row/solution caches instead of growing the system query by
        query.  (Sessions achieve the same through
        ``AnalysisSession.warm``, which additionally populates the
        session-level result cache.)
        """
        self.output_distributions(policy, inputs)
        return self

    def clear_caches(self) -> None:
        """Drop cached plans, matrices, and loop solutions.

        A shared backend accumulates one plan (plus loop caches) per
        distinct policy queried; long-lived sweeps over many models can
        call this between batches to bound memory.  Compiled FDD nodes
        stay interned in the manager.
        """
        self._plans.clear()
        self._matrices.clear()

    # -- stage application ---------------------------------------------------------
    def _apply_fdd_stage(
        self, stage: _FddStage, dists: list[dict[Outcome, object]]
    ) -> list[dict[Outcome, object]]:
        cache: dict[Packet, Dist] = {}
        advanced: list[dict[Outcome, object]] = []
        for dist in dists:
            acc: dict[Outcome, object] = {}
            for outcome, mass in dist.items():
                if isinstance(outcome, _DropType):
                    acc[DROP] = acc.get(DROP, 0) + mass
                    continue
                row = cache.get(outcome)
                if row is None:
                    row = fdd_output_distribution(stage.fdd, outcome)
                    cache[outcome] = row
                for successor, weight in row.items():
                    acc[successor] = acc.get(successor, 0) + mass * weight
            advanced.append(acc)
        return advanced

    def _apply_loop_stage(
        self, stage: _LoopStage, dists: list[dict[Outcome, object]]
    ) -> list[dict[Outcome, object]]:
        entries: set[Packet] = set()
        for dist in dists:
            for outcome in dist:
                if isinstance(outcome, _DropType):
                    continue
                if eval_predicate(stage.loop.guard, outcome):
                    entries.add(outcome)
        self._solve_loop(stage, entries)
        advanced: list[dict[Outcome, object]] = []
        for dist in dists:
            acc: dict[Outcome, object] = {}
            for outcome, mass in dist.items():
                if isinstance(outcome, _DropType):
                    acc[DROP] = acc.get(DROP, 0) + mass
                    continue
                if outcome not in entries:  # guard already false: loop is identity
                    acc[outcome] = acc.get(outcome, 0) + mass
                    continue
                solution = stage.solutions[stage.classify_packet(outcome)]
                for cls, weight in solution.items():
                    successor: Outcome = (
                        DROP
                        if isinstance(cls, _DropType)
                        else _concretize(cls, outcome)
                    )
                    acc[successor] = acc.get(successor, 0) + mass * weight
            advanced.append(acc)
        return advanced

    def _solve_loop(self, stage: _LoopStage, entries: Iterable[Packet]) -> None:
        """Ensure absorption solutions exist for all entry packets' classes.

        The reachable class space is (re)explored from the union of all
        seeds seen so far (transition rows are memoised, so only genuinely
        new classes are expanded).  When growth is discovered, only the
        subsystem of the *new* transient classes is factorized: classes
        solved by an earlier seed are treated as absorbing gateways whose
        final absorption distributions are composed in afterwards
        (:class:`~repro.core.markov.IncrementalAbsorptionSolver`), so each
        class participates in exactly one — small — factorization instead
        of the whole reachable system being re-solved on every growth.
        """
        entry_classes = {stage.classify_packet(packet) for packet in entries}
        if entry_classes <= stage.solutions.keys():
            return
        stage._seeds |= entry_classes
        with self.watch.measure("build"):
            matrix = fdd_to_matrix(
                stage.body_fdd,
                extra_values=stage.domains,
                limit=self.class_limit,
                seeds=sorted(stage._seeds, key=_class_sort_key),
                absorbing_when=lambda cls: not stage.guard_holds(cls),
                row_cache=stage.row_cache,
            )
        stage.matrix = matrix
        transient = [cls for cls in matrix.classes if stage.guard_holds(cls)]
        # The incremental solver only reads rows of not-yet-solved states
        # (solved distributions are final; exploration closes forward
        # reachability, so a solved class can never gain a successor).
        solved = stage.solver.solved_states
        transitions = {
            cls: dict(stage.row_cache[cls].items())
            for cls in transient
            if cls not in solved
        }
        if not transitions:
            return
        with self.watch.measure("solve"):
            result = stage.solver.solve(transient, transitions)
        for cls in transient:
            if cls in stage.solutions:
                continue
            row = dict(result.get(cls, {}))
            lost = result.lost_mass.get(cls, 0)
            if lost:
                # Diverging mass is assigned to drop (guarded limit semantics).
                row[DROP] = row.get(DROP, 0) + lost
            stage.solutions[cls] = Dist(row, check=False)


def _class_sort_key(cls: SymbolicPacket) -> tuple:
    """A total order on symbolic classes (wildcards sort before values)."""
    return tuple(
        (fieldname, value is not None, 0 if value is None else value)
        for fieldname, value in cls.values
    )


def _concretize(cls: SymbolicPacket, base: Packet) -> Packet:
    """The concrete output packet of class ``cls`` for input packet ``base``.

    Concretely-valued class fields are written onto the packet; wildcard
    fields were untouched by the loop (a wildcard can only be preserved,
    never created), so the packet keeps its own value — or stays without
    the field — exactly like the forward interpreter.
    """
    values = base.as_dict()
    for fieldname, value in cls.values:
        if value is not None:
            values[fieldname] = value
    return Packet(values)
