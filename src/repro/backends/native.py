"""The native backend ("PNK" in the paper's plots).

A convenience facade over the FDD compiler and the forward interpreter,
with built-in timing so the benchmark harnesses can report compile and
query times separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core import syntax as s
from repro.core.compiler import Compiler
from repro.core.distributions import Dist
from repro.core.fdd.node import FddManager, FddNode, node_size
from repro.core.interpreter import Interpreter, Outcome
from repro.core.packet import Packet
from repro.utils.timing import Stopwatch


@dataclass
class NativeBackend:
    """Native McNetKAT-style backend: FDD compilation + forward analysis.

    Parameters
    ----------
    exact:
        Use exact rational arithmetic for loop solving (both in the
        compiler and in the interpreter).
    class_limit:
        Bound on the symbolic-domain size for full compilation.
    """

    exact: bool = False
    class_limit: int = 100_000
    watch: Stopwatch = field(default_factory=Stopwatch)

    def __post_init__(self) -> None:
        self.manager = FddManager()
        self._compiler = Compiler(
            manager=self.manager, exact=self.exact, class_limit=self.class_limit
        )
        # The interpreter shares the backend's compiler, so loop bodies
        # compiled for the fast path intern into the same FDD manager as
        # full compilations.
        self._interpreter = Interpreter(exact=self.exact, compiler=self._compiler)

    # -- full compilation --------------------------------------------------------
    def compile(self, policy: s.Policy) -> FddNode:
        """Compile ``policy`` to its canonical FDD (timed as ``"compile"``)."""
        with self.watch.measure("compile"):
            return self._compiler.compile(policy)

    def fdd_size(self, policy: s.Policy) -> int:
        """Number of distinct nodes in the compiled FDD of ``policy``."""
        return node_size(self.compile(policy))

    # -- forward analysis ----------------------------------------------------------
    def output_distribution(
        self, policy: s.Policy, inputs: Packet | Dist[Outcome] | Iterable[Packet]
    ) -> Dist[Outcome]:
        """Output distribution on a packet, a distribution, or a uniform ingress set."""
        with self.watch.measure("query"):
            if isinstance(inputs, (Packet, Dist)):
                return self._interpreter.run(policy, inputs)
            packets: Sequence[Packet] = list(inputs)
            return self._interpreter.run(policy, Dist.uniform(packets))

    def output_distributions(
        self, policy: s.Policy, inputs: Iterable[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Per-ingress output distributions (shares loop solutions across inputs)."""
        with self.watch.measure("query"):
            return {packet: self._interpreter.run_packet(policy, packet) for packet in inputs}

    def certain_outcomes(self, policy: s.Policy, packet: Packet):
        """Structural possibility analysis (see :meth:`Interpreter.certain_outcomes`)."""
        return self._interpreter.certain_outcomes(policy, packet)

    def certainly_delivers(self, model) -> bool:
        """Whether every ingress of a network model delivers with probability one.

        Delegates to the model's structural possibility analysis, reusing
        this backend's interpreter (and its loop caches).
        """
        return model.certainly_delivers(interpreter=self._interpreter)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release pooled resources (the interpreter's worker pool, if any).

        Sessions and long-lived callers own the backend's lifetime: the
        parallel interpreter keeps one persistent worker pool alive until
        its owner closes it.
        """
        self._interpreter.close()

    def __enter__(self) -> "NativeBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def interpreter(self) -> Interpreter:
        return self._interpreter

    @property
    def compiler(self) -> Compiler:
        return self._compiler

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock time per phase."""
        return dict(self.watch.sections)
