"""Network model builders: assembling policy, topology, and failure models."""

from repro.network.model import NetworkModel, build_model

__all__ = ["NetworkModel", "build_model"]
