"""Assembling complete network models (§2 and §7).

A network model packages a forwarding policy ``p``, a topology program
``t``, and a failure model ``f`` into the single ProbNetKAT program

    ``M̂(p, t, f) = var up_1 <- 1 in … in ; (f;p;t) ; while ¬out do (f;p;t)``

together with the ingress packets, the teleportation specification, and
the delivered-predicate needed by the analyses.  Link-health flags, the
failure counter, and the detour marker are declared as local variables so
they are erased from the observable output, exactly as in the paper's
desugaring of ``var f <- n in p``.

One deviation from the literal paper model is recorded here explicitly:
the loop body re-initialises the link-health flags after the topology
step.  Because the failure model resamples every flag it reads at the
start of each hop and the egress erasure sets all flags to a canonical
value, this does not change the observable semantics, but it collapses
the loop-head state space from (location × flag-assignment) to just the
packet locations, which is what makes forward exploration scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core import sugar
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.fields import FieldTable
from repro.core.interpreter import Interpreter, Outcome
from repro.core.packet import Packet, _DropType
from repro.topology.graph import Topology


@dataclass
class NetworkModel:
    """A fully assembled network model and its analysis artefacts.

    Attributes
    ----------
    policy:
        The complete model program ``M̂``.
    teleport:
        The teleportation specification used as the gold standard for
        full delivery (``in ; sw <- dest ; pt <- 0`` under the same local
        declarations).
    ingress_packets:
        One concrete packet per ingress location.
    delivered:
        Predicate satisfied exactly by delivered packets (``sw = dest``).
    body:
        One hop of the model (``f ; p ; t`` plus bookkeeping), useful for
        parallel row computation.
    """

    topology: Topology
    dest: int
    policy: s.Policy
    teleport: s.Policy
    body: s.Policy
    ingress_packets: list[Packet]
    ingress_predicate: s.Predicate
    delivered: s.Predicate
    hops_field: str | None = None
    fields: FieldTable = field(default_factory=FieldTable)

    # -- analyses -------------------------------------------------------------
    def output_distributions(
        self, exact: bool = False, interpreter: Interpreter | None = None
    ) -> dict[Packet, Dist[Outcome]]:
        """Per-ingress output distributions of the model."""
        interp = interpreter if interpreter is not None else Interpreter(exact=exact)
        return {
            packet: interp.run_packet(self.policy, packet)
            for packet in self.ingress_packets
        }

    def delivery_probabilities(
        self, exact: bool = False, interpreter: Interpreter | None = None
    ) -> dict[Packet, float]:
        """Per-ingress probability that the packet reaches the destination."""
        outputs = self.output_distributions(exact=exact, interpreter=interpreter)
        return {
            packet: float(
                dist.prob_of(
                    lambda out: not isinstance(out, _DropType) and out.get("sw") == self.dest
                )
            )
            for packet, dist in outputs.items()
        }

    def delivery_probability(
        self, exact: bool = False, interpreter: Interpreter | None = None
    ) -> float:
        """Delivery probability averaged uniformly over the ingress set."""
        per_ingress = self.delivery_probabilities(exact=exact, interpreter=interpreter)
        return sum(per_ingress.values()) / len(per_ingress)

    def certainly_delivers(self, interpreter: Interpreter | None = None) -> bool:
        """Whether every ingress packet is delivered with probability one.

        Uses the structural possibility analysis, so the verdict is exact
        (no numerical tolerance involved).
        """
        interp = interpreter if interpreter is not None else Interpreter()
        for packet in self.ingress_packets:
            outcomes, may_diverge = interp.certain_outcomes(self.policy, packet)
            if may_diverge:
                return False
            for outcome in outcomes:
                if isinstance(outcome, _DropType) or outcome.get("sw") != self.dest:
                    return False
        return True


def build_model(
    topology: Topology,
    routing: s.Policy,
    dest: int,
    failure: s.Policy | None = None,
    failable: Mapping[int, Iterable[int]] | None = None,
    ingress: Sequence[tuple[int, int]] | None = None,
    count_hops: bool = False,
    max_hops: int = 16,
    sw_field: str = "sw",
    pt_field: str = "pt",
    up_prefix: str = "up",
    hops_field: str = "hops",
    extra_locals: Sequence[tuple[str, int]] = (),
) -> NetworkModel:
    """Assemble the network model ``M̂(routing, t, failure)``.

    Parameters
    ----------
    topology:
        The network topology; its :meth:`~repro.topology.graph.Topology.program`
        provides the link program ``t``.
    routing:
        The switch policy ``p`` (e.g. ECMP or one of the F10 schemes).
    dest:
        Destination switch; the model's loop runs while ``sw ≠ dest``.
    failure:
        The failure model ``f`` run at each hop (omitted = no failures).
    failable:
        Per-switch failable ports, used to guard the corresponding links
        in the topology program and to reset their health flags.
    ingress:
        Ingress locations as ``(switch, port)`` pairs; defaults to every
        host-facing port except those at the destination switch.
    count_hops:
        Add a saturating hop counter (used by the latency analyses of
        Figure 12(b,c)).
    extra_locals:
        Additional ``(field, initial value)`` local declarations.  Used to
        give structurally different schemes (e.g. F10 with and without the
        detour flag) the same observable field set, so their outputs stay
        directly comparable in refinement checks.
    """
    failable = {node: sorted(ports) for node, ports in (failable or {}).items()}
    link_program = topology.program(
        failable=failable, sw_field=sw_field, pt_field=pt_field, up_prefix=up_prefix
    )
    if ingress is None:
        ingress = topology.ingress_locations(exclude=[dest])
    if not ingress:
        raise ValueError("the model needs at least one ingress location")

    ingress_predicate = s.disj(
        *[
            s.conj(s.test(sw_field, switch), s.test(pt_field, port))
            for switch, port in ingress
        ]
    )
    out_predicate = s.test(sw_field, dest)

    pieces: list[s.Policy] = []
    if failure is not None:
        pieces.append(failure)
    pieces.append(routing)
    pieces.append(link_program)

    # Collect the local bookkeeping fields used by the model.
    mentioned = set()
    for piece in pieces:
        mentioned |= piece.fields()
    up_fields = sorted(name for name in mentioned if name.startswith(up_prefix)
                       and name != up_prefix and name[len(up_prefix):].isdigit())
    detour_fields = sorted(name for name in mentioned if name == "detour")
    counter_fields = sorted(name for name in mentioned if name == "fails")

    # Re-initialise flags after each hop so loop-head states depend only on
    # the packet location (see module docstring).
    if up_fields:
        pieces.append(sugar.set_all(up_fields, 1))
    if count_hops:
        pieces.append(sugar.increment(hops_field, max_hops))
    body = s.seq(*pieces)

    core = s.seq(
        ingress_predicate,
        body,
        s.while_do(s.neg(out_predicate), body),
        s.assign(pt_field, 0),
    )
    if count_hops:
        core = s.seq(s.assign(hops_field, 0), core)

    bindings = [(name, 1) for name in up_fields]
    bindings += [(name, 0) for name in detour_fields]
    bindings += [(name, 0) for name in counter_fields]
    declared = {name for name, _ in bindings}
    bindings += [(name, init) for name, init in extra_locals if name not in declared]
    policy = sugar.locals_in(bindings, core) if bindings else core

    teleport_core = s.seq(ingress_predicate, s.assign(sw_field, dest), s.assign(pt_field, 0))
    teleport = sugar.locals_in(bindings, teleport_core) if bindings else teleport_core

    ingress_packets = [
        Packet({sw_field: switch, pt_field: port}) for switch, port in ingress
    ]

    table = FieldTable.from_policy(policy)
    return NetworkModel(
        topology=topology,
        dest=dest,
        policy=policy,
        teleport=teleport,
        body=body,
        ingress_packets=ingress_packets,
        ingress_predicate=ingress_predicate,
        delivered=out_predicate,
        hops_field=hops_field if count_hops else None,
        fields=table,
    )
