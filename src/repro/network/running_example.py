"""The three-switch running example of §2 of the paper.

The topology (Figure 1) connects a source at switch 1 to a destination at
switch 2, with switch 3 available as a backup next hop.  The module
provides the naive forwarding scheme ``p``, the fault-tolerant scheme
``p̂``, the (failure-aware) topology programs, the three failure models
``f0``/``f1``/``f2``, and the assembled models ``M̂(p, t̂, f)`` used in
the paper's overview — including the quantitative claims that the naive
scheme delivers 80% of traffic and the resilient scheme 96% under ``f2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import sugar
from repro.core import syntax as s
from repro.core.packet import Packet
from repro.failure.models import running_example_failure_models

#: Ingress and egress locations of the running example.
INGRESS = s.conj(s.test("sw", 1), s.test("pt", 1))
EGRESS = s.conj(s.test("sw", 2), s.test("pt", 2))

#: The packet injected at the source.
INGRESS_PACKET = Packet({"sw": 1, "pt": 1})


def naive_policy() -> s.Policy:
    """The naive forwarding scheme ``p``: switches 1 and 2 forward out port 2."""
    return s.ite(
        s.test("sw", 1),
        s.assign("pt", 2),
        s.ite(s.test("sw", 2), s.assign("pt", 2), s.drop()),
    )


def resilient_policy() -> s.Policy:
    """The fault-tolerant scheme ``p̂``: fall back to port 3 when link ℓ12 is down.

    Switch 1 routes via switch 2 when its link is healthy and detours via
    switch 3 otherwise; switches 2 and 3 forward towards the destination
    over links that cannot fail in the §2 failure models.
    """
    p1 = s.ite(
        s.test("up2", 1),
        s.assign("pt", 2),
        s.ite(s.test("up2", 0), s.assign("pt", 3), s.drop()),
    )
    p2 = s.assign("pt", 2)
    p3 = s.assign("pt", 2)
    return s.ite(s.test("sw", 1), p1, s.ite(s.test("sw", 2), p2, p3))


def topology() -> s.Policy:
    """The failure-oblivious topology program ``t``."""
    return _topology(guarded=False)


def faulty_topology() -> s.Policy:
    """The failure-aware topology program ``t̂`` (links honour ``up`` flags)."""
    return _topology(guarded=True)


def _topology(guarded: bool) -> s.Policy:
    def link(src: int, src_pt: int, dst: int, dst_pt: int, flag: str | None) -> tuple[s.Predicate, s.Policy]:
        move = s.seq(s.assign("sw", dst), s.assign("pt", dst_pt))
        guard = s.conj(s.test("sw", src), s.test("pt", src_pt))
        if guarded and flag is not None:
            move = s.ite(s.test(flag, 1), move, s.drop())
        return guard, move

    # Links of Figure 1: 1--2 (ports 2/1), 1--3 (ports 3/1), 3--2 (ports 2/3).
    # Only ℓ12 and ℓ13 may fail (guarded by up2/up3); the 2--3 link cannot.
    rules = [
        link(1, 2, 2, 1, "up2"),
        link(1, 3, 3, 1, "up3"),
        link(3, 2, 2, 3, None),
        link(2, 1, 1, 2, "up2"),
        link(3, 1, 1, 3, "up3"),
        link(2, 3, 3, 2, None),
    ]
    return s.case(rules, s.drop())


def teleport() -> s.Policy:
    """The specification ``in ; sw<-2 ; pt<-2``."""
    return s.seq(INGRESS, s.assign("sw", 2), s.assign("pt", 2))


def model(policy: s.Policy, topo: s.Policy) -> s.Policy:
    """The failure-free model ``M(p, t) = in ; p ; while ¬out do (t ; p)``."""
    return s.seq(INGRESS, policy, s.while_do(s.neg(EGRESS), s.seq(topo, policy)))


def faulty_model(policy: s.Policy, failure: s.Policy) -> s.Policy:
    """The refined model ``M̂(p, t̂, f)`` with local link-health flags (§2)."""
    wrapped = model(s.seq(failure, policy), faulty_topology())
    return sugar.locals_in([("up2", 1), ("up3", 1)], wrapped)


def failure_models() -> dict[str, s.Policy]:
    """The failure models ``f0``, ``f1``, ``f2`` of §2."""
    return running_example_failure_models()


@dataclass(frozen=True)
class RunningExample:
    """All artefacts of the §2 overview, bundled for examples and tests."""

    naive: s.Policy
    resilient: s.Policy
    teleport: s.Policy
    ingress_packet: Packet
    models_naive: dict[str, s.Policy]
    models_resilient: dict[str, s.Policy]


def build() -> RunningExample:
    """Assemble every §2 artefact (models under all three failure models)."""
    failures = failure_models()
    return RunningExample(
        naive=naive_policy(),
        resilient=resilient_policy(),
        teleport=teleport(),
        ingress_packet=INGRESS_PACKET,
        models_naive={name: faulty_model(naive_policy(), f) for name, f in failures.items()},
        models_resilient={
            name: faulty_model(resilient_policy(), f) for name, f in failures.items()
        },
    )
