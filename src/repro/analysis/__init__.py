"""Analyses over network models: delivery, resilience, and latency."""

from repro.analysis.queries import (
    delivery_probability,
    expected_value,
    field_distribution,
    output_distribution,
)
from repro.analysis.resilience import (
    compare_schemes,
    refinement_table,
    resilience_table,
)
from repro.analysis.latency import (
    expected_hop_count,
    hop_count_cdf,
    hop_count_distribution,
)

__all__ = [
    "compare_schemes",
    "delivery_probability",
    "expected_hop_count",
    "expected_value",
    "field_distribution",
    "hop_count_cdf",
    "hop_count_distribution",
    "output_distribution",
    "refinement_table",
    "resilience_table",
]
