"""Analyses over network models: delivery, resilience, and latency.

Every distribution-backed entry point accepts ``backend=`` (a registry
name or shared backend instance) and ``session=`` (a persistent
:class:`~repro.service.AnalysisSession`, re-exported here lazily as
``repro.analysis.AnalysisSession``): sessions pool one compiled backend,
shard batched queries, and cache results across calls.
"""

from repro.analysis.queries import (
    delivery_probability,
    expected_value,
    field_distribution,
    output_distribution,
)
from repro.analysis.resilience import (
    compare_schemes,
    refinement_table,
    resilience_table,
)
from repro.analysis.latency import (
    expected_hop_count,
    hop_count_cdf,
    hop_count_distribution,
)

def __getattr__(name: str):
    # Lazy re-export: repro.service imports analysis helpers' siblings,
    # so the session class is resolved on first attribute access instead
    # of at import time (no circular import).
    if name == "AnalysisSession":
        from repro.service import AnalysisSession

        return AnalysisSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisSession",
    "compare_schemes",
    "delivery_probability",
    "expected_hop_count",
    "expected_value",
    "field_distribution",
    "hop_count_cdf",
    "hop_count_distribution",
    "output_distribution",
    "refinement_table",
    "resilience_table",
]
