"""Resilience and refinement analyses (Figure 11(b) and 11(c)).

*k*-resilience asks whether a routing scheme delivers every ingress
packet with probability one when at most ``k`` links fail.  The check is
performed structurally (via the interpreter's possibility analysis), so
it is exact — no numerical tolerance is involved.  When schemes are not
fully resilient they can still be ranked by the refinement order ``<``
on their delivery behaviour, which is what Figure 11(c) reports.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.backends import resolve_backend
from repro.core.equivalence import compare
from repro.network.model import NetworkModel

#: Symbols used in the printed tables, matching the paper's figures.
CHECK = "✓"
CROSS = "✗"


def resilience_table(
    model_factory: Callable[[str, int | None], NetworkModel],
    schemes: Sequence[str],
    failure_bounds: Sequence[int | None],
    backend=None,
    session=None,
) -> dict[str, dict[int | None, bool]]:
    """Evaluate *k*-resilience of several schemes (Figure 11(b)).

    ``model_factory(scheme, k)`` must build the network model of the given
    scheme under failure bound ``k`` (``None`` meaning unbounded).  The
    result maps scheme → {k → certainly-delivers}.

    With the default ``backend=None`` the check is the interpreter's
    structural possibility analysis (exact).  Passing a backend (e.g.
    ``"matrix"``) delegates to its ``certainly_delivers`` — the matrix
    backend answers numerically from one batched absorption solve per
    model, within solver tolerance.  ``session`` serves the sweep from a
    persistent :class:`~repro.service.AnalysisSession` (cached verdicts);
    it is mutually exclusive with ``backend``.
    """
    from repro.analysis.queries import _with_session

    engine = resolve_backend(_with_session(backend, session))
    if engine is not None and not hasattr(engine, "certainly_delivers"):
        raise TypeError(
            f"backend {type(engine).__name__} does not support resilience "
            "queries; use 'native', 'matrix', or 'parallel'"
        )
    table: dict[str, dict[int | None, bool]] = {}
    for scheme in schemes:
        row: dict[int | None, bool] = {}
        for bound in failure_bounds:
            model = model_factory(scheme, bound)
            if engine is not None:
                row[bound] = engine.certainly_delivers(model)
            else:
                row[bound] = model.certainly_delivers()
        table[scheme] = row
    return table


def refinement_table(
    model_factory: Callable[[str, int | None], NetworkModel],
    scheme_pairs: Sequence[tuple[str, str]],
    failure_bounds: Sequence[int | None],
    exact: bool = False,
) -> dict[tuple[str, str], dict[int | None, str]]:
    """Compare schemes pairwise under each failure bound (Figure 11(c)).

    ``"teleport"`` may be used as a scheme name to compare against the
    teleportation specification.  Entries are ``"≡"``, ``"<"``, ``">"``,
    or ``"incomparable"``.
    """
    table: dict[tuple[str, str], dict[int | None, str]] = {}
    for left, right in scheme_pairs:
        row: dict[int | None, str] = {}
        for bound in failure_bounds:
            reference = model_factory(
                left if left != "teleport" else right, bound
            )
            left_policy = (
                reference.teleport if left == "teleport" else model_factory(left, bound).policy
            )
            right_policy = (
                reference.teleport
                if right == "teleport"
                else model_factory(right, bound).policy
            )
            row[bound] = compare(
                left_policy, right_policy, reference.ingress_packets, exact=exact
            )
        table[(left, right)] = row
    return table


def compare_schemes(
    models: Mapping[str, NetworkModel], exact: bool = False
) -> dict[tuple[str, str], str]:
    """All pairwise refinement relations among a set of assembled models."""
    names = list(models)
    results: dict[tuple[str, str], str] = {}
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            results[(left, right)] = compare(
                models[left].policy,
                models[right].policy,
                models[left].ingress_packets,
                exact=exact,
            )
    return results


def format_resilience_table(
    table: Mapping[str, Mapping[int | None, bool]],
    equivalence_label: str = "≡ teleport",
) -> str:
    """Render a resilience table in the style of Figure 11(b)."""
    bounds = sorted(
        {bound for row in table.values() for bound in row},
        key=lambda b: float("inf") if b is None else b,
    )
    header = ["k"] + [f"{scheme} {equivalence_label}" for scheme in table]
    lines = ["\t".join(header)]
    for bound in bounds:
        label = "∞" if bound is None else str(bound)
        cells = [CHECK if table[scheme][bound] else CROSS for scheme in table]
        lines.append("\t".join([label] + cells))
    return "\n".join(lines)


def format_refinement_table(
    table: Mapping[tuple[str, str], Mapping[int | None, str]]
) -> str:
    """Render a refinement table in the style of Figure 11(c)."""
    bounds = sorted(
        {bound for row in table.values() for bound in row},
        key=lambda b: float("inf") if b is None else b,
    )
    header = ["k"] + [f"{left} vs {right}" for left, right in table]
    lines = ["\t".join(header)]
    for bound in bounds:
        label = "∞" if bound is None else str(bound)
        cells = [table[pair][bound] for pair in table]
        lines.append("\t".join([label] + cells))
    return "\n".join(lines)
