"""Basic quantitative queries on program output distributions.

These are the building blocks of the paper's analyses: the probability of
reaching the destination (delivery / SLA queries of §2), marginal
distributions of individual fields, and expectations of packet-derived
quantities (e.g. hop counts).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.backends import resolve_backend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.interpreter import Interpreter, Outcome, eval_predicate
from repro.core.packet import Packet, _DropType
from repro.network.model import NetworkModel

#: Type accepted by the ``backend=`` parameter of the analysis entry
#: points: a registry name ("native", "matrix", "parallel"), a backend
#: instance with an ``output_distribution`` method, or ``None`` for the
#: classic per-query forward interpreter.  The PRISM backend exposes a
#: probability-oriented API and cannot serve distribution queries.
Backend = object


def _with_session(backend, session):
    """Fold ``session=`` into ``backend=`` (they are mutually exclusive).

    An :class:`~repro.service.session.AnalysisSession` implements the
    engine protocol (``output_distribution`` / ``certainly_delivers``),
    so the analysis entry points treat a session exactly like a shared
    backend instance — but one whose answers flow through the session's
    canonical-FDD-keyed result cache.
    """
    if session is None:
        return backend
    if backend is not None:
        raise ValueError("pass either backend= or session=, not both")
    return session


def _distribution_engine(backend, exact: bool):
    """Resolve ``backend=`` for a distribution query, validating conflicts.

    ``exact=True`` is compatible with a backend only when the resolved
    backend itself runs in exact mode (e.g. a ``NativeBackend(exact=True)``
    instance): the flag then simply asserts what the engine already does.
    Registry *names* instantiate backends with their defaults (float), so
    ``exact=True`` with ``backend="native"`` is still rejected — configure
    the instance instead.
    """
    engine = resolve_backend(backend)
    if engine is None:
        return None
    if exact and not getattr(engine, "exact", False):
        raise ValueError(
            "exact=True requires an exact-mode backend instance; configure the "
            "backend itself (e.g. NativeBackend(exact=True)) or drop backend="
        )
    if not hasattr(engine, "output_distribution"):
        raise TypeError(
            f"backend {type(engine).__name__} does not support distribution "
            "queries; use 'native', 'matrix', or 'parallel' (the PRISM backend "
            "answers via its probability() API)"
        )
    return engine


def output_distribution(
    model: NetworkModel | s.Policy,
    inputs: Iterable[Packet] | Packet | None = None,
    exact: bool = False,
    backend: Backend | str | None = None,
    session=None,
) -> Dist[Outcome]:
    """Output distribution of a model (uniform over its ingress set by default).

    ``backend`` selects the query engine: ``None`` runs a fresh forward
    interpreter; a registry name or backend instance (e.g. ``"matrix"``)
    delegates to that backend — a shared instance reuses its compiled
    matrices and factorizations across calls.  ``session`` routes the
    query through a persistent :class:`~repro.service.AnalysisSession`
    (shared backend plus result cache); it is mutually exclusive with
    ``backend``.
    """
    policy, packets = _unpack(model, inputs)
    engine = _distribution_engine(_with_session(backend, session), exact)
    if engine is not None:
        return engine.output_distribution(policy, Dist.uniform(packets))
    interp = Interpreter(exact=exact)
    return interp.run(policy, Dist.uniform(packets))


def delivery_probability(
    model: NetworkModel | s.Policy,
    delivered: s.Predicate | Callable[[Packet], bool] | None = None,
    inputs: Iterable[Packet] | Packet | None = None,
    exact: bool = False,
    backend: Backend | str | None = None,
    session=None,
) -> float:
    """Probability that a packet (uniform over the ingress set) is delivered."""
    _, packets = _unpack(model, inputs)
    if delivered is None:
        if not isinstance(model, NetworkModel):
            raise ValueError("a delivered-predicate is required for bare policies")
        delivered = model.delivered
    dist = output_distribution(
        model, inputs=packets, exact=exact, backend=backend, session=session
    )
    return float(dist.prob_of(lambda out: _is_delivered(out, delivered)))


def field_distribution(dist: Dist[Outcome], field: str) -> Dist[int | None]:
    """Marginal distribution of one packet field (``None`` for dropped packets)."""
    return dist.map(
        lambda out: None if isinstance(out, _DropType) else out.get(field)
    )


def expected_value(
    dist: Dist[Outcome],
    value: Callable[[Packet], float],
    condition: Callable[[Packet], bool] | None = None,
) -> float:
    """Expectation of ``value`` over delivered packets, optionally conditioned.

    Dropped packets are always excluded; ``condition`` further restricts
    the outcomes (the distribution is renormalised over the remaining
    mass, matching "conditioned on delivery" quantities like Figure 12(c)).
    """
    total = 0.0
    mass = 0.0
    for outcome, prob in dist.items():
        if isinstance(outcome, _DropType):
            continue
        if condition is not None and not condition(outcome):
            continue
        total += float(prob) * float(value(outcome))
        mass += float(prob)
    if mass == 0.0:
        raise ZeroDivisionError("no probability mass satisfies the condition")
    return total / mass


def _is_delivered(
    outcome: Outcome, delivered: s.Predicate | Callable[[Packet], bool]
) -> bool:
    if isinstance(outcome, _DropType):
        return False
    if isinstance(delivered, s.Predicate):
        return eval_predicate(delivered, outcome)
    return bool(delivered(outcome))


def _unpack(
    model: NetworkModel | s.Policy, inputs: Iterable[Packet] | Packet | None
) -> tuple[s.Policy, list[Packet]]:
    if isinstance(model, NetworkModel):
        policy = model.policy
        packets = model.ingress_packets if inputs is None else inputs
    else:
        policy = model
        if inputs is None:
            raise ValueError("input packets are required for bare policies")
        packets = inputs
    if isinstance(packets, Packet):
        packets = [packets]
    return policy, list(packets)
