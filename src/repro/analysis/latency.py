"""Path-stretch / latency analyses (Figure 12(b) and 12(c)).

Resilient routing schemes trade longer paths for higher delivery
probability.  With a hop counter added to the network model
(``count_hops=True`` in :func:`repro.network.model.build_model` or
:func:`repro.routing.f10.f10_model`) these helpers compute the
distribution of hop counts of delivered traffic, its CDF, and the
expected hop count conditioned on delivery.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.queries import _distribution_engine, _with_session
from repro.core.distributions import Dist
from repro.core.interpreter import Interpreter
from repro.core.packet import _DropType
from repro.network.model import NetworkModel


def _require_hops(model: NetworkModel) -> str:
    if model.hops_field is None:
        raise ValueError(
            "the model was built without a hop counter; pass count_hops=True"
        )
    return model.hops_field


def hop_count_distribution(
    model: NetworkModel,
    exact: bool = False,
    interpreter: Interpreter | None = None,
    backend=None,
    session=None,
) -> Dist[int | None]:
    """Joint distribution of hop counts over the uniform ingress set.

    Dropped packets map to ``None``; delivered packets map to the value of
    the model's hop counter.  ``backend`` selects the query engine (see
    :mod:`repro.analysis.queries`); passing a shared matrix backend makes
    the all-ingress query a single batched solve, and ``session`` routes
    it through a persistent :class:`~repro.service.AnalysisSession` and
    its result cache.
    """
    hops_field = _require_hops(model)
    engine = _distribution_engine(_with_session(backend, session), exact)
    if engine is not None:
        if interpreter is not None:
            raise ValueError("pass either interpreter= or backend=, not both")
        output = engine.output_distribution(
            model.policy, Dist.uniform(model.ingress_packets)
        )
    else:
        interp = interpreter if interpreter is not None else Interpreter(exact=exact)
        output = interp.run(model.policy, Dist.uniform(model.ingress_packets))
    return output.map(
        lambda out: None
        if isinstance(out, _DropType) or out.get("sw") != model.dest
        else out.get(hops_field)
    )


def hop_count_cdf(
    model: NetworkModel,
    max_hops: int | None = None,
    exact: bool = False,
    interpreter: Interpreter | None = None,
    backend=None,
    session=None,
) -> dict[int, float]:
    """``P[delivered within ≤ h hops]`` as a function of ``h`` (Figure 12(b)).

    The values are fractions of *all* traffic (not conditioned on
    delivery), so the curve plateaus at the overall delivery probability,
    exactly like the paper's plot.
    """
    dist = hop_count_distribution(
        model, exact=exact, interpreter=interpreter, backend=backend, session=session
    )
    observed = [h for h in dist.support() if h is not None]
    top = max_hops if max_hops is not None else (max(observed) if observed else 0)
    cdf: dict[int, float] = {}
    running = 0.0
    for hops in range(0, top + 1):
        running += float(dist(hops))
        cdf[hops] = running
    return cdf


def expected_hop_count(
    model: NetworkModel,
    exact: bool = False,
    interpreter: Interpreter | None = None,
    backend=None,
    session=None,
) -> float:
    """Expected hop count conditioned on delivery (Figure 12(c))."""
    dist = hop_count_distribution(
        model, exact=exact, interpreter=interpreter, backend=backend, session=session
    )
    total = 0.0
    mass = 0.0
    for hops, prob in dist.items():
        if hops is None:
            continue
        total += float(prob) * hops
        mass += float(prob)
    if mass == 0.0:
        raise ZeroDivisionError("no traffic is delivered; expected hop count undefined")
    return total / mass


def hop_count_series(
    models: Mapping[str, NetworkModel],
    max_hops: int | None = None,
    exact: bool = False,
    backend=None,
    session=None,
) -> dict[str, dict[int, float]]:
    """CDF series for several labelled models (one plot line each).

    A ``backend`` name is resolved once so all models in the series share
    one instance (and therefore its compiled-plan and matrix caches); a
    ``session`` additionally shares its result cache.
    """
    engine = _distribution_engine(_with_session(backend, session), exact)
    return {
        label: hop_count_cdf(model, max_hops=max_hops, exact=exact, backend=engine)
        for label, model in models.items()
    }
