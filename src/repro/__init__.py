"""repro — a reproduction of McNetKAT (PLDI 2019).

McNetKAT is a scalable verifier for the guarded, history-free fragment of
Probabilistic NetKAT.  This package provides:

* :mod:`repro.core` — the ProbNetKAT language, its Markov-chain semantics,
  the probabilistic-FDD compiler, and the forward interpreter;
* :mod:`repro.backends` — the native and PRISM backends;
* :mod:`repro.topology`, :mod:`repro.routing`, :mod:`repro.failure`,
  :mod:`repro.network` — data-center topologies, routing schemes (ECMP,
  F10), failure models, and network model builders;
* :mod:`repro.analysis` — delivery probability, resilience, and latency
  queries;
* :mod:`repro.service` — the persistent, sharded analysis service: an
  ``AnalysisSession`` compiles models once and serves concurrent query
  streams (``python -m repro.service`` is its CLI);
* :mod:`repro.baselines` — a Bayonet-style general-purpose exact
  inference baseline used for performance comparisons.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
