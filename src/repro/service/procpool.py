"""Process-hosted backend replicas: full-pipeline parallel serving.

Architecture: the thread-hosted :class:`~repro.service.pool.BackendPool`
only parallelises the phases of a shard that release the GIL (SciPy's
``splu`` factorizations and solves); the GIL-bound phases — plan
rebuilds, reachable-matrix assembly, FDD stage application — still
serialise, so thread-pool speedup saturates well below core count.  A
:class:`ProcessBackendPool` removes that ceiling by hosting each replica
in its **own worker process**: every worker owns a complete
:class:`~repro.backends.matrix.MatrixBackend` (its own FDD manager, plan
caches, and ``splu`` family), so compile-free plan rebuilds, matrix
assembly, and solving all overlap across cores.

Nothing manager-bound and no ASTs cross the process boundary
(:mod:`repro.service.wire`):

* the parent keeps one *planner backend* (replica 0's role in the thread
  pool) whose only job is compiling policies once and producing their
  manager-independent ``(fields, stage_specs)`` payloads and canonical
  :meth:`~repro.backends.matrix.MatrixBackend.plan_key` cache keys;
* a :class:`PlanDirectory` assigns each policy a small integer plan id
  and hands the payload to every worker that has not seen it yet — ship
  once per (worker, plan), serve forever after;
* workers rebuild plans with
  :meth:`~repro.backends.matrix.MatrixBackend.adopt_plan` (pure
  ``node_from_spec`` reconstruction — **no AST compilation ever happens
  worker-side**, asserted by their ``ast_compilations`` counter staying
  0) and answer :class:`~repro.service.wire.QuerySpec` messages with
  :class:`~repro.service.wire.ResultSpec` answers: plain floats and
  exact :class:`~fractions.Fraction` masses keyed by packet spec.

The pool plugs into the exact lease/affinity/steal protocol of the
thread pool (it *is* a :class:`BackendPool` subclass): destination
affinity now also means "the worker process holding that destination's
factorizations keeps serving it", warmup pre-plans every worker through
the ordinary lease path, and ``close()`` drains held leases, then stops
and joins every worker.  Because plan payloads are per-task data, one
long-lived worker serves any number of destinations and loop bodies
without restarting.

Lock note: a :class:`WorkerHandle` is only ever driven under its
replica's exclusive lease, so the pipe protocol needs no lock of its
own; the :class:`PlanDirectory` lock is the process-pool analogue of the
:class:`~repro.backends.matrix.PlanSpecStore` leaf lock, except that it
*may* compile (parent-side, first time a policy is seen) — it is
therefore only ever taken from inside a lease or from warmup, never
while holding the session state lock.

Supervision: worker death is detected *immediately* — every request
waits on both the reply pipe and the worker's ``Process.sentinel`` via
:func:`multiprocessing.connection.wait`, so a crash surfaces as a
structured :class:`~repro.service.pool.ReplicaFailure` the instant the
process exits (not after a poll interval).  A ``shard_timeout`` arms a
per-request wall-clock watchdog: a worker that does not answer in time
is killed and reported as ``kind="timeout"`` — hung workers are replaced
exactly like crashed ones.  The pool's quarantine/respawn machinery (see
:mod:`repro.service.pool`) then spawns a fresh worker at the same index
and re-publishes every plan the dead worker had adopted from the
parent-side :class:`PlanDirectory` — as specs, so respawned workers
still report 0 AST compilations.  Fault injection for all of this lives
in :mod:`repro.service.faults` (``REPRO_FAULTS``), which
:func:`worker_main` consults around query requests only.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import queue
import random
import threading
import time
import traceback
import weakref
from typing import TYPE_CHECKING

from repro.service.faults import FaultPlan
from repro.service.pool import (
    HEALTHY,
    BackendPool,
    PoolUnavailable,
    Replica,
    ReplicaFailure,
)
from repro.service.telemetry import Telemetry, Tracer
from repro.service.transport import (
    DEFAULT_MAX_FRAME,
    FrameError,
    PipeTransport,
    SocketTransport,
    TransportClosed,
    TransportError,
)
from repro.service.wire import QuerySpec, ResultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.matrix import MatrixBackend

#: Environment override for the worker start method ("fork", "spawn", ...).
START_METHOD_ENV = "REPRO_POOL_START_METHOD"


def _pick_start_method(requested: str | None) -> str:
    """The multiprocessing start method for worker processes.

    ``fork`` (when the platform offers it) makes workers available in
    milliseconds and inherits ``sys.path``; ``spawn`` is the portable
    fallback.  The ``REPRO_POOL_START_METHOD`` environment variable and
    the ``start_method=`` parameter both override.
    """
    choice = requested or os.environ.get(START_METHOD_ENV)
    available = multiprocessing.get_all_start_methods()
    if choice:
        if choice not in available:
            raise ValueError(
                f"start method {choice!r} not available here (have: {available})"
            )
        return choice
    return "fork" if "fork" in available else "spawn"


def _worker_stats(
    backend: "MatrixBackend", queries: int, spans: list[dict] | None = None
) -> dict:
    """The introspection blob attached to every worker reply.

    ``spans`` — present only on traced queries — carries the worker-side
    finished span records (already parented into the caller's trace via
    the propagated :attr:`~repro.service.wire.QuerySpec.trace` context),
    which the parent-side handle ingests into its tracer.
    """
    stats = {
        "pid": os.getpid(),
        "ast_compilations": backend.ast_compilations,
        "plans": backend.adopted_plans,
        "queries": queries,
        "timings": backend.timings(),
        "solver": backend.solver_stats(),
    }
    if spans:
        stats["spans"] = spans
    return stats


def worker_main(connection, index: int = 0) -> None:
    """The worker process: one backend replica, driven over one pipe.

    The worker owns a full :class:`~repro.backends.matrix.MatrixBackend`
    built *here*, in this process — nothing manager-bound was inherited
    or received.  Messages (all plain picklable data):

    * ``("plan", plan_id, fields, stage_specs)`` → adopt a shipped plan
      (idempotent); reply ``("ok", stats)``.
    * ``("query", QuerySpec)`` → answer from adopted plans only; reply
      ``("result", ResultSpec, stats)``.
    * ``("reset", keep_plans)`` → drop solver state (and, without
      ``keep_plans``, the adopted plans); reply ``("ok", stats)``.
    * ``("ping",)`` → reply ``("ok", stats)`` (liveness + stats fetch).
    * ``("stop",)`` → reply ``("ok", stats)`` and exit.

    Any exception is caught and returned as ``("error", summary,
    traceback)`` — the worker survives and keeps serving, so one bad
    query cannot take a replica (and its warm factorizations) down.

    Fault injection (chaos testing): when ``REPRO_FAULTS`` names this
    worker's ``index``, the :mod:`repro.service.faults` hooks run around
    **query** requests only — plan shipping and the respawn path stay
    clean, so injected crashes exercise the same recovery machinery a
    real mid-solve crash would.
    """
    import signal

    # The parent handles interrupts and tears workers down via "stop";
    # a Ctrl-C must not kill workers mid-protocol.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro.backends.matrix import MatrixBackend

    plan = FaultPlan.from_env()
    faults = plan.for_worker(index) if plan is not None else None
    backend = MatrixBackend()
    queries_served = 0
    requests_served = 0
    # Worker-side tracer, built lazily on the first *traced* query (the
    # untraced path never pays for it).  Always enabled once built: the
    # sampling decision was made by the caller and travels in the
    # propagated context.
    tracer: Tracer | None = None
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):  # parent died: nothing left to serve
            return
        op = message[0]
        try:
            if op == "stop":
                connection.send(("ok", _worker_stats(backend, queries_served)))
                return
            if op == "plan":
                _, plan_id, fields, stage_specs = message
                backend.adopt_plan(plan_id, fields, stage_specs)
                connection.send(("ok", _worker_stats(backend, queries_served)))
            elif op == "query":
                if faults is not None and faults.sabotage_query(requests_served) == "drop":
                    connection.close()
                    return
                requests_served += 1
                spec: QuerySpec = message[1]
                if spec.kind != "distributions":
                    raise ValueError(f"unknown wire query kind {spec.kind!r}")
                spans: list[dict] | None = None
                if spec.trace is not None:
                    # Traced query: wrap the solve in a worker span
                    # parented to the propagated caller context, and turn
                    # backend phase timings into child spans via the
                    # stopwatch listener.  Finished records ship back in
                    # the reply's stats blob.
                    if tracer is None:
                        tracer = Tracer(enabled=True)
                    watch = getattr(backend, "watch", None)
                    with tracer.span(
                        "worker:query",
                        parent=spec.trace,
                        plan=spec.plan,
                        packets=len(spec.ingress),
                        worker=index,
                    ):
                        if watch is not None:
                            watch.listener = tracer.phase_listener()
                        try:
                            dists = backend.query_plan(
                                spec.plan, spec.ingress_packets()
                            )
                        finally:
                            if watch is not None:
                                watch.listener = None
                    spans = tracer.take()
                else:
                    dists = backend.query_plan(spec.plan, spec.ingress_packets())
                queries_served += len(spec.ingress)
                result = ResultSpec.from_distributions(spec.plan, dists)
                if faults is not None:
                    faults.delay_reply(requests_served)
                connection.send(
                    ("result", result, _worker_stats(backend, queries_served, spans))
                )
            elif op == "reset":
                if message[1]:
                    backend.reset_solutions()
                else:
                    backend.clear_caches()
                connection.send(("ok", _worker_stats(backend, queries_served)))
            elif op == "ping":
                connection.send(("ok", _worker_stats(backend, queries_served)))
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            try:
                connection.send(
                    ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
                )
            except (OSError, BrokenPipeError):
                return


class PlanDirectory:
    """Parent-side registry: policy → (plan id, wire payload, cache key).

    One directory is shared by every worker handle of a pool.  The first
    request for a policy compiles it *once* on the parent's planner
    backend and caches the manager-independent payload; all later
    requests (from any worker handle, any thread) are dictionary hits.
    The lock is held across that first compile, which serialises plan
    compilation exactly like the thread pool's spec store does — replicas
    then rebuild from specs, they never re-compile.
    """

    def __init__(self, planner: "MatrixBackend"):
        self._planner = planner
        self._lock = threading.Lock()
        # id(policy) -> (policy, plan_id, fields, stage_specs, plan_key);
        # the policy is retained so a recycled id cannot alias.
        self._entries: dict[int, tuple] = {}
        # plan_id -> (fields, stage_specs): the respawn path re-ships a
        # dead worker's adopted plans by id, without the policy objects.
        self._by_id: dict[int, tuple] = {}
        self._next_id = 0

    @property
    def planner(self) -> "MatrixBackend":
        return self._planner

    def entry(self, policy) -> tuple[int, tuple, tuple, object]:
        """The ``(plan_id, fields, stage_specs, plan_key)`` of ``policy``."""
        found = self._entries.get(id(policy))
        if found is not None and found[0] is policy:
            return found[1:]
        with self._lock:
            found = self._entries.get(id(policy))
            if found is not None and found[0] is policy:
                return found[1:]
            fields, stage_specs = self._planner.plan_payload(policy)
            key = self._planner.plan_key(policy)
            plan_id = self._next_id
            self._next_id += 1
            self._entries[id(policy)] = (policy, plan_id, fields, stage_specs, key)
            self._by_id[plan_id] = (fields, stage_specs)
            return plan_id, fields, stage_specs, key

    def payload(self, plan_id: int) -> tuple | None:
        """The ``(fields, stage_specs)`` payload of ``plan_id``, if known.

        This is the respawn re-publication path: a fresh worker replacing
        a dead one re-adopts every plan the corpse had, straight from the
        directory — no policy object, no recompilation.
        """
        with self._lock:
            return self._by_id.get(plan_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ReplicaClient:
    """The shared parent-side surface of one worker replica.

    Implements exactly the backend surface a leased replica is driven
    through (``plan`` / ``plan_key`` / ``output_distributions`` /
    ``certainly_delivers`` / ``reset_solutions`` / ``clear_caches`` /
    ``timings`` / ``close``), translating each call into wire messages —
    so sessions, warmup, and benchmarks are drop-in between thread,
    process, and remote pools.  Subclasses supply ``_request`` (one
    message round trip over their transport) plus lifecycle; everything
    protocol-shaped lives here.  A handle is only ever driven under its
    replica's exclusive lease, hence one outstanding request at a time.
    """

    #: Where the replica runs ("local" or "HOST:PORT") and over what wire.
    host = "local"
    transport_kind = "pipe"
    #: Transport re-establishments for this slot (remote handles count up).
    reconnects = 0
    #: Heartbeat staleness observations (remote handles count up).
    heartbeat_misses = 0

    def __init__(
        self,
        index: int,
        directory: PlanDirectory,
        *,
        telemetry: Telemetry | None = None,
        carry_timings: dict | None = None,
    ):
        self.index = index
        self._directory = directory
        self._telemetry = telemetry
        # Phase timings accumulated by this slot's *previous* worker
        # incarnations (injected by the respawn path).  timings() adds the
        # live worker's snapshot on top, so a restart never makes the
        # slot's cumulative phase time go backwards.
        self._carry_timings: dict[str, float] = dict(carry_timings or {})
        self._closed = False
        #: The failure that killed this handle, when dead (sticky).
        self._failure: ReplicaFailure | None = None
        #: Plan ids this worker has adopted (ship-once bookkeeping).
        self._shipped: set[int] = set()
        #: Latest stats blob returned by the worker (refreshed per reply).
        self.worker_stats: dict = {}

    # -- wire plumbing ---------------------------------------------------------
    pid: int | None = None

    def _request(self, message: tuple) -> tuple:
        raise NotImplementedError

    def _accept(self, reply: tuple, op: str) -> tuple:
        """Common reply handling: semantic errors raise, stats refresh."""
        if reply[0] == "error":
            _, summary, trace = reply
            raise RuntimeError(
                f"worker {self.index} (pid {self.pid}) failed: {summary}\n{trace}"
            )
        self.worker_stats = reply[-1]
        return reply

    def adopt(self, plan_id: int, fields, stage_specs) -> None:
        """Ship one plan payload by id (the respawn re-publication path)."""
        self._request(("plan", plan_id, fields, stage_specs))
        self._shipped.add(plan_id)

    def _ensure_plan(self, policy) -> int:
        plan_id, fields, stage_specs, _key = self._directory.entry(policy)
        if plan_id not in self._shipped:
            self.adopt(plan_id, fields, stage_specs)
        return plan_id

    # -- backend surface (driven under a replica lease) ------------------------
    def plan(self, policy) -> int:
        """Ship ``policy``'s payload to the worker (the warmup hook)."""
        return self._ensure_plan(policy)

    def plan_key(self, policy) -> object:
        """The canonical manager-independent cache key (parent-side)."""
        return self._directory.entry(policy)[3]

    def output_distributions(self, policy, inputs) -> dict:
        """Per-ingress output distributions, computed in the worker.

        When the calling thread is inside a recording span (the lease
        span), its context rides the :class:`QuerySpec` into the worker
        and the worker's finished spans come back in the reply's stats
        blob, where they are ingested into the caller's tracer — one
        trace tree across the process boundary.
        """
        plan_id = self._ensure_plan(policy)
        trace = None
        telemetry = self._telemetry
        if telemetry is not None and telemetry.tracer.enabled:
            context = telemetry.tracer.current_context()
            if context is not None:
                trace = tuple(context)
        spec = QuerySpec.distributions(plan_id, inputs, trace=trace)
        _, result, stats = self._request(("query", spec))
        if trace is not None:
            telemetry.tracer.ingest(stats.get("spans") or ())
        return result.to_distributions()

    def certainly_delivers(self, model, tolerance: float = 1e-9) -> bool:
        """Delivery check: distributions in the worker, predicate here.

        The delivered predicate is an AST, so it never crosses the wire;
        the worker returns raw distributions and the parent applies the
        same ``_is_delivered`` semantics as every other entry point.
        """
        from repro.analysis.queries import _is_delivered

        dists = self.output_distributions(model.policy, model.ingress_packets)
        return all(
            float(dist.prob_of(lambda out: _is_delivered(out, model.delivered)))
            >= 1.0 - tolerance
            for dist in dists.values()
        )

    def ping(self) -> dict:
        """Round-trip liveness probe; returns (and caches) worker stats."""
        self._request(("ping",))
        return self.worker_stats

    def reset_solutions(self) -> None:
        """Drop the worker's solver state, keeping its adopted plans."""
        self._request(("reset", True))

    def clear_caches(self) -> None:
        """Drop the worker's plans and solver state (payloads re-ship lazily)."""
        self._request(("reset", False))
        self._shipped.clear()

    def timings(self) -> dict[str, float]:
        """The replica slot's cumulative phase timings across incarnations.

        The live worker's last-known snapshot *plus* the carry from every
        previous worker that served this slot (injected on respawn) — so
        a crashed-and-replaced worker never makes the slot's cumulative
        phase time go backwards, and session-level ``backend_timings``
        stay monotone under churn.  (Work a worker did after its last
        reply and before dying is unavoidably lost; monotonicity is the
        contract, not exactness.)
        """
        total = dict(self._carry_timings)
        timings = self.worker_stats.get("timings")
        if timings:
            for name, value in timings.items():
                total[name] = total.get(name, 0.0) + value
        return total

    def solver_stats(self) -> dict[str, int]:
        """The worker's last-known numeric-kernel counters.

        ``factorizations``/``schur_updates``/``assembly_rows`` from the
        stats blob of the most recent reply (see
        :meth:`~repro.backends.matrix.MatrixBackend.solver_stats`).
        Counters restart with the worker: a respawned replica reports its
        own work, not its predecessor's.
        """
        return dict(self.worker_stats.get("solver") or {})

    def close(self) -> None:
        raise NotImplementedError


class WorkerHandle(ReplicaClient):
    """The parent-side face of one *local* worker process.

    The transport is a :class:`~repro.service.transport.PipeTransport`
    over the worker's duplex pipe.  Failure detection: every request
    waits on the reply pipe *and* the worker's ``Process.sentinel``
    simultaneously, so a dead worker is noticed the moment the OS reaps
    it — not after a poll interval.  Death (and a ``shard_timeout``
    expiry, which kills the hung worker first) raises
    :class:`~repro.service.pool.ReplicaFailure`; the handle is then
    permanently dead and the pool's supervision replaces it with a fresh
    handle at the same replica index.  Semantic worker errors (bad
    query, unknown plan) still come back as ordinary ``RuntimeError`` —
    the worker survives those, nothing restarts.
    """

    def __init__(
        self,
        index: int,
        directory: PlanDirectory,
        context,
        *,
        shard_timeout: float | None = None,
        telemetry: Telemetry | None = None,
        carry_timings: dict | None = None,
    ):
        super().__init__(
            index, directory, telemetry=telemetry, carry_timings=carry_timings
        )
        self._timeout = shard_timeout
        conn, child_conn = context.Pipe(duplex=True)
        self._transport = PipeTransport(conn)
        self._process = context.Process(
            target=worker_main,
            args=(child_conn, index),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        # Safety net mirroring ParallelInterpreter's finalizer: an
        # abandoned handle must not leak a worker process.
        self._finalizer = weakref.finalize(
            self, _terminate_process, self._process, self._transport.connection
        )

    # -- wire plumbing ---------------------------------------------------------
    @property
    def pid(self) -> int | None:
        """The worker process id (evidence of cross-process execution)."""
        return self._process.pid

    @property
    def alive(self) -> bool:
        return self._failure is None and self._process.is_alive()

    @property
    def exit_code(self) -> int | None:
        """The worker's exit code once dead (negative = killed by signal)."""
        return self._process.exitcode

    def _mark_dead(
        self, kind: str, detail: str, cause: BaseException | None = None
    ) -> ReplicaFailure:
        """Record this handle as permanently dead; returns the failure."""
        exit_code = self._process.exitcode
        hint = ""
        if kind == "crash":
            hint = (
                "; with the spawn start method this usually means the 'repro' "
                "package is not importable in child processes"
            )
        failure = ReplicaFailure(
            f"worker {self.index} (pid {self.pid}) {detail} "
            f"(exit code {exit_code}){hint}",
            replica=self.index,
            kind=kind,
            exit_code=exit_code,
        )
        if cause is not None:
            failure.__cause__ = cause
        self._failure = failure
        return failure

    def _request(self, message: tuple) -> tuple:
        if self._closed:
            raise RuntimeError("worker handle is closed")
        if self._failure is not None:
            raise self._failure
        op = message[0]
        try:
            self._transport.send(message)
        except (TransportError, ValueError) as exc:
            self._process.join(timeout=1.0)
            raise self._mark_dead("crash", f"pipe broke while sending {op!r}", exc)
        deadline = None if self._timeout is None else time.monotonic() + self._timeout
        sentinel = self._process.sentinel
        pipe = self._transport.connection
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Watchdog: the worker is hung (or stalling) past the
                    # per-shard budget.  Kill it so the caller can retry on
                    # a healthy replica instead of waiting forever.
                    self._process.kill()
                    self._process.join(timeout=5.0)
                    if self._telemetry is not None:
                        self._telemetry.tracer.event(
                            "watchdog-kill",
                            replica=self.index,
                            pid=self.pid,
                            op=op,
                            budget=self._timeout,
                        )
                    raise self._mark_dead(
                        "timeout",
                        f"did not answer {op!r} within {self._timeout:.3f}s "
                        "and was killed",
                    )
            ready = multiprocessing.connection.wait(
                [pipe, sentinel], timeout=remaining
            )
            if pipe in ready:
                try:
                    reply = self._transport.recv()
                except TransportError as exc:
                    self._process.join(timeout=1.0)
                    raise self._mark_dead(
                        "crash", f"pipe closed mid-reply to {op!r}", exc
                    )
                break
            if sentinel in ready:
                # The worker exited.  A final reply may still sit in the
                # pipe buffer (reply raced the exit) — drain it first.
                if pipe.poll(0):
                    continue
                self._process.join(timeout=1.0)
                raise self._mark_dead("crash", f"died while serving {op!r}")
        return self._accept(reply, op)

    def close(self) -> None:
        """Stop the worker and join it (idempotent)."""
        if self._closed:
            return
        self._closed = True
        pipe = self._transport.connection
        try:
            if self._process.is_alive():
                pipe.send(("stop",))
                if pipe.poll(5.0):
                    reply = pipe.recv()
                    if reply and reply[0] == "ok":
                        self.worker_stats = reply[-1]
        except (OSError, BrokenPipeError, EOFError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._transport.close()
        self._finalizer.detach()


def _terminate_process(process, connection) -> None:
    """Finalizer: reap a worker whose handle was dropped without close()."""
    try:
        connection.close()
    except OSError:  # pragma: no cover - defensive
        pass
    if process.is_alive():
        process.terminate()
        process.join(timeout=5.0)


class RemoteWorkerHandle(ReplicaClient):
    """The parent-side face of one worker hosted by a remote host daemon.

    Speaks the identical worker protocol as :class:`WorkerHandle`, but
    over a checksummed, length-prefixed TCP transport
    (:class:`~repro.service.transport.SocketTransport`) to a
    :class:`~repro.service.host.HostServer`, which spawns and locally
    supervises the actual worker process.

    Liveness is **wire-driven** (there is no OS sentinel to wait on):

    * a dedicated receive thread owns the inbound side of the socket —
      host heartbeats and replies both refresh ``last_heartbeat``, reply
      frames land in a queue for the (single) outstanding request, and a
      ``("worker-died", exitcode)`` notification from the host's local
      supervision surfaces as ``ReplicaFailure(kind="crash")``;
    * a corrupt frame (truncated, bad checksum, oversize) poisons the
      connection and surfaces as ``ReplicaFailure(kind="transport")`` —
      framing cannot be trusted to resynchronise, so the pool reconnects;
    * a ``shard_timeout`` expiry *drops the connection* instead of
      killing a process it cannot reach — the host daemon kills the hung
      worker the moment its relay loses the client, so the cleanup
      contract matches the local watchdog.

    Like every handle, a failed ``RemoteWorkerHandle`` is permanently
    dead; the pool's respawn machinery replaces it (same host, failover
    host, or local fallback) and re-ships its plans as specs.
    """

    transport_kind = "tcp"

    #: Queue sentinel: the receive thread died, the sticky failure is set.
    _FAILED = object()

    def __init__(
        self,
        index: int,
        directory: PlanDirectory,
        address: tuple[str, int],
        *,
        shard_timeout: float | None = None,
        telemetry: Telemetry | None = None,
        carry_timings: dict | None = None,
        reconnects: int = 0,
        heartbeat_misses: int = 0,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME,
    ):
        super().__init__(
            index, directory, telemetry=telemetry, carry_timings=carry_timings
        )
        self._timeout = shard_timeout
        self.address = (str(address[0]), int(address[1]))
        self.host = f"{self.address[0]}:{self.address[1]}"
        self.reconnects = reconnects
        # Cumulative for the slot, carried across respawns like
        # ``reconnects`` — a partition's misses must survive the very
        # teardown they caused.
        self.heartbeat_misses = heartbeat_misses
        self.last_heartbeat = time.monotonic()
        self._exit_code: int | None = None
        self._pid: int | None = None
        # Reentrant: the monitor's probe() takes it non-blocking, then
        # _request takes it again on the same thread.
        self._io_lock = threading.RLock()
        self._replies: queue.SimpleQueue = queue.SimpleQueue()
        self._transport = SocketTransport.connect(
            self.address[0],
            self.address[1],
            timeout=connect_timeout,
            max_frame_bytes=max_frame_bytes,
        )
        try:
            self._transport.send(("attach", {"replica": index}))
            hello = self._transport.recv(timeout=connect_timeout)
        except TransportError:
            self._transport.close()
            raise
        if not (isinstance(hello, tuple) and hello and hello[0] == "attached"):
            self._transport.close()
            detail = hello[1] if isinstance(hello, tuple) and len(hello) > 1 else hello
            raise TransportError(f"host {self.host} refused attach: {detail!r}")
        #: Host-reported attachment facts (worker pid, host id, capacity).
        self.attach_info: dict = dict(hello[1])
        self._pid = self.attach_info.get("pid")
        self.last_heartbeat = time.monotonic()
        self._rx = threading.Thread(
            target=self._recv_loop, name=f"repro-remote-rx-{index}", daemon=True
        )
        self._rx.start()

    # -- wire plumbing ---------------------------------------------------------
    @property
    def pid(self) -> int | None:
        """The *remote* worker's process id (from the attach handshake)."""
        return self._pid

    @property
    def alive(self) -> bool:
        return self._failure is None and not self._closed

    @property
    def exit_code(self) -> int | None:
        """The remote worker's exit code, when its host reported death."""
        return self._exit_code

    @property
    def failure(self) -> ReplicaFailure | None:
        """The sticky failure that condemned this handle, if any."""
        return self._failure

    def _mark_dead(
        self, kind: str, detail: str, cause: BaseException | None = None
    ) -> ReplicaFailure:
        """Record this handle as permanently dead; first failure sticks."""
        failure = ReplicaFailure(
            f"remote worker {self.index} on {self.host} (pid {self._pid}) {detail}",
            replica=self.index,
            kind=kind,
            exit_code=self._exit_code,
        )
        if cause is not None:
            failure.__cause__ = cause
        if self._failure is None:
            self._failure = failure
        return self._failure

    def _fail_async(
        self, kind: str, detail: str, cause: BaseException | None = None
    ) -> None:
        """Receive-thread failure path: condemn, tear down, wake the waiter."""
        self._mark_dead(kind, detail, cause)
        self._transport.close()
        self._replies.put(self._FAILED)

    def _recv_loop(self) -> None:
        """Own the inbound socket: heartbeats, replies, death notices."""
        while True:
            try:
                message = self._transport.recv()
            except FrameError as exc:
                self._fail_async("transport", f"received a corrupt frame ({exc})", exc)
                return
            except TransportError as exc:
                if self._closed:
                    return
                kind = "crash" if isinstance(exc, TransportClosed) else "transport"
                self._fail_async(kind, f"lost the host connection ({exc})", exc)
                return
            # Any frame is proof of liveness — heartbeats keep flowing
            # from the host relay even while the worker is mid-solve.
            self.last_heartbeat = time.monotonic()
            op = message[0] if isinstance(message, tuple) and message else None
            if op == "heartbeat":
                continue
            if op == "worker-died":
                self._exit_code = message[1]
                self._fail_async(
                    "crash", f"died remotely (exit code {message[1]})"
                )
                return
            self._replies.put(message)

    def _request(self, message: tuple, *, timeout: float | None = -1.0) -> tuple:
        budget = self._timeout if timeout == -1.0 else timeout
        with self._io_lock:
            if self._closed:
                raise RuntimeError("worker handle is closed")
            if self._failure is not None:
                raise self._failure
            op = message[0]
            try:
                self._transport.send(message)
            except TransportError as exc:
                failure = self._mark_dead(
                    "transport", f"send failed for {op!r} ({exc})", exc
                )
                self._transport.close()
                raise failure
            deadline = None if budget is None else time.monotonic() + budget
            while True:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # Wire watchdog: drop the connection.  The host
                        # daemon kills the (possibly hung) worker the
                        # moment its relay loses this client, so remote
                        # timeouts clean up exactly like local ones.
                        if self._telemetry is not None:
                            self._telemetry.tracer.event(
                                "watchdog-kill",
                                replica=self.index,
                                pid=self.pid,
                                op=op,
                                budget=budget,
                                host=self.host,
                            )
                        failure = self._mark_dead(
                            "timeout",
                            f"did not answer {op!r} within {budget:.3f}s; "
                            "connection dropped",
                        )
                        self._transport.close()
                        raise failure
                try:
                    reply = self._replies.get(timeout=remaining)
                except queue.Empty:
                    continue
                if reply is self._FAILED:
                    raise self._failure
                return self._accept(reply, op)

    def probe(self, timeout: float = 1.0) -> bool:
        """Monitor-side liveness probe (never blocks behind a request).

        A handle whose io lock is held has a request in flight — report
        it alive and let that request's own deadline (or a stale-
        heartbeat teardown) decide.  Otherwise round-trip a ``ping``
        with its own short budget.
        """
        if self._failure is not None:
            return False
        if not self._io_lock.acquire(timeout=0.05):
            return True
        try:
            self._request(("ping",), timeout=timeout)
            return True
        except (ReplicaFailure, RuntimeError):
            return False
        finally:
            self._io_lock.release()

    def fail_stale(self, stale: float) -> ReplicaFailure:
        """Condemn a handle whose heartbeats stopped (partition suspected).

        Closing the transport wakes the receive thread (which wakes any
        in-flight request) and makes the host daemon — if it is still
        alive on the far side of a one-way partition — kill the worker.
        """
        failure = self._mark_dead(
            "transport", f"no heartbeat for {stale:.2f}s (partition suspected)"
        )
        self._transport.close()
        return failure

    def close(self) -> None:
        """Stop the remote worker and drop the connection (idempotent)."""
        if self._closed:
            return
        with self._io_lock:
            if self._closed:
                return
            if self._failure is None:
                try:
                    self._transport.send(("stop",))
                    deadline = time.monotonic() + 5.0
                    while True:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        try:
                            reply = self._replies.get(timeout=remaining)
                        except queue.Empty:
                            break
                        if reply is self._FAILED:
                            break
                        if reply and reply[0] == "ok":
                            self.worker_stats = reply[-1]
                            break
                except TransportError:
                    pass
            self._closed = True
        self._transport.close()
        self._rx.join(timeout=5.0)


class ProcessBackendPool(BackendPool):
    """N worker processes, each hosting a full backend replica.

    Drop-in for :class:`~repro.service.pool.BackendPool` — same exclusive
    leases, same affinity-first/steal-second routing, same ``stats()``
    shape — but every replica is a :class:`WorkerHandle` fronting a
    worker process, so *all* phases of shard execution (plan rebuild,
    matrix assembly, factorization, solve) run outside the parent's GIL.

    Parameters
    ----------
    backend:
        The parent-side planner backend.  It never serves shard queries;
        it compiles each policy once and produces the wire payloads and
        canonical cache keys workers and sessions share.  Must support
        spec shipping (``plan_payload``/``plan_key`` — the matrix
        backend; the native family cannot host process replicas).
    size:
        Number of worker processes (≥ 1).
    owns_base:
        Whether closing the pool also closes the planner backend
        (workers are always pool-owned and always joined on close).
    start_method:
        Multiprocessing start method; default ``fork`` where available
        (fast, inherits ``sys.path``), else ``spawn``.  Also overridable
        via the ``REPRO_POOL_START_METHOD`` environment variable.
    shard_timeout:
        Per-request wall-clock watchdog in seconds.  A worker that does
        not answer within the budget is killed, reported as a
        ``kind="timeout"`` :class:`~repro.service.pool.ReplicaFailure`,
        and respawned — so a hung worker degrades into a retried shard
        instead of a stuck batch.  ``None`` (default) disables the
        watchdog.
    """

    mode = "process"

    def __init__(
        self,
        backend: object,
        size: int = 1,
        *,
        owns_base: bool = False,
        start_method: str | None = None,
        shard_timeout: float | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not hasattr(backend, "plan_payload") or not hasattr(backend, "plan_key"):
            raise TypeError(
                f"backend {type(backend).__name__} cannot host process replicas: "
                "spec shipping needs plan_payload()/plan_key() (use the matrix "
                "backend, or pool_mode='thread')"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        self._start_method = _pick_start_method(start_method)
        self._shard_timeout = shard_timeout
        self._directory = PlanDirectory(backend)
        super().__init__(backend, size, owns_base=owns_base, telemetry=telemetry)

    def _new_handle(self, index: int, carry_timings: dict | None = None) -> WorkerHandle:
        return WorkerHandle(
            index,
            self._directory,
            self._context,
            shard_timeout=self._shard_timeout,
            telemetry=self._telemetry,
            carry_timings=carry_timings,
        )

    def _create_replicas(self, backend: object, size: int) -> list[Replica]:
        self._context = multiprocessing.get_context(self._start_method)
        with _importable_package_path(self._start_method):
            return [Replica(index, self._new_handle(index)) for index in range(size)]

    def _spawn_backend(self, index: int) -> WorkerHandle:
        """Start one more worker process (the ``resize`` growth hook).

        New workers join with empty plan caches; the shared
        :class:`PlanDirectory` re-ships each compiled plan payload the
        first time the fresh worker is asked about the policy, so growth
        needs no parent-side recompilation.
        """
        with _importable_package_path(self._start_method):
            return self._new_handle(index)

    def _respawn_backend(self, index: int, dead: object) -> WorkerHandle:
        """Spawn a replacement worker and re-publish the corpse's plans.

        The fresh worker re-adopts every plan id the dead worker had
        shipped, straight from the parent-side :class:`PlanDirectory` —
        as manager-independent specs, never as ASTs — so the respawned
        replica serves its destinations immediately and its
        ``ast_compilations`` counter stays 0.  The corpse's cumulative
        phase timings (its own carry plus its last snapshot) are handed
        to the replacement as carry, so the slot's reported phase time
        never resets across restarts.
        """
        carry = dead.timings() if isinstance(dead, ReplicaClient) else None
        with _importable_package_path(self._start_method):
            handle = self._new_handle(index, carry_timings=carry)
        try:
            self._reship(handle, dead)
        except Exception:
            handle.close()  # the replacement died too: reap, then give up
            raise
        return handle

    def _reship(self, handle: ReplicaClient, dead: object) -> None:
        """Re-publish a corpse's adopted plans to its replacement, by id."""
        for plan_id in sorted(getattr(dead, "_shipped", ())):
            payload = self._directory.payload(plan_id)
            if payload is not None:
                handle.adopt(plan_id, *payload)

    @property
    def directory(self) -> PlanDirectory:
        """The shared plan directory (parent-side compile-once registry)."""
        return self._directory

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def shard_timeout(self) -> float | None:
        return self._shard_timeout

    def workers(self) -> list[WorkerHandle]:
        """The worker handles, in replica order."""
        return [replica.backend for replica in self.replicas]

    def worker_reports(self) -> list[dict]:
        """Fresh per-worker stats, fetched through the ordinary lease path.

        Every report carries ``index`` and ``health``; a dead or
        restarting replica is reported as ``{"index", "health", "pid",
        "exit_code", "error"}`` instead of raising through the lease
        path, so introspection keeps working while the pool is healing.
        A worker found dead *by* the probe itself is quarantined as a
        side effect (the ordinary supervision path) and reported in
        whatever state that leaves it.
        """
        reports: list[dict] = []
        index = 0
        while True:
            with self._cv:
                if index >= len(self.replicas):
                    break
                replica = self.replicas[index]
                health = replica.health
            report = None
            if health == HEALTHY:
                try:
                    with self.lease_replica(index) as leased:
                        backend = leased.backend
                        report = dict(backend.ping())
                        report["health"] = HEALTHY
                        report["host"] = getattr(backend, "host", "local")
                        report["transport"] = getattr(backend, "transport_kind", "pipe")
                        report["reconnects"] = getattr(backend, "reconnects", 0)
                        report["heartbeat_misses"] = getattr(
                            backend, "heartbeat_misses", 0
                        )
                except ReplicaFailure:
                    pass  # died under the probe: fall through to a status report
                except RuntimeError:
                    break  # pool closed (or shrank past index) mid-walk
            if report is None:
                with self._cv:
                    if index >= len(self.replicas):
                        break
                    replica = self.replicas[index]
                    backend = replica.backend
                    report = {
                        "health": replica.health,
                        "pid": getattr(backend, "pid", None),
                        "exit_code": replica.exit_code,
                        "error": replica.last_error,
                        "host": getattr(backend, "host", "local"),
                        "transport": getattr(backend, "transport_kind", "pipe"),
                        "reconnects": getattr(backend, "reconnects", 0),
                        "heartbeat_misses": getattr(backend, "heartbeat_misses", 0),
                    }
            report["index"] = index
            reports.append(report)
            index += 1
        return reports

    def _owns_replica(self, replica: Replica) -> bool:
        # Every replica fronts a pool-spawned worker process; all of them
        # are stopped and joined on close, regardless of owns_base (which
        # only governs the parent-side planner backend).
        return True

    def _close_base(self) -> None:
        if self._owns_base:
            closer = getattr(self._directory.planner, "close", None)
            if closer is not None:
                closer()


def parse_host_list(hosts) -> list[tuple[str, int]]:
    """Normalise ``hosts`` (``"HOST:PORT"`` strings or pairs) to tuples."""
    parsed: list[tuple[str, int]] = []
    for entry in hosts:
        if isinstance(entry, str):
            host, sep, port = entry.rpartition(":")
            if not sep or not host:
                raise ValueError(f"host spec {entry!r} must be HOST:PORT")
            parsed.append((host, int(port)))
        else:
            host, port = entry
            parsed.append((str(host), int(port)))
    if not parsed:
        raise ValueError("a remote pool needs at least one HOST:PORT host")
    return parsed


def _addr_str(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


class RemoteBackendPool(ProcessBackendPool):
    """Replicas leased on remote worker hosts over TCP, with host failover.

    Drop-in for :class:`ProcessBackendPool` — the *unchanged*
    lease/affinity/steal protocol of :class:`~repro.service.pool.BackendPool`
    drives :class:`RemoteWorkerHandle` replicas attached round-robin
    across one or more ``HOST:PORT`` host daemons
    (:class:`~repro.service.host.HostServer`).  Plans still compile once
    in the parent's :class:`PlanDirectory` and ship once per (worker,
    plan) as AST-free specs, so remote workers also assert
    ``ast_compilations == 0`` forever, across any number of reconnects.

    Robustness model, layered on the base pool's health machine:

    * **liveness** is wire-driven: host relays emit heartbeats on an
      interval; a monitor thread walks idle replicas and runs
      missed-heartbeat → suspect (count a miss, probe with a short
      ``ping``) → condemn (tear the connection down, quarantine) —
      mirroring PR 7's sentinel-driven state machine for peers no OS
      sentinel can see.  Busy replicas are covered by their request's
      own ``shard_timeout`` and by the condemn-path teardown, which
      wakes the in-flight waiter;
    * **reconnect** (the ``_respawn_backend`` hook, on the pool's usual
      respawn thread) retries with exponential backoff + full jitter,
      preferring the dead replica's home host; a fresh connection
      re-ships the corpse's plan specs, and because the replacement
      lands at the same replica index, destination affinities re-attach
      untouched;
    * **failover**: when the home host stays unreachable, the slot
      re-homes onto a surviving host (counted, traced, and exported as
      ``repro_host_failovers_total``); when *every* remote host is gone
      the slot degrades to a local :class:`WorkerHandle` process
      (``local_fallback=True``), all under the existing
      ``max_attempts``/:class:`~repro.service.pool.PoolUnavailable`
      contract — callers never see a new failure mode.

    Every partition/reconnect/failover lands in the telemetry timeline
    (``heartbeat-missed``, ``host-partition-suspected``,
    ``remote-reconnect``, ``host-failover``, ``remote-local-fallback``)
    and in the metrics registry (``repro_remote_reconnects_total``,
    ``repro_host_failovers_total``).
    """

    mode = "remote"

    def __init__(
        self,
        backend: object,
        hosts,
        size: int | None = None,
        *,
        owns_base: bool = False,
        start_method: str | None = None,
        shard_timeout: float | None = None,
        telemetry: Telemetry | None = None,
        heartbeat_interval: float = 0.2,
        suspect_after: float = 3.0,
        condemn_after: float = 15.0,
        reconnect_attempts: int = 4,
        reconnect_backoff: float = 0.05,
        reconnect_max_backoff: float = 2.0,
        local_fallback: bool = True,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME,
    ):
        self._addresses = parse_host_list(hosts)
        if not self._addresses:
            raise ValueError("remote pool needs at least one HOST:PORT")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if condemn_after <= suspect_after:
            raise ValueError("condemn_after must exceed suspect_after")
        self._heartbeat_interval = heartbeat_interval
        self._suspect_after = suspect_after
        self._condemn_after = condemn_after
        self._reconnect_attempts = max(1, int(reconnect_attempts))
        self._reconnect_backoff = reconnect_backoff
        self._reconnect_max_backoff = reconnect_max_backoff
        self._local_fallback = local_fallback
        self._connect_timeout = connect_timeout
        self._max_frame_bytes = max_frame_bytes
        #: replica index -> the host currently considered its home.
        self._slot_home: dict[int, tuple[str, int]] = {}
        self._failovers = 0
        self._remote_reconnects = 0
        self._local_fallbacks = 0
        self._stop_monitor = threading.Event()
        self._monitor: threading.Thread | None = None
        self._reconnect_counter = None
        self._failover_counter = None
        if telemetry is not None:
            self._reconnect_counter = telemetry.metrics.counter(
                "repro_remote_reconnects_total",
                "Remote replica connections re-established after a failure",
            )
            self._failover_counter = telemetry.metrics.counter(
                "repro_host_failovers_total",
                "Replicas re-homed onto another host (or locally) after host loss",
            )
        if size is None:
            size = 2 * len(self._addresses)
        super().__init__(
            backend,
            size,
            owns_base=owns_base,
            start_method=start_method,
            shard_timeout=shard_timeout,
            telemetry=telemetry,
        )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-remote-monitor", daemon=True
        )
        self._monitor.start()

    # -- attachment ------------------------------------------------------------
    @property
    def hosts(self) -> list[str]:
        """The configured host daemons, as ``HOST:PORT`` strings."""
        return [_addr_str(address) for address in self._addresses]

    def _create_replicas(self, backend: object, size: int) -> list[Replica]:
        # The context exists for the local-fallback path only; remote
        # replicas are attached, not spawned.
        self._context = multiprocessing.get_context(self._start_method)
        return [Replica(index, self._attach_handle(index)) for index in range(size)]

    def _candidate_addresses(self, index: int) -> list[tuple[str, int]]:
        """Connection order for slot ``index``: home host first, then the rest."""
        home = self._slot_home.get(index, self._addresses[index % len(self._addresses)])
        return [home] + [address for address in self._addresses if address != home]

    def _attach_handle(
        self,
        index: int,
        *,
        dead: object | None = None,
        carry_timings: dict | None = None,
    ) -> ReplicaClient | None:
        """Connect slot ``index`` to a host; failover and fall back as needed.

        The construction path (``dead is None``) tries every host once
        and raises :class:`~repro.service.pool.PoolUnavailable` when none
        answers (unless local fallback is on).  The respawn path retries
        for ``reconnect_attempts`` rounds with exponential backoff + full
        jitter between rounds, then falls back locally (when enabled) or
        reports permanent death with ``None``.
        """
        respawn = dead is not None
        candidates = self._candidate_addresses(index)
        home = candidates[0]
        attempts = self._reconnect_attempts if respawn else 1
        reconnects = getattr(dead, "reconnects", 0) + 1 if respawn else 0
        heartbeat_misses = getattr(dead, "heartbeat_misses", 0)
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                cap = min(
                    self._reconnect_max_backoff,
                    self._reconnect_backoff * (2 ** (attempt - 1)),
                )
                time.sleep(random.uniform(0.0, cap))  # full jitter
            for address in candidates:
                try:
                    handle = RemoteWorkerHandle(
                        index,
                        self._directory,
                        address,
                        shard_timeout=self._shard_timeout,
                        telemetry=self._telemetry,
                        carry_timings=carry_timings,
                        reconnects=reconnects,
                        heartbeat_misses=heartbeat_misses,
                        connect_timeout=self._connect_timeout,
                        max_frame_bytes=self._max_frame_bytes,
                    )
                except (TransportError, OSError) as exc:
                    last_error = exc
                    continue
                self._slot_home.setdefault(index, address)
                if respawn:
                    self._note_recovery(index, home, address, handle)
                return handle
        if self._local_fallback:
            with _importable_package_path(self._start_method):
                handle = WorkerHandle(
                    index,
                    self._directory,
                    self._context,
                    shard_timeout=self._shard_timeout,
                    telemetry=self._telemetry,
                    carry_timings=carry_timings,
                )
            self._note_local_fallback(index, home)
            return handle
        if respawn:
            return None  # permanent death: the base pool marks the slot DEAD
        raise PoolUnavailable(
            f"no remote host reachable for replica {index} "
            f"(tried {[_addr_str(a) for a in candidates]}): {last_error}"
        )

    def _note_recovery(
        self,
        index: int,
        home: tuple[str, int],
        address: tuple[str, int],
        handle: RemoteWorkerHandle,
    ) -> None:
        failover = address != home
        with self._cv:
            self._remote_reconnects += 1
            if failover:
                self._failovers += 1
                self._slot_home[index] = address
        if self._reconnect_counter is not None:
            self._reconnect_counter.inc()
        if failover and self._failover_counter is not None:
            self._failover_counter.inc()
        self._trace_mark(
            "host-failover" if failover else "remote-reconnect",
            replica=index,
            origin=_addr_str(home),
            host=handle.host,
            reconnects=handle.reconnects,
        )

    def _note_local_fallback(self, index: int, home: tuple[str, int]) -> None:
        with self._cv:
            self._failovers += 1
            self._local_fallbacks += 1
        if self._failover_counter is not None:
            self._failover_counter.inc()
        self._trace_mark(
            "remote-local-fallback", replica=index, origin=_addr_str(home)
        )

    def _trace_mark(self, name: str, **attrs) -> None:
        """Record a supervision event as a (root) span in the trace tree.

        Reconnect/failover work runs on respawn and monitor threads with
        no current span, where ``tracer.event`` would be dropped — a
        zero-length root span keeps the incident visible in the same
        timeline as the request traffic around it.
        """
        if self._telemetry is None:
            return
        tracer = self._telemetry.tracer
        if not tracer.enabled:
            return
        with tracer.span(name, **attrs):
            pass

    # -- supervision hooks -----------------------------------------------------
    def _spawn_backend(self, index: int) -> ReplicaClient | None:
        try:
            return self._attach_handle(index)
        except PoolUnavailable:
            return None  # resize growth degrades, like the thread pool

    def _respawn_backend(self, index: int, dead: object) -> ReplicaClient | None:
        carry = dead.timings() if isinstance(dead, ReplicaClient) else None
        handle = self._attach_handle(index, dead=dead, carry_timings=carry)
        if handle is None:
            return None
        try:
            self._reship(handle, dead)
        except Exception:
            handle.close()  # the replacement died too: reap, then give up
            raise
        return handle

    def _monitor_loop(self) -> None:
        """Heartbeat watcher: missed-heartbeat → suspect → probe → condemn."""
        interval = self._heartbeat_interval
        while not self._stop_monitor.wait(interval):
            with self._cv:
                if self._closed:
                    return
                snapshot = [
                    replica for replica in self.replicas if replica.health == HEALTHY
                ]
            now = time.monotonic()
            for replica in snapshot:
                handle = replica.backend
                if not isinstance(handle, RemoteWorkerHandle):
                    continue  # local-fallback slots have OS-sentinel supervision
                failure = handle.failure
                if failure is not None:
                    # The receive thread already condemned it; quarantine
                    # an idle corpse now instead of at its next lease.
                    self._condemn_idle(replica, failure)
                    continue
                stale = now - handle.last_heartbeat
                if stale < interval * self._suspect_after:
                    continue
                handle.heartbeat_misses += 1
                self._trace_mark(
                    "heartbeat-missed",
                    replica=replica.index,
                    host=handle.host,
                    stale=round(stale, 3),
                    misses=handle.heartbeat_misses,
                )
                if stale >= interval * self._condemn_after:
                    failure = handle.fail_stale(stale)
                    self._trace_mark(
                        "host-partition-suspected",
                        replica=replica.index,
                        host=handle.host,
                        stale=round(stale, 3),
                    )
                    self._condemn_idle(replica, failure)
                elif not handle.probe(timeout=max(interval * self._suspect_after, 0.5)):
                    self._condemn_idle(
                        replica,
                        handle.failure
                        or ReplicaFailure(
                            f"replica {replica.index} failed its liveness probe",
                            replica=replica.index,
                            kind="transport",
                        ),
                    )

    def _condemn_idle(self, replica: Replica, failure: ReplicaFailure) -> None:
        """Quarantine a condemned replica that no lease is driving.

        A busy replica's in-flight request fails on its own (the condemn
        teardown wakes it) and quarantines through the ordinary lease
        path; quarantining here too would double-count.  The health
        check inside ``_quarantine`` makes the race (lease granted
        between this check and the call) resolve to exactly one winner.
        """
        with self._cv:
            if replica.health != HEALTHY or replica.busy:
                return
        self._quarantine(replica, failure)

    # -- introspection / lifecycle ---------------------------------------------
    def stats(self) -> dict[str, object]:
        stats = super().stats()
        with self._cv:
            stats["hosts_configured"] = self.hosts
            stats["failovers"] = self._failovers
            stats["remote_reconnects"] = self._remote_reconnects
            stats["local_fallbacks"] = self._local_fallbacks
        return stats

    def close(self) -> None:
        self._stop_monitor.set()
        super().close()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)


#: Serialises _importable_package_path: os.environ is process-global, so
#: concurrent spawn-mode pool constructions must not interleave their
#: save/mutate/restore of PYTHONPATH (interleaving could drop the
#: variable mid-start or leak the mutated value permanently).
_ENV_LOCK = threading.Lock()


class _importable_package_path:
    """Make ``repro`` importable in spawned children via ``PYTHONPATH``.

    ``spawn``/``forkserver`` children re-import :func:`worker_main`'s
    module from scratch; when the package is driven from a source tree
    (``PYTHONPATH=src``) rather than installed, the child needs the same
    path.  Temporarily prepending the package root to ``PYTHONPATH``
    around process start covers both layouts.  ``fork`` children inherit
    ``sys.path`` directly, so fork mode touches nothing.  The environment
    mutation is process-global, hence guarded by a module lock for the
    (short) duration of worker start-up.
    """

    def __init__(self, start_method: str):
        self._active = start_method != "fork"

    def __enter__(self) -> None:
        if not self._active:
            return
        import repro

        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        _ENV_LOCK.acquire()
        self._previous = os.environ.get("PYTHONPATH")
        parts = [root] + ([self._previous] if self._previous else [])
        os.environ["PYTHONPATH"] = os.pathsep.join(parts)

    def __exit__(self, *exc) -> None:
        if not self._active:
            return
        try:
            if self._previous is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = self._previous
        finally:
            _ENV_LOCK.release()


__all__ = [
    "PlanDirectory",
    "ProcessBackendPool",
    "RemoteBackendPool",
    "RemoteWorkerHandle",
    "ReplicaClient",
    "WorkerHandle",
    "parse_host_list",
    "worker_main",
]
