"""Cross-client batch coalescing: the admission layer of the streaming server.

The paper's serving advantage is *batch-shaped*: one compiled plan per
destination answers any number of ingress packets as a single multi-RHS
solve, which is why pre-built batch files (PRs 3-5) scale.  Production
traffic is not batch-shaped — it is N independent clients each asking one
question at a time.  This module recovers the batched advantage for
streams: queries are **admitted** as they arrive and held for a short
*admission window* (a few milliseconds); everything admitted within one
window — across *all* clients — is dispatched as one batch through the
session's ordinary pipeline (planner → shards → replica pool), so N
concurrent single queries for one destination become one multi-RHS solve.

Failure semantics, because an admission layer is only as good as its
edges:

* **Backpressure** — the admission queue is bounded (``max_pending``
  outstanding queries).  When it is full, :meth:`BatchCoalescer.submit`
  fails *fast* with :class:`Overloaded` instead of queueing unboundedly;
  the server turns that into a retryable slow-down response.
* **Deadlines** — a query may carry a deadline.  A query whose deadline
  passes before its batch is dispatched, or whose batch completes after
  the deadline, is answered with :class:`DeadlineExceeded` — an explicit
  error to its own client, never a silent drop.
* **Isolation** — a poisoned batch (one query for an unknown destination
  can fail the whole coalesced ``query_batch``) is retried query by
  query, so exactly the bad queries get the error and every innocent
  bystander coalesced into the same window still gets its answer.
* **Classification** — failures are sorted into *retryable* transport
  conditions and *terminal* semantic errors before reaching clients: a
  replica crash or exhausted pool
  (:class:`~repro.service.pool.ReplicaFailure` /
  :class:`~repro.service.pool.PoolUnavailable`) becomes
  :class:`Unavailable` (``retry: true`` — the pool is respawning the
  worker; the same query will succeed), while a genuinely bad query
  keeps its non-retryable error.  Without this split, isolation retries
  would mark *every* error terminal and clients would drop queries the
  pool could have served a moment later.
* **Drain** — :meth:`BatchCoalescer.aclose` refuses new admissions,
  flushes the pending window immediately, and waits for every in-flight
  answer to be delivered, which is what makes server shutdown lossless.

The coalescer runs on the event loop; the actual solves run on the
session's dispatch thread pool (``session.submit_batch``), so admission
latency stays in microseconds while solves proceed in parallel.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

from repro.service.results import Query, QueryResult
from repro.service.telemetry import Telemetry


class QueryRejected(RuntimeError):
    """Base class of per-query admission failures (code + message)."""

    #: Stable machine-readable error code (mirrored in server replies).
    code = "rejected"

    #: Whether the client should retry the same query after backing off.
    retryable = False


class Overloaded(QueryRejected):
    """The bounded admission queue is full: slow down and retry."""

    code = "overloaded"
    retryable = True


class DeadlineExceeded(QueryRejected):
    """The query's deadline passed before its answer could be served."""

    code = "deadline-exceeded"
    retryable = False


class ShuttingDown(QueryRejected):
    """The coalescer is draining for shutdown and admits nothing new."""

    code = "shutting-down"
    retryable = False


class Unavailable(QueryRejected):
    """A backend replica failed mid-query; the pool is healing — retry.

    Raised in place of a raw :class:`~repro.service.pool.ReplicaFailure`
    or :class:`~repro.service.pool.PoolUnavailable` so streamed clients
    see a *retryable* wire error: the crashed worker is being respawned
    and the same query is expected to succeed on the next attempt.
    """

    code = "unavailable"
    retryable = True


def classify_failure(error: BaseException) -> BaseException:
    """Map transport/replica failures to retryable errors, pass the rest.

    The split the wire contract relies on: infrastructure failures
    (replica crashed, watchdog fired, retries exhausted while the pool
    heals) become :class:`Unavailable` (``retry: true``); semantic query
    errors (unknown destination, bad kind) come back unchanged and stay
    terminal — resending those would fail identically.
    """
    from repro.service.pool import PoolUnavailable, ReplicaFailure

    if isinstance(error, (ReplicaFailure, PoolUnavailable)):
        mapped = Unavailable(f"backend replicas temporarily unavailable: {error}")
        mapped.__cause__ = error
        return mapped
    return error


@dataclass(frozen=True)
class CoalescedAnswer:
    """One answered streamed query plus its coalescing provenance.

    ``batch`` is the number of queries dispatched in the same coalesced
    batch — direct per-answer evidence of cross-client coalescing (a
    streamed single query answered with ``batch > 1`` shared its solve).
    """

    result: QueryResult
    batch: int

    @property
    def value(self) -> object:
        return self.result.value


@dataclass
class _Pending:
    """One admitted query waiting in the current window."""

    query: Query
    deadline: float | None
    future: asyncio.Future
    submitted: float


class BatchCoalescer:
    """Admission window + bounded queue over an ``AnalysisSession``.

    Parameters
    ----------
    session:
        The serving session.  Batches are dispatched through its
        ``submit_batch`` (the executor's dispatch pool), so the event
        loop never blocks on a solve.
    window:
        Admission window in seconds (default 4 ms).  The first query
        admitted into an empty window arms a timer; everything submitted
        before it fires joins the same batch.  ``0`` disables coalescing:
        every query dispatches immediately as a batch of one (the
        configuration the benchmark uses as its baseline).
    max_batch:
        Dispatch early once a window has accumulated this many queries,
        bounding both batch latency and per-batch memory.
    max_pending:
        Bound on *outstanding* queries (admitted but unanswered, in the
        window or in flight).  Admissions beyond it fail with
        :class:`Overloaded`.
    clock:
        Monotonic time source (injectable for tests).
    telemetry:
        The serving telemetry hub (normally the session's own, passed
        through by the server).  With tracing on, every admission window
        becomes a ``coalesce-window`` span — per-query ``admitted``
        events, a dispatch event naming why the window closed — and the
        dispatched batch's ``request`` span is parented under it, so the
        exported trace shows exactly which clients shared a solve.
    """

    def __init__(
        self,
        session,
        *,
        window: float = 0.004,
        max_batch: int = 256,
        max_pending: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Telemetry | bool | None = None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._session = session
        self.window = window
        self.max_batch = max_batch
        self.max_pending = max_pending
        self._clock = clock
        self._telemetry = Telemetry.coerce(telemetry)
        self._window_span = None
        metrics = self._telemetry.metrics
        self._m_overloaded = metrics.counter(
            "repro_coalescer_overloaded_total",
            "Admissions refused because the admission queue was full",
        )
        self._m_deadline = metrics.counter(
            "repro_coalescer_deadline_exceeded_total",
            "Queries answered with a deadline error",
        )
        self._m_depth = metrics.gauge(
            "repro_coalescer_depth", "Outstanding admitted-but-unanswered queries"
        )
        self._pending: list[_Pending] = []
        self._timer: asyncio.TimerHandle | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight: set[asyncio.Future] = set()
        self._outstanding = 0
        self._closing = False
        # Stats (monotonic counters; see stats()).
        self._submitted = 0
        self._answered = 0
        self._batches = 0
        self._coalesced = 0
        self._max_batch_seen = 0
        self._deadline_exceeded = 0
        self._overloaded = 0
        self._isolation_retries = 0
        self._unavailable = 0

    # -- admission -------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Outstanding queries: admitted (window + in flight) minus answered."""
        return self._outstanding

    @property
    def closing(self) -> bool:
        return self._closing

    async def submit(self, query: Query, *, deadline: float | None = None) -> CoalescedAnswer:
        """Admit one query and await its answer.

        ``deadline`` is an absolute time on this coalescer's clock
        (``time.monotonic()`` by default).  Raises :class:`Overloaded`,
        :class:`DeadlineExceeded`, or :class:`ShuttingDown` — all carry a
        machine-readable ``code`` the server maps onto wire errors.
        """
        return await self.submit_nowait(query, deadline=deadline)

    def submit_nowait(self, query: Query, *, deadline: float | None = None) -> asyncio.Future:
        """Admit one query; returns the future of its :class:`CoalescedAnswer`.

        Admission itself is synchronous (and cheap): rejections raise
        immediately rather than travelling through the future, so an
        overloaded server answers "slow down" without consuming a slot.
        """
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        self._submitted += 1
        if self._closing:
            raise ShuttingDown("the server is shutting down")
        now = self._clock()
        if deadline is not None and now >= deadline:
            self._deadline_exceeded += 1
            raise DeadlineExceeded("deadline expired before admission")
        if self._outstanding >= self.max_pending:
            self._overloaded += 1
            self._m_overloaded.inc()
            if self._window_span is not None:
                self._window_span.event("overloaded", outstanding=self._outstanding)
            raise Overloaded(
                f"admission queue is full ({self._outstanding} outstanding)"
            )
        future: asyncio.Future = self._loop.create_future()
        if not self._pending and self._telemetry.tracer.enabled:
            # First admission into an empty window roots the window span.
            # Created un-entered: the event loop's ambient context must not
            # leak into unrelated callbacks, so parentage is explicit.
            self._window_span = self._telemetry.tracer.span(
                "coalesce-window", window=self.window, max_batch=self.max_batch
            )
        if self._window_span is not None:
            self._window_span.event("admitted", kind=query.kind, dest=query.dest)
        self._pending.append(_Pending(query, deadline, future, now))
        self._outstanding += 1
        self._m_depth.set(self._outstanding)
        self._track(future)
        if self.window <= 0:
            self._flush(reason="immediate")
        elif len(self._pending) >= self.max_batch:
            self._flush(reason="max-batch")
        elif self._timer is None:
            self._timer = self._loop.call_later(self.window, self._flush)
        return future

    # -- dispatch --------------------------------------------------------------
    def _flush(self, reason: str = "window") -> None:
        """Dispatch the current window as one coalesced batch.

        ``reason`` records why the window closed — its timer expired
        (``"window"``), it filled to ``max_batch`` (``"max-batch"``),
        or coalescing is off (``"immediate"``) — as a span event.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries = self._pending
        self._pending = []
        window_span, self._window_span = self._window_span, None
        if not entries:
            if window_span is not None:
                window_span.finish()
            return
        live: list[_Pending] = []
        now = self._clock()
        for entry in entries:
            if entry.deadline is not None and now >= entry.deadline:
                self._resolve_deadline(entry, "expired while awaiting dispatch")
            else:
                live.append(entry)
        if not live:
            if window_span is not None:
                window_span.set(admitted=len(entries), dispatched=0).finish()
            return
        self._batches += 1
        self._coalesced += len(live)
        self._max_batch_seen = max(self._max_batch_seen, len(live))
        trace_parent = None
        if window_span is not None:
            window_span.event("dispatch", reason=reason, batch=len(live))
            window_span.set(admitted=len(entries), dispatched=len(live))
            trace_parent = window_span.context
            window_span.finish()
        self._dispatch(live, isolate_on_error=True, trace_parent=trace_parent)

    def _dispatch(
        self,
        entries: list[_Pending],
        *,
        isolate_on_error: bool,
        trace_parent: object | None = None,
    ) -> None:
        """Hand ``entries`` to the session's dispatch pool as one batch."""
        try:
            batch = [entry.query for entry in entries]
            if trace_parent is not None:
                handle = self._session.submit_batch(batch, trace_parent=trace_parent)
            else:
                handle = self._session.submit_batch(batch)
        except Exception as exc:  # closing session, executor torn down, ...
            self._fail_all(entries, exc)
            return
        wrapped = asyncio.wrap_future(handle, loop=self._loop)
        wrapped.add_done_callback(
            lambda done: self._deliver(entries, done, isolate_on_error)
        )

    def _deliver(
        self, entries: list[_Pending], done: asyncio.Future, isolate_on_error: bool
    ) -> None:
        """Resolve every entry of a completed (or failed) batch dispatch."""
        error = done.exception()
        if error is not None:
            if isolate_on_error and len(entries) > 1:
                # One poisoned query fails the whole coalesced batch; retry
                # query-by-query so only the culprit sees the error.
                self._isolation_retries += 1
                for entry in entries:
                    self._dispatch([entry], isolate_on_error=False)
            else:
                self._fail_all(entries, error)
            return
        result_set = done.result()
        now = self._clock()
        batch = len(entries)
        for entry, result in zip(entries, result_set.results):
            if entry.future.done():
                continue
            if entry.deadline is not None and now >= entry.deadline:
                self._resolve_deadline(entry, "answer arrived after the deadline")
                continue
            self._outstanding -= 1
            self._answered += 1
            entry.future.set_result(CoalescedAnswer(result, batch))
        self._m_depth.set(self._outstanding)

    def _resolve_deadline(self, entry: _Pending, reason: str) -> None:
        self._deadline_exceeded += 1
        self._m_deadline.inc()
        self._outstanding -= 1
        self._m_depth.set(self._outstanding)
        if not entry.future.done():
            entry.future.set_exception(DeadlineExceeded(reason))

    def _fail_all(self, entries: list[_Pending], error: BaseException) -> None:
        # Classify before delivering: replica/transport failures surface as
        # the retryable Unavailable, so a worker crash that slipped past the
        # session's own retries (or raced the isolation re-dispatch) tells
        # clients to resend rather than to give up.
        mapped = classify_failure(error)
        for entry in entries:
            if not entry.future.done():
                self._outstanding -= 1
                if isinstance(mapped, Unavailable):
                    self._unavailable += 1
                entry.future.set_exception(mapped)
        self._m_depth.set(self._outstanding)

    def _track(self, future: asyncio.Future) -> None:
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        # A client that abandons its await must not crash the loop with an
        # unretrieved-exception warning; rejections were already counted.
        future.add_done_callback(
            lambda done: done.exception() if not done.cancelled() else None
        )

    # -- lifecycle -------------------------------------------------------------
    async def drain(self) -> None:
        """Flush the pending window and wait for every admitted answer."""
        self._flush()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def aclose(self) -> None:
        """Refuse new admissions, then drain (idempotent).

        Every query admitted before the close still gets its reply — the
        lossless-drain half of the server's shutdown contract.
        """
        self._closing = True
        await self.drain()

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Admission counters; ``batch_mean`` is the coalescing headline.

        ``batch_mean`` is the mean number of queries per *dispatched*
        batch — the factor by which the admission window turned streamed
        single queries back into multi-RHS solves.
        """
        batch_mean = self._coalesced / self._batches if self._batches else 0.0
        return {
            "submitted": self._submitted,
            "answered": self._answered,
            "outstanding": self._outstanding,
            "batches": self._batches,
            "coalesced_queries": self._coalesced,
            "batch_mean": batch_mean,
            "batch_max": self._max_batch_seen,
            "deadline_exceeded": self._deadline_exceeded,
            "overloaded": self._overloaded,
            "isolation_retries": self._isolation_retries,
            "unavailable": self._unavailable,
            "window": self.window,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
        }


def coerce_stream_query(message: dict) -> Query:
    """Coerce one wire message (already JSON-decoded) into a :class:`Query`.

    Uses the same ``{"kind", "ingress", "dest"}`` shape as the CLI's
    batch files, so a batch-file line and a streamed line are the same
    query.
    """
    if "ingress" not in message:
        raise ValueError("query message needs an 'ingress' field")
    return Query.coerce(
        {
            "kind": message.get("kind", "delivery"),
            "ingress": message["ingress"],
            "dest": message.get("dest"),
        }
    )


__all__ = [
    "BatchCoalescer",
    "CoalescedAnswer",
    "DeadlineExceeded",
    "Overloaded",
    "QueryRejected",
    "ShuttingDown",
    "Unavailable",
    "classify_failure",
    "coerce_stream_query",
]
