"""The worker-host daemon: remote replicas, spawned and supervised here.

``python -m repro.service host --bind HOST:PORT --workers N`` runs a
:class:`HostServer`: a small TCP daemon that turns this machine into
replica capacity for a :class:`~repro.service.procpool.RemoteBackendPool`
on some other machine.  The paper's scalability claim is near-linear
speedup across *machines*; this is the machine-side half.

Design — one worker process per attached client connection:

* a pool-side :class:`~repro.service.procpool.RemoteWorkerHandle` dials
  in and sends ``("attach", {"replica": i})``; the daemon spawns a fresh
  local worker process (the *same* :func:`~repro.service.procpool.worker_main`
  loop local pools use, fed over a duplex pipe) and answers
  ``("attached", {"pid", "host", "capacity", "workers"})``;
* a per-connection **relay thread** then bridges the two worlds: framed,
  checksummed TCP messages (:class:`~repro.service.transport.SocketTransport`)
  on one side, pipe messages on the other.  The relay multiplexes the
  socket, the worker pipe, and the worker's OS sentinel through one
  ``selectors`` loop, so client requests, worker replies, and worker
  death are all event-driven;
* **heartbeats**: the relay emits ``("heartbeat", seq)`` frames on an
  interval *independently of the worker* — a mid-solve worker keeps the
  wire warm, so the pool's monitor can tell "slow but alive" from
  "host unreachable";
* **local supervision**: a worker that dies gets reported as
  ``("worker-died", exitcode)`` before the connection closes; a client
  that vanishes (or times out and drops the connection on purpose) gets
  its worker killed — a remote watchdog kill is "drop the connection",
  and the daemon guarantees the hung worker is reaped.  Workers whose
  daemon is SIGKILLed self-terminate: their pipe's far end dies with the
  daemon, and ``worker_main`` exits on the resulting ``EOFError``.

Capacity: attachments are spawn-on-demand.  ``--workers N`` advertises
nominal capacity (pools can introspect it via the attach reply); the
optional ``--max-workers`` *hard* cap is off by default on purpose —
host failover deliberately over-subscribes surviving hosts during an
outage, and degraded-but-available beats refused.

Fault injection (chaos testing): the network fault kinds of
``REPRO_FAULTS`` (``partition`` / ``garble`` / ``stall``) are honored
*here*, at the transport relay, below the worker loop — the worker never
sees them.  ``partition@i:ms=M`` blackholes replica ``i``'s connection
(no relaying, no heartbeats, no reads) for M ms; ``garble@i`` sends
exactly one reply frame through
:meth:`~repro.service.transport.SocketTransport.send_corrupted`;
``stall@i:ms=M`` sleeps M ms before each reply frame.  Process fault
kinds (``kill``/``drop``/``delay``) keep working unchanged inside the
spawned workers themselves.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import selectors
import signal
import socket
import sys
import threading
import time

from repro.service.faults import FaultPlan, WorkerFaults
from repro.service.procpool import (
    _importable_package_path,
    _pick_start_method,
    worker_main,
)
from repro.service.transport import (
    DEFAULT_MAX_FRAME,
    SocketTransport,
    TransportClosed,
    TransportError,
)

#: Default heartbeat period (seconds) for host relays.
HEARTBEAT_INTERVAL = 0.2

#: Default ``ms`` for an explicit-duration partition is "indefinite".
_INDEFINITE = float("inf")

#: Serializes worker forks across relay threads.  ``Process.start()``
#: from several threads at once interleaves fork with fd creation in the
#: other spawns, so each child would inherit half-built pipes; one fork
#: at a time keeps every child's fd snapshot coherent.
_SPAWN_LOCK = threading.Lock()


def _worker_entry(connection, index: int, stale_fds) -> None:
    """Worker-process entry: shed inherited daemon fds, then serve.

    A forked worker inherits the daemon's whole fd table: the listener,
    every other connection's socket and pipe, and — fatally — the
    daemon's *own* end of this worker's pipe.  Holding that last fd
    means the pipe can never reach EOF, so a worker orphaned by
    SIGKILLing the daemon would block in ``recv()`` forever instead of
    self-terminating (and keep the listener port bound).  Close them
    all before entering the serve loop.
    """
    keep = connection.fileno()
    for fd in stale_fds:
        if fd == keep:  # pragma: no cover - defensive
            continue
        try:
            os.close(fd)
        except OSError:
            pass
    worker_main(connection, index)


class _ConnectionDone(Exception):
    """Internal: the relay loop is over (client or worker gone)."""


class HostServer:
    """One machine's worth of remotely-leasable worker replicas.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` / :attr:`address` after :meth:`start`).
    workers:
        Advertised nominal capacity (returned in every attach reply).
        Attachment is spawn-on-demand, so this is a sizing hint for
        pools, not a limit.
    max_workers:
        Optional hard cap on concurrently attached workers; beyond it,
        attach requests are refused with ``("error", "at-capacity")``.
        ``None`` (default) = unbounded, so failover from a dead peer
        host can over-subscribe this one instead of failing the batch.
    heartbeat_interval:
        Seconds between ``("heartbeat", seq)`` frames per connection.
    start_method:
        Worker process start method (same default as the local pool).
    max_frame_bytes:
        Per-frame size bound for the TCP transport.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        *,
        max_workers: int | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        start_method: str | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self._host = host
        self._port = port
        self.workers = workers
        self.max_workers = max_workers
        self._heartbeat = heartbeat_interval
        self._max_frame = max_frame_bytes
        self._start_method = _pick_start_method(start_method)
        self._context = multiprocessing.get_context(self._start_method)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._attached = 0
        self._served = 0
        #: Live client transports, so close() can unblock relay threads.
        self._transports: set[SocketTransport] = set()
        #: Parent ends of live worker pipes (fd hygiene for new forks).
        self._pipes: set = set()
        self._threads: list[threading.Thread] = []
        #: One-shot fault state per worker index, shared across
        #: reconnects: a ``garble``/``partition`` that already fired must
        #: not re-arm when the condemned client dials back in, or every
        #: retry of an affinity-pinned shard would hit the same fault.
        self._fault_state: dict[int, WorkerFaults | None] = {}

    # -- lifecycle -------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("host server is not started")
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return (self._host, self.port)

    def start(self) -> "HostServer":
        """Bind, listen, and start accepting attachments (non-blocking)."""
        if self._listener is not None:
            raise RuntimeError("host server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        listener.settimeout(0.25)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-host-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`close` (or a signal handler) stops the server."""
        if self._listener is None:
            self.start()
        self._stop.wait()

    def close(self) -> None:
        """Stop accepting, drop every connection, and reap every worker."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
        with self._lock:
            transports = list(self._transports)
            threads = list(self._threads)
        for transport in transports:
            transport.close()  # unblocks relays parked in recv()
        for thread in threads:
            thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "HostServer":
        return self.start() if self._listener is None else self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accept / relay --------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="repro-host-relay",
                daemon=True,
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        transport = SocketTransport(sock, max_frame_bytes=self._max_frame)
        with self._lock:
            self._transports.add(transport)
        process = None
        conn = None
        try:
            hello = transport.recv(timeout=10.0)
            if not (isinstance(hello, tuple) and hello and hello[0] == "attach"):
                transport.send(("error", f"expected attach, got {hello!r}"))
                return
            info = hello[1] if len(hello) > 1 else {}
            index = int(info.get("replica", 0))
            with self._lock:
                if self.max_workers is not None and self._attached >= self.max_workers:
                    refused = True
                else:
                    refused = False
                    self._attached += 1
                    self._served += 1
            if refused:
                transport.send(("error", "at-capacity"))
                return
            try:
                conn, process = self._spawn_worker(index)
                transport.send(
                    (
                        "attached",
                        {
                            "worker": index,
                            "pid": process.pid,
                            "host": f"{self._host}:{self._port}",
                            "capacity": self.workers,
                            "workers": self._attached,
                        },
                    )
                )
                self._relay(transport, conn, process, self._worker_faults(index))
            finally:
                with self._lock:
                    self._attached -= 1
        except (TransportError, OSError, EOFError, _ConnectionDone):
            pass
        finally:
            with self._lock:
                self._transports.discard(transport)
                if conn is not None:
                    self._pipes.discard(conn)
            transport.close()
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            if process is not None and process.is_alive():
                # The client is gone (or timed out and dropped us on
                # purpose): the worker's state is unreachable, reap it.
                process.kill()
                process.join(timeout=5.0)

    def _worker_faults(self, index: int) -> WorkerFaults | None:
        """The (durable) relay-side fault hooks for worker ``index``.

        Read lazily from ``REPRO_FAULTS`` on first attach, then cached so
        one-shot faults stay fired across that worker's reconnects.
        """
        with self._lock:
            if index not in self._fault_state:
                plan = FaultPlan.from_env()
                self._fault_state[index] = (
                    plan.for_worker(index) if plan is not None else None
                )
            return self._fault_state[index]

    def _spawn_worker(self, index: int):
        """One fresh local worker process, driven over a duplex pipe."""
        with _SPAWN_LOCK:
            conn, child_conn = self._context.Pipe(duplex=True)
            stale_fds: list[int] = []
            if self._start_method == "fork":
                # Everything the fork will drag along that the worker
                # must not hold open (see _worker_entry).
                stale_fds.append(conn.fileno())
                listener = self._listener
                if listener is not None:
                    stale_fds.append(listener.fileno())
                with self._lock:
                    for other in (*self._transports, *self._pipes):
                        try:
                            stale_fds.append(other.fileno())
                        except OSError:  # closed under us: nothing to shed
                            pass
            with _importable_package_path(self._start_method):
                process = self._context.Process(
                    target=_worker_entry,
                    args=(child_conn, index, stale_fds),
                    name=f"repro-host-worker-{index}",
                    daemon=True,
                )
                process.start()
            child_conn.close()
        with self._lock:
            self._pipes.add(conn)
        return conn, process

    def _relay(
        self,
        transport: SocketTransport,
        conn,
        process,
        faults: WorkerFaults | None,
    ) -> None:
        """Bridge socket frames ↔ worker pipe until either side is gone."""
        sel = selectors.DefaultSelector()
        sel.register(transport, selectors.EVENT_READ, "sock")
        sel.register(conn, selectors.EVENT_READ, "pipe")
        sel.register(process.sentinel, selectors.EVENT_READ, "sentinel")
        served = 0
        seq = 0
        next_beat = time.monotonic() + self._heartbeat
        try:
            while not self._stop.is_set():
                now = time.monotonic()
                if now >= next_beat:
                    seq += 1
                    transport.send(("heartbeat", seq))
                    next_beat = now + self._heartbeat
                events = sel.select(timeout=max(0.0, next_beat - now))
                tags = {key.data for key, _ in events}
                if "pipe" in tags:
                    # Worker → client first: a final reply beats its
                    # death notice (the sentinel often fires together
                    # with the reply on a clean stop).
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        self._report_worker_death(transport, process)
                        raise _ConnectionDone
                    served = self._forward_reply(transport, reply, faults, served)
                    # Faults may have blackholed the wire for a while;
                    # resume heartbeats on a fresh schedule.
                    next_beat = min(next_beat, time.monotonic() + self._heartbeat)
                if "sock" in tags:
                    try:
                        message = transport.recv(timeout=10.0)
                    except TransportClosed:
                        raise _ConnectionDone  # client gone: reap the worker
                    conn.send(message)
                if "sentinel" in tags and "pipe" not in tags:
                    if conn.poll(0):
                        continue  # drain the final reply first
                    self._report_worker_death(transport, process)
                    raise _ConnectionDone
        finally:
            sel.close()

    def _forward_reply(
        self,
        transport: SocketTransport,
        reply,
        faults: WorkerFaults | None,
        served: int,
    ) -> int:
        """Send one worker reply to the client, applying network faults."""
        is_result = isinstance(reply, tuple) and reply and reply[0] == "result"
        if is_result:
            served += 1
        if faults is not None and is_result:
            partition = faults.partition_ms(served)
            if partition is not None:
                self._blackhole(transport, partition)
            stall = faults.stall_ms(served)
            if stall:
                time.sleep(stall / 1000.0)
            if faults.garble_reply(served):
                transport.send_corrupted(reply)
                return served
        transport.send(reply)
        return served

    def _blackhole(self, transport: SocketTransport, ms: float) -> None:
        """An injected partition: no relaying, no heartbeats, no reads.

        ``ms == 0`` means indefinite — hold until the client gives up
        and drops the connection (its watchdog/heartbeat monitor will),
        which is exactly what a real blackholed link looks like.  The
        peer socket is only *peeked* (never read) so the partition also
        stops acking at the application layer.
        """
        deadline = _INDEFINITE if ms <= 0 else time.monotonic() + ms / 1000.0
        while not self._stop.is_set():
            if time.monotonic() >= deadline:
                return
            if transport.peer_closed():
                raise _ConnectionDone
            time.sleep(0.05)
        raise _ConnectionDone

    @staticmethod
    def _report_worker_death(transport: SocketTransport, process) -> None:
        process.join(timeout=1.0)
        try:
            transport.send(("worker-died", process.exitcode))
        except TransportError:
            pass  # client is gone too; nothing to notify

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "address": f"{self._host}:{self._port}",
                "capacity": self.workers,
                "attached": self._attached,
                "served": self._served,
            }


def _host_process_main(channel, host, workers, heartbeat_interval, start_method):
    """Entry point of a :func:`start_host_process` child."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # The fork may have come from a multithreaded parent (a test runner,
    # a server) whose sys.stdout/sys.stderr wrappers were snapshotted
    # mid-write — their locks would then be held forever in this child,
    # and the first Process.start() here would deadlock flushing them.
    # Fresh wrappers over the same fds have fresh locks.
    try:
        sys.stdout = os.fdopen(os.dup(1), "w", buffering=1)
        sys.stderr = os.fdopen(os.dup(2), "w", buffering=1)
    except OSError:  # pragma: no cover - fds 1/2 closed: run silent
        sys.stdout = open(os.devnull, "w")
        sys.stderr = open(os.devnull, "w")
    server = HostServer(
        host=host,
        port=0,
        workers=workers,
        heartbeat_interval=heartbeat_interval,
        start_method=start_method,
    )
    server.start()
    signal.signal(signal.SIGTERM, lambda *_: server._stop.set())
    channel.send(server.address)
    channel.close()
    server.serve_forever()
    server.close()


def start_host_process(
    workers: int = 2,
    *,
    host: str = "127.0.0.1",
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
    start_method: str | None = None,
):
    """Spawn a :class:`HostServer` in a real child process.

    Returns ``(process, (host, port))``.  This is the deployment shape
    the chaos suite and ``examples/remote_hosts.py`` exercise — a
    killable daemon whose workers are its own children, so SIGKILLing
    the daemon orphans the workers and they self-terminate on pipe EOF.
    Stop it gracefully with ``process.terminate()`` (SIGTERM) or not at
    all gracefully with ``os.kill(process.pid, signal.SIGKILL)``.
    """
    method = _pick_start_method(start_method)
    context = multiprocessing.get_context(method)
    channel, child_channel = context.Pipe(duplex=False)
    with _importable_package_path(method):
        process = context.Process(
            target=_host_process_main,
            args=(child_channel, host, workers, heartbeat_interval, start_method),
            name="repro-host-daemon",
        )
        process.start()
    child_channel.close()
    if not channel.poll(30.0):
        process.kill()
        process.join(timeout=5.0)
        raise RuntimeError("host daemon did not report its address within 30s")
    address = channel.recv()
    channel.close()
    return process, address


def host_main(argv=None) -> int:
    """``python -m repro.service host``: run one worker-host daemon."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service host",
        description="Serve worker replicas to remote RemoteBackendPools over TCP.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (port 0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, (os.cpu_count() or 2) // 2),
        help="advertised nominal worker capacity (spawn is on-demand)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="hard cap on attached workers (default: unbounded, so "
        "failover from dead peer hosts can over-subscribe this one)",
    )
    parser.add_argument(
        "--heartbeat-ms",
        type=float,
        default=HEARTBEAT_INTERVAL * 1000.0,
        help="heartbeat period per connection, in milliseconds",
    )
    parser.add_argument(
        "--start-method",
        default=None,
        help="worker start method (fork/spawn; default picks like the local pool)",
    )
    args = parser.parse_args(argv)
    host, sep, port = args.bind.rpartition(":")
    if not sep or not host:
        parser.error(f"--bind must be HOST:PORT, got {args.bind!r}")
    server = HostServer(
        host=host,
        port=int(port),
        workers=args.workers,
        max_workers=args.max_workers,
        heartbeat_interval=args.heartbeat_ms / 1000.0,
        start_method=args.start_method,
    )
    server.start()
    print(
        f"repro-host: listening on {server.address[0]}:{server.port} "
        f"(capacity {server.workers}, heartbeat {args.heartbeat_ms:g}ms)",
        flush=True,
    )
    stop = lambda *_: server._stop.set()  # noqa: E731 - tiny signal trampoline
    signal.signal(signal.SIGTERM, stop)
    signal.signal(signal.SIGINT, stop)
    server.serve_forever()
    server.close()
    return 0


__all__ = [
    "HEARTBEAT_INTERVAL",
    "HostServer",
    "host_main",
    "start_host_process",
]
