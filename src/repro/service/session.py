"""Persistent analysis sessions: compile once, serve query streams.

Architecture: the service pipeline is **session → shards → backend**.
An :class:`AnalysisSession` is the long-lived top layer a production
verifier would keep per tenant or per network: it owns *one* backend
instance (and therefore one FDD manager, one set of compiled query
plans, one family of ``splu`` factorizations, and — for the parallel
backend — one persistent worker pool), registers one compiled
:class:`~repro.network.model.NetworkModel` per destination, and answers
arbitrary streams of queries against that compiled state.

A query batch flows through the session as follows:

1. raw queries are coerced to :class:`~repro.service.results.Query`
   values ((ingress, destination) pairs plus a kind);
2. the session's pluggable :class:`~repro.service.shards.ShardPlanner`
   partitions the batch into shards (by destination, by ingress block,
   or round-robin) — validated to be an *exact* partition;
3. the persistent :class:`~repro.service.executor.ShardExecutor` runs
   the shards concurrently; each shard resolves its destination's model
   and asks the shared backend for the batched per-ingress output
   distributions of the shard's slice, consulting the session-wide
   result cache first;
4. per-shard answers are merged back into one
   :class:`~repro.service.results.ResultSet` in the caller's original
   query order, with per-shard timings attached.

The result cache is keyed by the *canonical FDD stages* of the queried
policy (hash-consed diagrams, so semantically equal policies share
entries) plus the concrete ingress packet; repeated or overlapping
batches are answered from memory without touching the solver.

Sessions implement the analysis engine protocol
(``output_distribution`` / ``certainly_delivers``), so every
``repro.analysis`` entry point accepts one via its ``session=``
parameter — or directly as ``backend=`` — and transparently gains the
session's caches.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Mapping, Sequence

from repro.backends import resolve_backend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.interpreter import Outcome
from repro.core.packet import DROP, Packet, _DropType
from repro.network.model import NetworkModel
from repro.service.executor import ShardExecutor
from repro.service.results import (
    Query,
    QueryResult,
    ResultSet,
    ShardReport,
    merge_shard_results,
)
from repro.service.shards import Shard, ShardPlanner, get_planner, validate_partition


class AnalysisSession:
    """A persistent, concurrent analysis engine over compiled network models.

    Parameters
    ----------
    model:
        The session's default network model (also registered under its
        destination).  Optional when ``models`` or ``model_factory``
        supply the destinations instead.
    models:
        Additional pre-built models, registered by their ``dest``.
    model_factory:
        ``dest -> NetworkModel`` builder for destinations not registered
        up front; built models are compiled once and cached.
    backend:
        The shared query engine: a registry name (default ``"matrix"``)
        or a backend instance.  One instance serves every query of the
        session, so compiled plans, factorizations, and worker pools are
        shared across the whole stream.
    planner:
        Default shard planner: a name (``"destination"``, ``"ingress"``,
        ``"round-robin"``, optionally ``"name:arg"``) or a
        :class:`~repro.service.shards.ShardPlanner` instance.
    workers:
        Concurrency of the shard executor (default: CPU count, capped).
        ``1`` executes shards sequentially inline.
    cache:
        Keep the canonical-FDD-keyed result cache (default).  Disable to
        re-solve every query (e.g. for benchmarking the raw solver path).
    """

    def __init__(
        self,
        model: NetworkModel | None = None,
        *,
        models: Iterable[NetworkModel] | Mapping[int, NetworkModel] | None = None,
        model_factory: Callable[[int], NetworkModel] | None = None,
        backend: object | str | None = "matrix",
        planner: ShardPlanner | str | None = None,
        workers: int | None = None,
        cache: bool = True,
    ):
        engine = resolve_backend(backend)
        if engine is None:
            raise ValueError("a session needs a backend (name or instance)")
        if not hasattr(engine, "output_distributions"):
            raise TypeError(
                f"backend {type(engine).__name__} does not support batched "
                "distribution queries; use 'native', 'matrix', or 'parallel'"
            )
        self._backend = engine
        # Registry names instantiate a fresh backend the session owns (and
        # closes); caller-supplied instances stay the caller's to close.
        self._owns_backend = isinstance(backend, str)
        self._planner = get_planner(planner)
        self._executor = ShardExecutor(workers)
        self._model_factory = model_factory
        self._cache_enabled = cache
        self._closed = False
        # One lock serialises raw backend access: backends share one FDD
        # manager and mutate plan/row caches, so they are not thread-safe.
        # Cache lookups, value extraction, and merging run outside it.
        self._lock = threading.RLock()
        # dest -> model; the None key is the session's default model.
        self._models: dict[int | None, NetworkModel] = {}
        # Canonical policy keys: id(policy) -> (policy, key).  The policy
        # is retained so a recycled id cannot alias a different program.
        self._keys: dict[int, tuple[s.Policy, object]] = {}
        # (policy key, ingress packet) -> output distribution.
        self._dists: dict[tuple, Dist[Outcome]] = {}
        # (policy key, "certainly_delivers") -> bool.
        self._verdicts: dict[tuple, bool] = {}
        self._queries_served = 0
        self._batches_served = 0
        self._shards_run = 0

        if model is not None:
            self.add_model(model, default=True)
        if models is not None:
            values = models.values() if isinstance(models, Mapping) else models
            for entry in values:
                self.add_model(entry)
        if not self._models and model_factory is None:
            raise ValueError(
                "a session needs at least one model (model=, models=) or a "
                "model_factory"
            )

    # -- model registry --------------------------------------------------------
    def add_model(self, model: NetworkModel, default: bool = False) -> NetworkModel:
        """Register ``model`` under its destination (optionally as default).

        Only an explicit ``default=True`` (or the constructor's ``model=``
        argument) sets the default model served by ``dest=None`` queries —
        lazily factory-built models never promote themselves, so the
        default cannot depend on which destination happened to be queried
        (or built by a concurrent shard) first.
        """
        self._models[model.dest] = model
        if default:
            self._models[None] = model
        return model

    def model_for(self, dest: int | None = None) -> NetworkModel:
        """The model serving ``dest`` (built via the factory if needed)."""
        found = self._models.get(dest)
        if found is not None:
            return found
        if dest is None:
            raise KeyError(
                "no default model: construct the session with model=, or "
                "add_model(..., default=True), or query explicit destinations"
            )
        if self._model_factory is None:
            known = sorted(k for k in self._models if k is not None)
            raise KeyError(
                f"no model for destination {dest!r} (registered: {known}, "
                f"no model_factory)"
            )
        with self._lock:
            found = self._models.get(dest)
            if found is None:
                found = self.add_model(self._model_factory(dest))
        return found

    @property
    def destinations(self) -> list[int]:
        """The destinations with a registered (already built) model."""
        return sorted(k for k in self._models if k is not None)

    @property
    def backend(self):
        return self._backend

    @property
    def exact(self) -> bool:
        """Whether the underlying backend runs in exact mode."""
        return bool(getattr(self._backend, "exact", False))

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor and the session-owned backend (idempotent).

        A backend *instance* passed by the caller is not closed — shared
        instances may serve other users (the documented shared-backend
        pattern); only backends the session instantiated from a registry
        name are torn down with it.
        """
        self._closed = True
        self._executor.close()
        if self._owns_backend:
            closer = getattr(self._backend, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def clear_cache(self) -> None:
        """Drop the session result cache (and the backend's, if it has one)."""
        with self._lock:
            self._dists.clear()
            self._verdicts.clear()
            clearer = getattr(self._backend, "clear_caches", None)
            if clearer is not None:
                clearer()

    # -- batched query API -----------------------------------------------------
    def query_batch(
        self,
        queries: Iterable[Query | Mapping | tuple],
        planner: ShardPlanner | str | None = None,
    ) -> ResultSet:
        """Answer a batch of queries, sharded and executed concurrently.

        Returns a :class:`~repro.service.results.ResultSet` in the
        original query order with per-shard timing reports attached.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        batch = [Query.coerce(raw) for raw in queries]
        start = time.perf_counter()
        chosen = get_planner(planner) if planner is not None else self._planner
        shards = chosen.plan(batch)
        validate_partition(batch, shards)
        outputs = self._executor.map(self._run_shard, shards)
        result = merge_shard_results(batch, outputs, time.perf_counter() - start)
        with self._lock:
            self._queries_served += len(batch)
            self._batches_served += 1
            self._shards_run += len(shards)
        return result

    def query(self, kind: str, ingress, dest: int | None = None):
        """Answer one query and return its bare value.

        ``session.query("delivery", (sw, pt), dest)`` is the scalar
        convenience over :meth:`query_batch`.
        """
        q = Query.coerce({"kind": kind, "ingress": ingress, "dest": dest})
        return self.query_batch([q]).results[0].value

    def delivery_probabilities(self, dest: int | None = None) -> dict[Packet, float]:
        """Per-ingress delivery probability of one destination's model."""
        model = self.model_for(dest)
        batch = [Query("delivery", packet, dest) for packet in model.ingress_packets]
        results = self.query_batch(batch)
        return {res.query.ingress: res.value for res in results}

    def resilience_sweep(
        self,
        model_factory: Callable[[str, int | None], NetworkModel],
        schemes: Sequence[str],
        failure_bounds: Sequence[int | None],
    ) -> dict[str, dict[int | None, bool]]:
        """A Figure 11(b)-style sweep served by this session's backend.

        ``model_factory(scheme, k)`` builds each configuration; verdicts
        are cached by canonical policy key, so overlapping sweeps reuse
        earlier answers.
        """
        return {
            scheme: {
                bound: self.certainly_delivers(model_factory(scheme, bound))
                for bound in failure_bounds
            }
            for scheme in schemes
        }

    # -- engine protocol (usable as backend=/session= in repro.analysis) --------
    def output_distribution(
        self, policy: s.Policy | NetworkModel, inputs: Packet | Dist | Iterable[Packet]
    ) -> Dist[Outcome]:
        """Output distribution on a packet, a distribution, or an ingress set.

        Same contract as the backends' ``output_distribution``, but
        answered through the session cache.
        """
        if isinstance(policy, NetworkModel):
            policy = policy.policy
        if isinstance(inputs, Packet):
            weighted: list[tuple[Outcome, object]] = [(inputs, 1)]
        elif isinstance(inputs, Dist):
            weighted = list(inputs.items())
        else:
            packets = list(inputs)
            if not packets:
                raise ValueError("cannot build a uniform distribution over no outcomes")
            share = s.as_prob(1) / len(packets)
            weighted = [(packet, share) for packet in packets]
        proper = [pk for pk, _ in weighted if not isinstance(pk, _DropType)]
        dists, _hits = self._distributions(policy, proper)
        parts: list[tuple[Dist[Outcome], object]] = []
        for outcome, mass in weighted:
            if isinstance(outcome, _DropType):
                parts.append((Dist.point(DROP), mass))
            else:
                parts.append((dists[outcome], mass))
        return Dist.convex(parts, check=False)

    def output_distributions(
        self, policy: s.Policy | NetworkModel, inputs: Iterable[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Per-ingress output distributions, through the session cache."""
        if isinstance(policy, NetworkModel):
            policy = policy.policy
        dists, _hits = self._distributions(policy, list(inputs))
        return dists

    def certainly_delivers(self, model: NetworkModel) -> bool:
        """Whether every ingress of ``model`` delivers with probability one.

        Delegates to the session backend (structural analysis for the
        native family, batched numerical check for the matrix backend);
        verdicts are cached by canonical policy key.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        key = (self._policy_key(model.policy), "certainly_delivers")
        cached = self._verdicts.get(key)
        if cached is None:
            with self._lock:
                cached = self._verdicts.get(key)
                if cached is None:
                    cached = bool(self._backend.certainly_delivers(model))
                    self._verdicts[key] = cached
        return cached

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Serving counters plus the backend's accumulated phase timings."""
        timings = getattr(self._backend, "timings", None)
        return {
            "queries": self._queries_served,
            "batches": self._batches_served,
            "shards": self._shards_run,
            "cached_distributions": len(self._dists),
            "destinations": self.destinations,
            "backend": type(self._backend).__name__,
            "backend_timings": dict(timings()) if timings is not None else {},
        }

    def warm(self, dest: int | None = None) -> "AnalysisSession":
        """Pre-solve one destination's model for its full ingress set.

        After warming, any batch over that destination's ingress packets
        is answered from the session cache (the matrix backend performs
        one batched factorization here; see ``MatrixBackend.warm``).
        """
        model = self.model_for(dest)
        self._distributions(model.policy, model.ingress_packets)
        return self

    # -- internals -------------------------------------------------------------
    def _run_shard(self, shard: Shard) -> tuple[ShardReport, list[QueryResult]]:
        start = time.perf_counter()
        results: list[QueryResult] = []
        hits_total = 0
        groups: dict[int | None, list[Query]] = {}
        for query in shard.queries:
            groups.setdefault(query.dest, []).append(query)
        for dest, group in groups.items():
            model = self.model_for(dest)
            dists, hits = self._distributions(
                model.policy, [query.ingress for query in group]
            )
            for query in group:
                cached = query.ingress in hits
                hits_total += 1 if cached else 0
                value = self._evaluate(query, model, dists[query.ingress])
                results.append(QueryResult(query, value, shard.index, cached))
        report = ShardReport(
            index=shard.index,
            label=shard.label,
            queries=len(shard.queries),
            seconds=time.perf_counter() - start,
            cache_hits=hits_total,
        )
        return report, results

    def _evaluate(self, query: Query, model: NetworkModel, dist: Dist[Outcome]):
        # The value logic is shared with repro.analysis.queries (imported
        # lazily: repro.analysis re-exports this class, also lazily), so
        # session answers cannot drift from the per-call entry points.
        from repro.analysis.queries import _is_delivered

        if query.kind == "delivery":
            delivered = model.delivered
            return float(dist.prob_of(lambda out: _is_delivered(out, delivered)))
        if query.kind == "distribution":
            return dist
        if query.kind == "hops":
            hops_field = model.hops_field
            if hops_field is None:
                raise ValueError(
                    "hop-count queries need a model built with count_hops=True"
                )
            # Same semantics as analysis.latency.expected_hop_count: only
            # delivered outcomes carrying a hop value contribute mass.
            total = 0.0
            mass = 0.0
            for outcome, prob in dist.items():
                if isinstance(outcome, _DropType) or outcome.get("sw") != model.dest:
                    continue
                hops = outcome.get(hops_field)
                if hops is None:
                    continue
                total += float(prob) * float(hops)
                mass += float(prob)
            if mass == 0.0:
                raise ZeroDivisionError(
                    "no traffic is delivered; expected hop count undefined"
                )
            return total / mass
        raise ValueError(f"unknown query kind {query.kind!r}")

    def _distributions(
        self, policy: s.Policy, packets: Sequence[Packet]
    ) -> tuple[dict[Packet, Dist[Outcome]], set[Packet]]:
        """Per-ingress distributions of ``policy``, via the session cache.

        Returns ``(dists, hits)`` where ``hits`` are the packets answered
        from the cache.  Misses are computed in one batched backend call
        under the session lock.
        """
        if self._closed:
            # Every query surface funnels through here (query_batch via
            # _run_shard, the engine protocol, warm), so a closed session
            # cannot silently restart backend resources close() released.
            raise RuntimeError("session is closed")
        base = self._policy_key(policy)
        if not self._cache_enabled:
            with self._lock:
                return dict(self._backend.output_distributions(policy, packets)), set()
        cache = self._dists
        out: dict[Packet, Dist[Outcome]] = {}
        hits: set[Packet] = set()
        misses: list[Packet] = []
        for packet in packets:
            found = cache.get((base, packet))
            if found is None:
                if packet not in out:
                    misses.append(packet)
                    out[packet] = None  # type: ignore[assignment]
            else:
                out[packet] = found
                hits.add(packet)
        if misses:
            with self._lock:
                still = [pk for pk in misses if (base, pk) not in cache]
                if still:
                    computed = self._backend.output_distributions(policy, still)
                    for packet, dist in computed.items():
                        cache[(base, packet)] = dist
                # Read back while still holding the lock: clear_cache()
                # also locks, so a concurrent clear cannot empty the cache
                # between the compute and this read.
                for packet in misses:
                    out[packet] = cache[(base, packet)]
        return out, hits

    def _policy_key(self, policy: s.Policy) -> object:
        """A cache key for ``policy``: canonical FDD stages when available.

        With a plan-capable backend (the matrix backend) the key is the
        tuple of the policy's compiled stage FDDs — hash-consed nodes, so
        semantically equal policies share one key.  Other backends fall
        back to object identity (the policy is retained so its id cannot
        be recycled).
        """
        entry = self._keys.get(id(policy))
        if entry is not None and entry[0] is policy:
            return entry[1]
        with self._lock:
            entry = self._keys.get(id(policy))
            if entry is not None and entry[0] is policy:
                return entry[1]
            plan_fn = getattr(self._backend, "plan", None)
            if plan_fn is not None:
                stages = []
                for stage in plan_fn(policy).stages:
                    body_fdd = getattr(stage, "body_fdd", None)
                    if body_fdd is not None:
                        stages.append(("loop", stage.guard_fdd, body_fdd))
                    else:
                        stages.append(("fdd", stage.fdd))
                key: object = ("fdd-stages", tuple(stages))
            else:
                key = ("policy-id", id(policy))
            self._keys[id(policy)] = (policy, key)
            return key


__all__ = ["AnalysisSession"]
