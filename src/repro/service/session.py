"""Persistent analysis sessions: compile once, serve query streams.

Architecture: the service pipeline is **session → shards → pool →
backend**.  An :class:`AnalysisSession` is the long-lived top layer a
production verifier would keep per tenant or per network: it owns a
:class:`~repro.service.pool.BackendPool` of one or more independent
backend replicas (each with its own FDD manager, compiled query plans,
and family of ``splu`` factorizations — sharing only the immutable
compiled-plan spec store), registers one compiled
:class:`~repro.network.model.NetworkModel` per destination, and answers
arbitrary streams of queries against that compiled state.

A query batch flows through the session as follows:

1. raw queries are coerced to :class:`~repro.service.results.Query`
   values ((ingress, destination) pairs plus a kind);
2. the session's pluggable :class:`~repro.service.shards.ShardPlanner`
   partitions the batch into shards (by destination, by ingress block,
   or round-robin) — validated to be an *exact* partition — and tags
   each shard with an affinity hint;
3. the persistent :class:`~repro.service.executor.ShardExecutor` runs
   the shards concurrently; each shard consults the session-wide result
   cache first and, on a miss, **leases one backend replica** from the
   pool (affinity-routed: shards of one destination stick to the replica
   already holding that destination's factorizations) and solves the
   missing slice against it — shards on different replicas share no
   solver state and therefore run genuinely in parallel (with
   ``pool_mode="process"`` each replica lives in its own worker process
   fed by spec shipping, so even the GIL-bound phases overlap);
4. per-shard answers are merged back into one
   :class:`~repro.service.results.ResultSet` in the caller's original
   query order, with per-shard timings (including the serving replica
   and wall-clock start/finish stamps) attached.

Concurrency model: there is **no session-wide solver lock**.  Raw
backend access is serialised *per replica* by the pool's exclusive
leases; the only session-scoped lock is a short state lock guarding the
result cache, the model registry, and the serving counters (see
:mod:`repro.service.pool` for the full lock hierarchy).  The result
cache is keyed by the *canonical stage specs* of the queried policy —
manager-independent serializations of the compiled FDD stages — so
semantically equal policies share entries even when they were compiled
by different replicas, and a hit computed on replica A is served to a
shard headed for replica B without touching either solver.

Sessions implement the analysis engine protocol
(``output_distribution`` / ``certainly_delivers``), so every
``repro.analysis`` entry point accepts one via its ``session=``
parameter — or directly as ``backend=`` — and transparently gains the
session's caches.

Fault tolerance: queries are **pure** — a shard that died with its
replica can be re-run verbatim on a healthy one — so every leased solve
is wrapped in a bounded retry loop (``max_attempts``, default 2).  A
:class:`~repro.service.pool.ReplicaFailure` raised under a lease
quarantines and respawns the replica (see :mod:`repro.service.pool`)
while this session immediately re-leases and re-solves; callers only
ever see an error once retries are exhausted, and then the *typed*
:class:`~repro.service.pool.PoolUnavailable` rather than a replica
corpse's stack trace.  The streaming front end maps that type to the
retryable ``unavailable`` wire error.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from functools import partial
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.backends import resolve_backend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.interpreter import Outcome
from repro.core.packet import DROP, Packet, _DropType
from repro.network.model import NetworkModel
from repro.service.executor import ShardExecutor
from repro.service.pool import (
    BackendPool,
    PoolUnavailable,
    Replica,
    ReplicaFailure,
)
from repro.service.results import (
    Query,
    QueryResult,
    ResultSet,
    ShardReport,
    merge_shard_results,
)
from repro.service.shards import Shard, ShardPlanner, get_planner, validate_partition
from repro.service.telemetry import LATENCY_BUCKETS, SIZE_BUCKETS, Telemetry


class AnalysisSession:
    """A persistent, concurrent analysis engine over compiled network models.

    Parameters
    ----------
    model:
        The session's default network model (also registered under its
        destination).  Optional when ``models`` or ``model_factory``
        supply the destinations instead.
    models:
        Additional pre-built models, registered by their ``dest``.
    model_factory:
        ``dest -> NetworkModel`` builder for destinations not registered
        up front; built models are compiled once and cached.
    backend:
        The base query engine: a registry name (default ``"matrix"``) or
        a backend instance.  In thread mode it becomes replica 0 of the
        session's backend pool (additional replicas are forked from it);
        in process mode it stays in the parent as the planner backend
        that compiles policies once and ships their specs to workers.
    pool_size:
        Number of independent backend replicas (default 1; in remote
        mode the default is two replicas per host).  With N > 1
        the backend must support ``fork()`` (the matrix backend does);
        backends that cannot fork degrade to a single replica, which
        behaves exactly like the historical one-backend session.
    pool_mode:
        ``"thread"`` (default) hosts replicas in this process — they
        parallelise wherever the work releases the GIL (``splu``).
        ``"process"`` hosts each replica in its own worker process
        (:class:`~repro.service.procpool.ProcessBackendPool`): plans ship
        as manager-independent specs and *every* phase — plan rebuild,
        matrix assembly, factorization, solve — runs outside the
        parent's GIL, at the price of per-query IPC and per-worker
        memory.  Requires a spec-shipping backend (matrix).
        ``"remote"`` leases replicas on worker-host daemons over TCP
        (:class:`~repro.service.procpool.RemoteBackendPool`): same
        lease/affinity/steal protocol, same spec shipping, plus
        heartbeat-based partition detection, reconnect with backoff,
        and host-level failover.  Requires ``hosts``.
    hosts:
        Remote mode only: the worker-host daemons to lease replicas on,
        as ``"HOST:PORT"`` strings (start daemons with ``python -m
        repro.service host --bind HOST:PORT``).
    remote_options:
        Remote mode only: extra keyword arguments forwarded to
        :class:`~repro.service.procpool.RemoteBackendPool` (heartbeat
        cadence, reconnect backoff, ``local_fallback``, ...).
    planner:
        Default shard planner: a name (``"destination"``, ``"ingress"``,
        ``"round-robin"``, optionally ``"name:arg"``) or a
        :class:`~repro.service.shards.ShardPlanner` instance.
    workers:
        Concurrency of the shard executor (default: CPU count, capped).
        ``1`` executes shards sequentially inline.  For true parallel
        serving use ``workers >= pool_size`` so every replica can be
        driven simultaneously.
    cache:
        Keep the canonical-spec-keyed result cache (default).  Disable to
        re-solve every query (e.g. for benchmarking the raw solver path).
    shard_timeout:
        Per-shard wall-clock watchdog in seconds (process mode only): a
        worker that does not answer a shard within the budget is killed,
        respawned, and the shard retried on a healthy replica.  ``None``
        (default) disables the watchdog; thread-mode replicas share the
        session process and cannot be killed independently, so the value
        is ignored there.
    max_attempts:
        How many replicas a shard may be attempted on before the query
        fails with :class:`~repro.service.pool.PoolUnavailable`
        (default 2: the original attempt plus one retry).  Queries are
        pure, so retrying on a healthy replica is always sound.
    telemetry:
        Observability configuration: a
        :class:`~repro.service.telemetry.Telemetry` instance, ``True``
        (tracing on at full sampling), or ``None``/``False`` (the
        default — metrics counters still work, tracing fully disabled).
        With tracing on, every batch becomes one span tree — ``request →
        shard → lease → worker:query → phase:*`` — spanning the process
        boundary in process mode (worker-side spans ship back in reply
        stats and are re-parented into the caller's trace).
    """

    def __init__(
        self,
        model: NetworkModel | None = None,
        *,
        models: Iterable[NetworkModel] | Mapping[int, NetworkModel] | None = None,
        model_factory: Callable[[int], NetworkModel] | None = None,
        backend: object | str | None = "matrix",
        pool_size: int | None = None,
        pool_mode: str = "thread",
        hosts: Iterable[str] | None = None,
        remote_options: Mapping[str, object] | None = None,
        planner: ShardPlanner | str | None = None,
        workers: int | None = None,
        cache: bool = True,
        shard_timeout: float | None = None,
        max_attempts: int = 2,
        telemetry: Telemetry | bool | None = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._telemetry = Telemetry.coerce(telemetry)
        metrics = self._telemetry.metrics
        self._m_requests = metrics.counter(
            "repro_requests_total", "Query batches served by the session"
        )
        self._m_queries = metrics.counter(
            "repro_queries_total", "Individual queries answered"
        )
        self._m_cache_hits = metrics.counter(
            "repro_cache_hits_total", "Queries answered from the session result cache"
        )
        self._m_retries = metrics.counter(
            "repro_shard_retries_total",
            "Shard attempts transparently retried after a replica failure",
        )
        self._m_latency = metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end query batch latency",
            buckets=LATENCY_BUCKETS,
        )
        self._m_batch_size = metrics.histogram(
            "repro_batch_size", "Queries per served batch", buckets=SIZE_BUCKETS
        )
        self._m_phase = metrics.gauge(
            "repro_backend_phase_seconds",
            "Cumulative backend phase time summed over all replicas",
            labelnames=("phase",),
        )
        self._m_cached = metrics.gauge(
            "repro_cached_distributions", "Entries in the session result cache"
        )
        self._m_pool = metrics.gauge(
            "repro_pool_size", "Current number of backend replicas"
        )
        engine = resolve_backend(backend)
        if engine is None:
            raise ValueError("a session needs a backend (name or instance)")
        if not hasattr(engine, "output_distributions"):
            raise TypeError(
                f"backend {type(engine).__name__} does not support batched "
                "distribution queries; use 'native', 'matrix', or 'parallel'"
            )
        self._backend = engine
        # Registry names instantiate a fresh backend the session owns (and
        # closes); caller-supplied instances stay the caller's to close.
        # Forked replicas and worker processes are always pool-owned.
        self._owns_backend = isinstance(backend, str)
        if pool_mode == "thread":
            self._pool = BackendPool(
                engine,
                1 if pool_size is None else pool_size,
                owns_base=self._owns_backend,
                telemetry=self._telemetry,
            )
        elif pool_mode == "process":
            from repro.service.procpool import ProcessBackendPool

            self._pool = ProcessBackendPool(
                engine,
                1 if pool_size is None else pool_size,
                owns_base=self._owns_backend,
                shard_timeout=shard_timeout,
                telemetry=self._telemetry,
            )
        elif pool_mode == "remote":
            from repro.service.procpool import RemoteBackendPool

            if not hosts:
                raise ValueError(
                    "pool_mode='remote' needs hosts=['HOST:PORT', ...] "
                    "(start them with `python -m repro.service host`)"
                )
            self._pool = RemoteBackendPool(
                engine,
                list(hosts),
                pool_size,
                owns_base=self._owns_backend,
                shard_timeout=shard_timeout,
                telemetry=self._telemetry,
                **dict(remote_options or {}),
            )
        else:
            raise ValueError(
                f"unknown pool_mode {pool_mode!r}; expected 'thread', "
                "'process', or 'remote'"
            )
        self._planner = get_planner(planner)
        self._executor = ShardExecutor(workers)
        self._model_factory = model_factory
        self._cache_enabled = cache
        self._closed = False
        self._closing = False
        # The only session-scoped lock: a short state lock for the result
        # cache, the model registry, and the counters.  Raw backend access
        # is serialised per replica by the pool's leases instead — shards
        # leasing different replicas run genuinely in parallel.  The state
        # lock may be taken while holding a replica lease, never the other
        # way around (see repro.service.pool for the lock hierarchy).
        self._state_lock = threading.RLock()
        # In-flight public calls (batches + engine-protocol calls).  close()
        # waits for this to reach zero before tearing anything down, which
        # makes teardown deterministic even for inline (workers=1) execution
        # the executor cannot drain for us.
        self._active_calls = 0
        self._idle = threading.Condition(self._state_lock)
        # dest -> model; the None key is the session's default model.
        self._models: dict[int | None, NetworkModel] = {}
        # Canonical policy keys: id(policy) -> (policy, key).  The policy
        # is retained so a recycled id cannot alias a different program.
        self._keys: dict[int, tuple[s.Policy, object]] = {}
        # (policy key, ingress packet) -> output distribution.
        self._dists: dict[tuple, Dist[Outcome]] = {}
        # (policy key, "certainly_delivers") -> bool.
        self._verdicts: dict[tuple, bool] = {}
        self._max_attempts = max_attempts
        self._queries_served = 0
        self._batches_served = 0
        self._shards_run = 0
        self._shard_retries = 0

        if model is not None:
            self.add_model(model, default=True)
        if models is not None:
            values = models.values() if isinstance(models, Mapping) else models
            for entry in values:
                self.add_model(entry)
        if not self._models and model_factory is None:
            raise ValueError(
                "a session needs at least one model (model=, models=) or a "
                "model_factory"
            )

    # -- model registry --------------------------------------------------------
    def add_model(self, model: NetworkModel, default: bool = False) -> NetworkModel:
        """Register ``model`` under its destination (optionally as default).

        Only an explicit ``default=True`` (or the constructor's ``model=``
        argument) sets the default model served by ``dest=None`` queries —
        lazily factory-built models never promote themselves, so the
        default cannot depend on which destination happened to be queried
        (or built by a concurrent shard) first.
        """
        self._models[model.dest] = model
        if default:
            self._models[None] = model
        return model

    def model_for(self, dest: int | None = None) -> NetworkModel:
        """The model serving ``dest`` (built via the factory if needed)."""
        found = self._models.get(dest)
        if found is not None:
            return found
        if dest is None:
            raise KeyError(
                "no default model: construct the session with model=, or "
                "add_model(..., default=True), or query explicit destinations"
            )
        if self._model_factory is None:
            known = sorted(k for k in self._models if k is not None)
            raise KeyError(
                f"no model for destination {dest!r} (registered: {known}, "
                f"no model_factory)"
            )
        with self._state_lock:
            found = self._models.get(dest)
            if found is None:
                found = self.add_model(self._model_factory(dest))
        return found

    @property
    def destinations(self) -> list[int]:
        """The destinations with a registered (already built) model."""
        return sorted(k for k in self._models if k is not None)

    @property
    def backend(self):
        """The base backend (replica 0 of the session's pool)."""
        return self._backend

    @property
    def pool(self) -> BackendPool:
        """The session's backend replica pool."""
        return self._pool

    @property
    def pool_mode(self) -> str:
        """How replicas are hosted: ``"thread"`` or ``"process"``."""
        return self._pool.mode

    @property
    def pool_size(self) -> int:
        """The current number of backend replicas (autoscaling changes it)."""
        return self._pool.size

    def resize_pool(self, size: int) -> int:
        """Grow or shrink the replica pool to ``size``; returns the new size.

        Delegates to :meth:`~repro.service.pool.BackendPool.resize`:
        growth is immediate, shrinking waits for the retired replicas'
        in-flight leases to finish.  This is the knob the streaming
        server's queue-depth autoscaler turns; it counts as an in-flight
        call for :meth:`close`'s drain, so teardown and resizing cannot
        interleave.  Note the shard executor's ``workers`` bound is fixed
        at construction: to let an autoscaler drive ``N`` replicas
        concurrently, construct the session with ``workers >= N``.
        """
        with self._serving():
            return self._pool.resize(size)

    @property
    def exact(self) -> bool:
        """Whether the underlying backend runs in exact mode."""
        return bool(getattr(self._backend, "exact", False))

    @property
    def telemetry(self) -> Telemetry:
        """The session's telemetry hub (tracer + metrics registry)."""
        return self._telemetry

    @property
    def retried_shards(self) -> int:
        """How many shard attempts were transparently retried after a
        replica failure (each one a crash the caller never saw)."""
        return self._shard_retries

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Drain in-flight work, then shut down the executor and the pool.

        Teardown is deterministic in both pool modes, in three ordered
        steps: (1) the session starts *closing* — every public query
        surface refuses new work, but shards already in flight keep full
        access to the caches and the pool; (2) the executor is drained
        (``shutdown(wait=True)`` runs every submitted shard to
        completion, so a ``query_batch`` racing ``close()`` returns its
        complete :class:`ResultSet` instead of dying mid-batch); (3) the
        session is marked closed and the pool is torn down — which itself
        waits out any lease still held by an engine-protocol call before
        closing backends (and, in process mode, stopping and joining
        every worker).

        A backend *instance* passed by the caller is not closed — shared
        instances may serve other users (the documented shared-backend
        pattern); only replica 0 instantiated from a registry name, plus
        every forked replica and every worker process (always
        pool-owned), are torn down.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closing = True
            # Drain: every in-flight query_batch / engine-protocol call
            # entered before _closing flipped runs to completion (inline
            # execution included — the executor cannot drain that for us).
            while self._active_calls:
                self._idle.wait()
        self._executor.close()
        self._closed = True
        self._pool.close()

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def clear_cache(self, keep_plans: bool = False) -> None:
        """Drop the session result cache and every replica's backend caches.

        With ``keep_plans`` the replicas keep their compiled plans and
        only reset solver state (loop factorizations and row/solution
        caches) — the cheap way to bound memory, or to re-measure the
        solver path, without recompiling anything.
        """
        with self._state_lock:
            self._dists.clear()
            self._verdicts.clear()
        # Replica caches are cleared under their own leases — never while
        # holding the state lock (lease > state lock in the hierarchy).
        self._pool.clear_caches(keep_plans=keep_plans)

    # -- batched query API -----------------------------------------------------
    def query_batch(
        self,
        queries: Iterable[Query | Mapping | tuple],
        planner: ShardPlanner | str | None = None,
        *,
        trace_parent: object | None = None,
    ) -> ResultSet:
        """Answer a batch of queries, sharded and executed concurrently.

        Returns a :class:`~repro.service.results.ResultSet` in the
        original query order with per-shard timing reports attached.
        ``trace_parent`` (a span, span context, or wire tuple) parents
        the batch's ``request`` span under an enclosing trace — the
        coalescer passes its window span here so coalesced batches keep
        their admission history.
        """
        with self._serving():
            batch = [Query.coerce(raw) for raw in queries]
            start = time.perf_counter()
            chosen = get_planner(planner) if planner is not None else self._planner
            tracer = self._telemetry.tracer
            with tracer.span(
                "request", parent=trace_parent, queries=len(batch)
            ) as span:
                shards = chosen.plan(batch)
                validate_partition(batch, shards)
                context = span.context
                runner = (
                    self._run_shard
                    if context is None
                    else partial(self._run_shard, trace_parent=context)
                )
                outputs = self._executor.map(runner, shards)
                result = merge_shard_results(
                    batch, outputs, time.perf_counter() - start
                )
                span.set(
                    shards=len(shards),
                    cache_hits=result.cache_hits,
                    seconds=round(result.seconds, 6),
                )
            with self._state_lock:
                self._queries_served += len(batch)
                self._batches_served += 1
                self._shards_run += len(shards)
            self._m_requests.inc()
            self._m_queries.inc(len(batch))
            self._m_cache_hits.inc(result.cache_hits)
            self._m_latency.observe(result.seconds)
            self._m_batch_size.observe(len(batch))
            return result

    def submit_batch(
        self,
        queries: Iterable[Query | Mapping | tuple],
        planner: ShardPlanner | str | None = None,
        *,
        trace_parent: object | None = None,
    ):
        """Dispatch a batch asynchronously; returns a ``Future[ResultSet]``.

        The batch is handed to the executor's dispatch pool (distinct
        from the shard workers — see
        :meth:`~repro.service.executor.ShardExecutor.submit` for why)
        and runs exactly like :meth:`query_batch`, including the
        closing-session refusal, which then surfaces as the future's
        exception.  This is the submission surface the asyncio streaming
        front end (:mod:`repro.service.server`) coalesces queries onto.
        """
        batch = list(queries)
        with self._state_lock:
            self._check_open()
        if trace_parent is None:
            return self._executor.submit(self.query_batch, batch, planner)
        # The dispatch thread has no ambient span context, so the parent
        # rides along explicitly (submit passes positionals only).
        bound = partial(self.query_batch, trace_parent=trace_parent)
        return self._executor.submit(bound, batch, planner)

    async def query_batch_async(
        self,
        queries: Iterable[Query | Mapping | tuple],
        planner: ShardPlanner | str | None = None,
    ) -> ResultSet:
        """Awaitable :meth:`query_batch` for asyncio callers.

        The solve runs on the session's dispatch pool; the awaiting
        coroutine (and its event loop) stays free to admit more queries
        while the batch is in flight.
        """
        import asyncio

        return await asyncio.wrap_future(self.submit_batch(queries, planner))

    def query(self, kind: str, ingress, dest: int | None = None):
        """Answer one query and return its bare value.

        ``session.query("delivery", (sw, pt), dest)`` is the scalar
        convenience over :meth:`query_batch`.
        """
        q = Query.coerce({"kind": kind, "ingress": ingress, "dest": dest})
        return self.query_batch([q]).results[0].value

    def delivery_probabilities(self, dest: int | None = None) -> dict[Packet, float]:
        """Per-ingress delivery probability of one destination's model."""
        model = self.model_for(dest)
        batch = [Query("delivery", packet, dest) for packet in model.ingress_packets]
        results = self.query_batch(batch)
        return {res.query.ingress: res.value for res in results}

    def resilience_sweep(
        self,
        model_factory: Callable[[str, int | None], NetworkModel],
        schemes: Sequence[str],
        failure_bounds: Sequence[int | None],
    ) -> dict[str, dict[int | None, bool]]:
        """A Figure 11(b)-style sweep served by this session's backend.

        ``model_factory(scheme, k)`` builds each configuration; verdicts
        are cached by canonical policy key, so overlapping sweeps reuse
        earlier answers.
        """
        return {
            scheme: {
                bound: self.certainly_delivers(model_factory(scheme, bound))
                for bound in failure_bounds
            }
            for scheme in schemes
        }

    # -- engine protocol (usable as backend=/session= in repro.analysis) --------
    def output_distribution(
        self, policy: s.Policy | NetworkModel, inputs: Packet | Dist | Iterable[Packet]
    ) -> Dist[Outcome]:
        """Output distribution on a packet, a distribution, or an ingress set.

        Same contract as the backends' ``output_distribution``, but
        answered through the session cache.
        """
        with self._serving():
            if isinstance(policy, NetworkModel):
                policy = policy.policy
            if isinstance(inputs, Packet):
                weighted: list[tuple[Outcome, object]] = [(inputs, 1)]
            elif isinstance(inputs, Dist):
                weighted = list(inputs.items())
            else:
                packets = list(inputs)
                if not packets:
                    raise ValueError(
                        "cannot build a uniform distribution over no outcomes"
                    )
                share = s.as_prob(1) / len(packets)
                weighted = [(packet, share) for packet in packets]
            proper = [pk for pk, _ in weighted if not isinstance(pk, _DropType)]
            dists, _hits, _replica, _attempts, _failed = self._distributions(
                policy, proper
            )
            parts: list[tuple[Dist[Outcome], object]] = []
            for outcome, mass in weighted:
                if isinstance(outcome, _DropType):
                    parts.append((Dist.point(DROP), mass))
                else:
                    parts.append((dists[outcome], mass))
            return Dist.convex(parts, check=False)

    def output_distributions(
        self, policy: s.Policy | NetworkModel, inputs: Iterable[Packet]
    ) -> dict[Packet, Dist[Outcome]]:
        """Per-ingress output distributions, through the session cache."""
        with self._serving():
            if isinstance(policy, NetworkModel):
                policy = policy.policy
            dists, _hits, _replica, _attempts, _failed = self._distributions(
                policy, list(inputs)
            )
            return dists

    def certainly_delivers(self, model: NetworkModel) -> bool:
        """Whether every ingress of ``model`` delivers with probability one.

        Delegates to a leased replica (structural analysis for the native
        family, batched numerical check for the matrix backend); verdicts
        are cached by canonical policy key.
        """
        with self._serving():
            # Cached-verdict fast path: no lease needed when the policy's
            # canonical key is already known and the verdict is cached.
            entry = self._keys.get(id(model.policy))
            if entry is not None and entry[0] is model.policy:
                cached = self._verdicts.get((entry[1], "certainly_delivers"))
                if cached is not None:
                    return cached

            def check(replica: Replica) -> bool:
                key = (
                    self._policy_key(model.policy, replica.backend),
                    "certainly_delivers",
                )
                cached = self._verdicts.get(key)
                if cached is None:
                    verdict = bool(replica.backend.certainly_delivers(model))
                    with self._state_lock:
                        cached = self._verdicts.setdefault(key, verdict)
                return cached

            verdict, _attempts, _failed = self._with_lease(None, check)
            return verdict

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Serving counters, pool shape, and accumulated phase timings.

        ``backend_timings`` sums each phase over all replicas (total CPU
        work, which can exceed wall-clock when replicas run in parallel);
        ``backend_solver`` sums the numeric-kernel counters
        (``factorizations`` / ``schur_updates`` / ``assembly_rows``) the
        same way; ``pool`` reports per-replica lease counts and the
        affinity map.
        """
        timings: dict[str, float] = {}
        solver_totals: dict[str, int] = {}
        for replica in self._pool.replicas:
            timer = getattr(replica.backend, "timings", None)
            if timer is not None:
                for name, value in timer().items():
                    timings[name] = timings.get(name, 0.0) + value
            solver = getattr(replica.backend, "solver_stats", None)
            if solver is not None:
                for name, value in solver().items():
                    solver_totals[name] = solver_totals.get(name, 0) + int(value)
        return {
            "queries": self._queries_served,
            "batches": self._batches_served,
            "shards": self._shards_run,
            "retried_shards": self._shard_retries,
            "cached_distributions": len(self._dists),
            "destinations": self.destinations,
            "backend": type(self._backend).__name__,
            "backend_timings": timings,
            "backend_solver": solver_totals,
            "pool": self._pool.stats(),
            "telemetry": self._telemetry.summary(),
        }

    def metrics_text(self) -> str:
        """The session's metrics in Prometheus text exposition format.

        Counters and histograms update at serve time; the gauges sampled
        here (per-phase backend seconds summed over replicas, result
        cache size, pool size) are refreshed from live state on every
        call, so the output is always scrape-fresh.  This is what the
        streaming server's ``metrics`` op returns.
        """
        snapshot = self.stats()
        for name, value in snapshot["backend_timings"].items():
            self._m_phase.labels(phase=name).set(round(value, 6))
        self._m_cached.set(snapshot["cached_distributions"])
        self._m_pool.set(self._pool.size)
        return self._telemetry.metrics.to_prometheus()

    def warm(self, dest: int | None = None, solve: bool = True) -> "AnalysisSession":
        """Pre-plan one destination's model on every replica and pre-solve it.

        Warmup takes the ordinary per-replica lease path — it never
        touches a backend outside a lease — so it is safe against
        concurrent :meth:`query_batch` traffic on the same destination.
        Every replica gets the compiled plan (cheap after the first: the
        stages rebuild from the shared spec store), then the full ingress
        set is solved once on the destination's affinity replica, which
        also populates the session result cache.  After warming, any
        batch over that destination's ingress packets is answered from
        the cache.  With ``solve=False`` only the plans are compiled
        (plan-only warmup for latency-sensitive services: first queries
        then pay the solve but never the compile).
        """
        with self._serving():
            model = self.model_for(dest)
            policy = model.policy
            # Per-index leases rather than lease_each(): a replica dying
            # *under the warmup call* must quarantine through the lease's
            # own exception path (generator-mediated leases never see the
            # caller's exceptions), and a dead slot is simply skipped —
            # its respawn re-ships adopted plans anyway.
            index = 0
            while index < self._pool.size:
                try:
                    with self._pool.lease_replica(index) as replica:
                        plan_fn = getattr(replica.backend, "plan", None)
                        if plan_fn is not None:
                            plan_fn(policy)
                except ReplicaFailure:
                    pass  # dead or dying slot: skip; supervision handles it
                except RuntimeError:
                    break  # pool closed or shrank mid-walk
                index += 1
            if solve:
                self._distributions(
                    policy, model.ingress_packets, affinity=("dest", dest)
                )
            return self

    # -- internals -------------------------------------------------------------
    def _check_open(self) -> None:
        """Refuse new work once teardown has begun (closing or closed)."""
        if self._closing or self._closed:
            raise RuntimeError("session is closed")

    @contextmanager
    def _serving(self) -> Iterator[None]:
        """Count one in-flight public call for close()'s deterministic drain.

        Admission and the counter share the state lock, so a call either
        sees the session open and is counted (close() then waits for it)
        or is refused — there is no window in which work slips in after
        the drain started.
        """
        with self._state_lock:
            self._check_open()
            self._active_calls += 1
        try:
            yield
        finally:
            with self._state_lock:
                self._active_calls -= 1
                if self._active_calls == 0:
                    self._idle.notify_all()

    def _run_shard(
        self, shard: Shard, trace_parent: object | None = None
    ) -> tuple[ShardReport, list[QueryResult]]:
        started = time.perf_counter()
        results: list[QueryResult] = []
        hits_total = 0
        replicas_used: list[int] = []
        attempts_total = 0
        failed: list[int] = []
        tracer = self._telemetry.tracer
        with tracer.span(
            "shard",
            parent=trace_parent,
            index=shard.index,
            label=shard.label,
            queries=len(shard.queries),
        ) as span:
            for dest, group in shard.dest_groups().items():
                model = self.model_for(dest)
                affinity = (
                    shard.affinity if shard.affinity is not None else ("dest", dest)
                )
                dists, hits, served_by, attempts, group_failed = self._distributions(
                    model.policy, [query.ingress for query in group], affinity=affinity
                )
                attempts_total += attempts
                failed.extend(group_failed)
                if served_by is not None and served_by not in replicas_used:
                    replicas_used.append(served_by)
                for query in group:
                    cached = query.ingress in hits
                    hits_total += 1 if cached else 0
                    value = self._evaluate(query, model, dists[query.ingress])
                    results.append(QueryResult(query, value, shard.index, cached))
            span.set(
                cache_hits=hits_total,
                replicas=tuple(replicas_used),
                attempts=attempts_total,
            )
        finished = time.perf_counter()
        report = ShardReport(
            index=shard.index,
            label=shard.label,
            queries=len(shard.queries),
            seconds=finished - started,
            cache_hits=hits_total,
            # A mixed-destination shard may lease several replicas (one per
            # destination group); ``replica`` is only meaningful when the
            # whole shard was served by exactly one.
            replica=replicas_used[0] if len(replicas_used) == 1 else -1,
            replicas=tuple(replicas_used),
            # Provenance for benchmark artifacts: which pool mode served
            # the shard and in which OS process(es) the solves actually
            # ran — in process mode distinct worker pids are direct
            # evidence of cross-process overlap.
            pool_mode=self._pool.mode,
            workers=tuple(self._pool.worker_id(index) for index in replicas_used),
            started=started,
            finished=finished,
            attempts=attempts_total,
            failed_replicas=tuple(failed),
        )
        return report, results

    def _evaluate(self, query: Query, model: NetworkModel, dist: Dist[Outcome]):
        # The value logic is shared with repro.analysis.queries (imported
        # lazily: repro.analysis re-exports this class, also lazily), so
        # session answers cannot drift from the per-call entry points.
        from repro.analysis.queries import _is_delivered

        if query.kind == "delivery":
            delivered = model.delivered
            return float(dist.prob_of(lambda out: _is_delivered(out, delivered)))
        if query.kind == "distribution":
            return dist
        if query.kind == "hops":
            hops_field = model.hops_field
            if hops_field is None:
                raise ValueError(
                    "hop-count queries need a model built with count_hops=True"
                )
            # Same semantics as analysis.latency.expected_hop_count: only
            # delivered outcomes carrying a hop value contribute mass.
            total = 0.0
            mass = 0.0
            for outcome, prob in dist.items():
                if isinstance(outcome, _DropType) or outcome.get("sw") != model.dest:
                    continue
                hops = outcome.get(hops_field)
                if hops is None:
                    continue
                total += float(prob) * float(hops)
                mass += float(prob)
            if mass == 0.0:
                raise ZeroDivisionError(
                    "no traffic is delivered; expected hop count undefined"
                )
            return total / mass
        raise ValueError(f"unknown query kind {query.kind!r}")

    def _distributions(
        self,
        policy: s.Policy,
        packets: Sequence[Packet],
        affinity: object | None = None,
    ) -> tuple[dict[Packet, Dist[Outcome]], set[Packet], int | None, int, tuple]:
        """Per-ingress distributions of ``policy``, via the session cache.

        Returns ``(dists, hits, replica, attempts, failed)`` where
        ``hits`` are the packets answered from the cache, ``replica`` is
        the index of the leased replica that solved the misses (``None``
        when every packet hit — fully cached calls never lease, so
        cached traffic runs with no solver contention at all),
        ``attempts`` counts the lease attempts taken (0 when fully
        cached), and ``failed`` lists the replica indices retried away
        from, in failure order.
        """
        if self._closed:
            # Every query surface funnels through here (query_batch via
            # _run_shard, the engine protocol, warm), so a closed session
            # cannot silently restart backend resources close() released.
            # Deliberately `_closed`, not `_closing`: while close() drains
            # the executor, in-flight shards must keep solving — only the
            # *entry points* refuse new work during the drain.
            raise RuntimeError("session is closed")
        if self._cache_enabled:
            entry = self._keys.get(id(policy))
            if entry is not None and entry[0] is policy:
                base = entry[1]
                out: dict[Packet, Dist[Outcome]] = {}
                hits: set[Packet] = set()
                complete = True
                for packet in packets:
                    found = self._dists.get((base, packet))
                    if found is None:
                        complete = False
                        break
                    out[packet] = found
                    hits.add(packet)
                if complete:
                    return out, hits, None, 0, ()

        def solve(replica: Replica) -> tuple[dict[Packet, Dist[Outcome]], set[Packet], int]:
            dists, solved_hits = self._solve_on(replica, policy, packets)
            return dists, solved_hits, replica.index

        result, attempts, failed = self._with_lease(affinity, solve)
        dists, solved_hits, served_by = result
        return dists, solved_hits, served_by, attempts, failed

    def _with_lease(self, affinity: object | None, body: Callable[[Replica], object]):
        """Run ``body`` under a pool lease, retrying replica failures.

        Queries are pure, so a shard whose replica crashed (or hung past
        the watchdog) mid-solve re-runs verbatim on a healthy replica —
        the crashed attempt published nothing partial (cache publication
        happens after a completed solve).  The failed replica is already
        quarantined and respawning by the time the failure reaches this
        loop (the lease's exception path does that), so the re-lease
        routes around it.  After ``max_attempts`` distinct failures the
        typed :class:`~repro.service.pool.PoolUnavailable` surfaces,
        chained to the last replica failure.

        Returns ``(body's result, attempts taken, failed replica
        indices)`` so callers can attach per-shard retry provenance to
        their reports.
        """
        attempt = 0
        failed: list[int] = []
        tracer = self._telemetry.tracer
        while True:
            try:
                with self._pool.lease(affinity) as replica:
                    # The lease span lives *inside* the pool lease so a
                    # body failure closes the span (with its error attr)
                    # before the lease's exception path quarantines the
                    # replica — quarantine events land on the outer span.
                    with tracer.span(
                        "lease", replica=replica.index, attempt=attempt + 1
                    ):
                        return body(replica), attempt + 1, tuple(failed)
            except ReplicaFailure as failure:
                attempt += 1
                if failure.replica is not None:
                    failed.append(failure.replica)
                if attempt >= self._max_attempts:
                    raise PoolUnavailable(
                        f"shard failed on {attempt} replica(s); "
                        f"retries exhausted (max_attempts={self._max_attempts})"
                    ) from failure
                with self._state_lock:
                    self._shard_retries += 1
                self._m_retries.inc()
                tracer.event(
                    "shard-retry",
                    attempt=attempt,
                    replica=failure.replica,
                    kind=getattr(failure, "kind", "crash"),
                )

    def _solve_on(
        self, replica: Replica, policy: s.Policy, packets: Sequence[Packet]
    ) -> tuple[dict[Packet, Dist[Outcome]], set[Packet]]:
        """Compute (cache-assisted) distributions on an already-leased replica."""
        backend = replica.backend
        if not self._cache_enabled:
            return dict(backend.output_distributions(policy, packets)), set()
        base = self._policy_key(policy, backend)
        cache = self._dists
        out: dict[Packet, Dist[Outcome]] = {}
        hits: set[Packet] = set()
        misses: list[Packet] = []
        for packet in packets:
            found = cache.get((base, packet))
            if found is None:
                if packet not in out:
                    misses.append(packet)
                    out[packet] = None  # type: ignore[assignment]
            else:
                out[packet] = found
                hits.add(packet)
        pending = misses
        while pending:
            # Another shard (e.g. one stolen onto a different replica) may
            # have published some of these entries since the read above;
            # solve only what is still missing, then publish under the
            # state lock.  A concurrent clear_cache() can empty the cache
            # between the solve and the read-back, so unresolved packets
            # loop around and are re-solved rather than returned as None —
            # but a packet the backend was *asked* about and did not
            # answer is a contract violation and fails fast instead of
            # spinning forever.
            still = [pk for pk in pending if (base, pk) not in cache]
            computed = dict(backend.output_distributions(policy, still)) if still else {}
            with self._state_lock:
                for packet, dist in computed.items():
                    cache.setdefault((base, packet), dist)
                unresolved: list[Packet] = []
                for packet in pending:
                    value = cache.get((base, packet))
                    if value is None:
                        value = computed.get(packet)
                    if value is None:
                        unresolved.append(packet)
                    else:
                        out[packet] = value
            asked = set(still)
            broken = [pk for pk in unresolved if pk in asked]
            if broken:
                raise RuntimeError(
                    f"backend {type(backend).__name__} returned no distribution "
                    f"for {len(broken)} requested ingress packet(s), e.g. {broken[0]!r}"
                )
            pending = unresolved
        return out, hits

    def _policy_key(self, policy: s.Policy, backend: object) -> object:
        """A cache key for ``policy``: canonical stage specs when available.

        With a plan-capable backend the key is
        :meth:`~repro.backends.matrix.MatrixBackend.plan_key` — the
        manager-*independent* serialization of the policy's compiled
        stage FDDs.  Structural specs, not node ids: the same policy
        compiled by two different replicas (or two semantically equal
        policies compiled by one) yields the same key, which is what lets
        all replicas share one session result cache.  Backends without
        ``plan_key`` fall back to object identity (the policy is retained
        so its id cannot be recycled).

        The caller must hold the lease of ``backend``'s replica: key
        computation may compile the policy's plan.
        """
        entry = self._keys.get(id(policy))
        if entry is not None and entry[0] is policy:
            return entry[1]
        plan_key_fn = getattr(backend, "plan_key", None)
        if plan_key_fn is not None:
            key: object = plan_key_fn(policy)
        else:
            key = ("policy-id", id(policy))
        with self._state_lock:
            entry = self._keys.get(id(policy))
            if entry is not None and entry[0] is policy:
                return entry[1]
            self._keys[id(policy)] = (policy, key)
            return key


__all__ = ["AnalysisSession"]
