"""Queries and result sets of the analysis service.

This module holds the service's *data* layer: :class:`Query` (one
(ingress, destination) question of a given kind), :class:`QueryResult`
(its answer plus provenance — which shard computed it, whether it was a
cache hit), :class:`ShardReport` (per-shard timings), and
:class:`ResultSet` (the merged answer to a whole batch, in the caller's
original query order).

Architecture: a batch flows **session → shards → backend** — the
:class:`~repro.service.session.AnalysisSession` coerces raw queries into
:class:`Query` values, a :class:`~repro.service.shards.ShardPlanner`
partitions them into shards, the executor runs each shard against the
session's shared backend, and the per-shard answers are merged back into
one :class:`ResultSet` here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.distributions import Dist
from repro.core.packet import Packet, _DropType

#: The query kinds the service answers.
QUERY_KINDS = ("delivery", "distribution", "hops")


def coerce_packet(ingress) -> Packet:
    """Coerce an ingress spec — ``Packet``, ``(sw, pt)``, or mapping — to a packet."""
    if isinstance(ingress, Packet):
        return ingress
    if isinstance(ingress, Mapping):
        return Packet(dict(ingress))
    if isinstance(ingress, Sequence) and len(ingress) == 2:
        switch, port = ingress
        return Packet({"sw": int(switch), "pt": int(port)})
    raise TypeError(f"cannot interpret {ingress!r} as an ingress location")


@dataclass(frozen=True)
class Query:
    """One question about one (ingress, destination) pair.

    ``kind`` selects what is asked of the pair:

    * ``"delivery"`` — probability the ingress packet reaches ``dest``;
    * ``"distribution"`` — the full output distribution of the ingress;
    * ``"hops"`` — expected hop count conditioned on delivery (requires a
      model built with ``count_hops=True``).

    ``dest=None`` targets the session's default model.  Queries are
    hashable; the session's result cache and the planners key on them.
    """

    kind: str
    ingress: Packet
    dest: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            known = ", ".join(QUERY_KINDS)
            raise ValueError(f"unknown query kind {self.kind!r}; expected one of: {known}")

    @classmethod
    def delivery(cls, ingress, dest: int | None = None) -> "Query":
        return cls("delivery", coerce_packet(ingress), dest)

    @classmethod
    def distribution(cls, ingress, dest: int | None = None) -> "Query":
        return cls("distribution", coerce_packet(ingress), dest)

    @classmethod
    def hops(cls, ingress, dest: int | None = None) -> "Query":
        return cls("hops", coerce_packet(ingress), dest)

    @classmethod
    def coerce(cls, raw) -> "Query":
        """Coerce a raw query spec (``Query``, mapping, or pair) to a query.

        Mappings use the CLI/batch-file shape
        ``{"kind": ..., "ingress": [sw, pt], "dest": ...}`` (kind defaults
        to ``"delivery"``); a bare ``(ingress, dest)`` pair is a delivery
        query.
        """
        if isinstance(raw, cls):
            return raw
        if isinstance(raw, Mapping):
            return cls(
                raw.get("kind", "delivery"),
                coerce_packet(raw["ingress"]),
                raw.get("dest"),
            )
        if isinstance(raw, Sequence) and len(raw) == 2:
            ingress, dest = raw
            return cls.delivery(ingress, None if dest is None else int(dest))
        raise TypeError(f"cannot interpret {raw!r} as a service query")


@dataclass(frozen=True)
class QueryResult:
    """One answered query: the value plus its provenance."""

    query: Query
    value: object
    shard: int
    cached: bool


@dataclass(frozen=True)
class ShardReport:
    """Per-shard execution record (size, wall-clock, cache behaviour).

    ``replicas`` lists every pooled backend replica the shard leased (a
    mixed-destination shard solves one destination group per lease;
    fully cached shards lease none).  ``replica`` is the convenience
    single-server view: the replica index when exactly one replica
    served the whole shard, ``-1`` otherwise (cached or mixed).
    ``started`` / ``finished`` are ``time.perf_counter()`` stamps taken
    on the shard's executor thread; they share one clock across all
    shards of a batch, so overlapping ``[started, finished]`` intervals
    are direct evidence that shards executed in parallel rather than
    serialising on a shared solver lock.

    ``pool_mode`` records how the serving replicas were hosted
    (``"thread"`` or ``"process"``) and ``workers`` the OS pid behind
    each leased replica, in ``replicas`` order — in process mode,
    distinct pids on overlapping shard windows are direct evidence of
    cross-process parallel execution, carried into benchmark artifacts.

    ``attempts`` counts the lease attempts the shard's solves took (0
    for a fully cached shard, which never leases; > its destination
    group count when replica failures forced retries) and
    ``failed_replicas`` lists the replica indices the shard retried
    *away from*, in failure order — per-shard retry history, visible in
    :meth:`ResultSet.to_json` rather than only in the session's
    aggregate ``retried_shards`` counter.
    """

    index: int
    label: str
    queries: int
    seconds: float
    cache_hits: int
    replica: int = -1
    replicas: tuple[int, ...] = ()
    pool_mode: str = "thread"
    workers: tuple[int, ...] = ()
    started: float = 0.0
    finished: float = 0.0
    attempts: int = 0
    failed_replicas: tuple[int, ...] = ()

    def overlaps(self, other: "ShardReport") -> bool:
        """Whether the two shards' wall-clock execution windows intersect."""
        return self.started < other.finished and other.started < self.finished


@dataclass
class ResultSet:
    """The merged answer to one query batch.

    ``results`` is in the caller's original query order regardless of how
    the planner sharded the batch; ``shards`` records one
    :class:`ShardReport` per executed shard; ``seconds`` is the
    end-to-end wall-clock of the batch (planning + execution + merge).
    """

    results: list[QueryResult]
    shards: list[ShardReport] = field(default_factory=list)
    seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def values(self) -> list[object]:
        """The raw values, in original query order."""
        return [result.value for result in self.results]

    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def queries_per_second(self) -> float:
        if self.seconds <= 0.0:
            return float("inf")
        return len(self.results) / self.seconds

    def value(self, query: Query) -> object:
        """The value of the first result matching ``query``."""
        for result in self.results:
            if result.query == query:
                return result.value
        raise KeyError(f"no result for {query!r}")

    def by_kind(self, kind: str) -> list[QueryResult]:
        return [result for result in self.results if result.query.kind == kind]

    # -- serialisation ---------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-serialisable summary (distributions become string-keyed maps)."""
        return {
            "queries": len(self.results),
            "seconds": round(self.seconds, 6),
            "queries_per_second": round(self.queries_per_second, 3)
            if self.seconds > 0
            else None,
            "cache_hits": self.cache_hits,
            "shards": [
                {
                    "index": report.index,
                    "label": report.label,
                    "queries": report.queries,
                    "seconds": round(report.seconds, 6),
                    "cache_hits": report.cache_hits,
                    "replica": report.replica,
                    "replicas": list(report.replicas),
                    "pool_mode": report.pool_mode,
                    "workers": list(report.workers),
                    "attempts": report.attempts,
                    "failed_replicas": list(report.failed_replicas),
                }
                for report in self.shards
            ],
            "results": [
                {
                    "kind": result.query.kind,
                    "ingress": dict(result.query.ingress.as_dict()),
                    "dest": result.query.dest,
                    "shard": result.shard,
                    "cached": result.cached,
                    "value": _json_value(result.value),
                }
                for result in self.results
            ],
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)
            handle.write("\n")


def _json_value(value: object) -> object:
    """Render a query value for JSON output."""
    if isinstance(value, Dist):
        return {
            _outcome_label(outcome): float(prob) for outcome, prob in value.items()
        }
    if isinstance(value, float):
        return value
    return value


def _outcome_label(outcome) -> str:
    if isinstance(outcome, _DropType):
        return "drop"
    items = ",".join(f"{name}={val}" for name, val in sorted(outcome.as_dict().items()))
    return items or "<empty>"


def merge_shard_results(
    queries: Sequence[Query],
    shard_outputs: Iterable[tuple[ShardReport, list[QueryResult]]],
    seconds: float,
) -> ResultSet:
    """Merge per-shard outputs back into the caller's original query order.

    Duplicate queries in a batch are legal: each occurrence consumes one
    computed result (planners preserve multiplicity, so the counts line
    up exactly).
    """
    reports: list[ShardReport] = []
    pending: dict[Query, list[QueryResult]] = {}
    for report, results in shard_outputs:
        reports.append(report)
        for result in results:
            pending.setdefault(result.query, []).append(result)
    ordered: list[QueryResult] = []
    for query in queries:
        bucket = pending.get(query)
        if not bucket:
            raise RuntimeError(f"shard execution lost query {query!r}")
        ordered.append(bucket.pop())
    leftovers = sum(len(bucket) for bucket in pending.values())
    if leftovers:
        raise RuntimeError(f"shard execution produced {leftovers} surplus result(s)")
    reports.sort(key=lambda report: report.index)
    return ResultSet(results=ordered, shards=reports, seconds=seconds)


__all__ = [
    "QUERY_KINDS",
    "Query",
    "QueryResult",
    "ResultSet",
    "ShardReport",
    "coerce_packet",
    "merge_shard_results",
]
