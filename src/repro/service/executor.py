"""The persistent shard executor of the analysis service.

Architecture: in the **session → shards → pool → backend** pipeline this
module *runs* the shards.  One :class:`ShardExecutor` lives as long as
its owning :class:`~repro.service.session.AnalysisSession`: its thread
pool is started lazily on the first multi-shard batch and then reused by
every subsequent batch, so steady-state serving pays no pool start-up
cost per batch (the thread-level analogue of the parallel interpreter's
persistent process pool, which the session also keeps alive by holding
its backend replicas for its whole lifetime).

Executor workers are always *threads*, in both pool modes: the session
result cache is shared in-place, merge needs no serialisation, and each
shard leases its *own* backend replica from the session's
:class:`~repro.service.pool.BackendPool` — there is no session-wide
solver lock, so shards on different replicas contend on nothing.  Where
the replica's solve actually *runs* is the pool's concern, not the
executor's: a thread-hosted replica overlaps wherever the work releases
the GIL (SciPy ``splu``), while a process-hosted replica
(:class:`~repro.service.procpool.ProcessBackendPool`) runs the whole
solve in its worker process and the executor thread merely waits on the
pipe — which is why the same thread executor drives full multi-core
parallelism in process mode.  Executor threads only ever block on pool
*capacity* (every replica busy), never on another replica's solver
lock.  Size ``workers >= pool_size`` to be able to drive every replica
at once.  Closing the executor (or its owning session) tears the thread
pool down; ``workers=1`` runs shards inline with no pool at all.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Upper bound on default worker threads (shard work is coarse-grained).
_DEFAULT_WORKER_CAP = 8


class ShardExecutor:
    """A persistent, lazily started thread pool for shard execution."""

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = (
            workers
            if workers is not None
            else min(_DEFAULT_WORKER_CAP, os.cpu_count() or 1)
        )
        self._pool: ThreadPoolExecutor | None = None
        self._dispatch: ThreadPoolExecutor | None = None
        self._closed = False

    @property
    def started(self) -> bool:
        """Whether the thread pool has been started (it starts lazily)."""
        return self._pool is not None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, concurrently, preserving item order.

        Single-item batches and ``workers=1`` run inline (deterministic,
        no pool).  The pool, once started, persists until :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
        return list(self._pool.map(fn, items))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Run ``fn(*args)`` on the *dispatch* pool; returns its future.

        This is the asynchronous submission surface the streaming front
        end drives: a whole-batch call (``session.query_batch``) is
        dispatched here and later calls :meth:`map` to fan its shards out.
        Dispatch runs on a **separate** thread pool from the shard
        workers, deliberately: if batch dispatch shared the shard pool, a
        window of concurrent batches could occupy every worker thread
        with batch coordinators, each blocked waiting for shard slots
        none of them can free — a classic same-pool deadlock.  Keeping
        the two stages on distinct pools makes the pipeline acyclic.  The
        dispatch pool is sized like the shard pool (up to ``workers``
        concurrent batches) and started lazily on first use.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._dispatch is None:
            self._dispatch = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-dispatch"
            )
        return self._dispatch.submit(fn, *args)

    def close(self) -> None:
        """Shut both pools down (idempotent); subsequent calls fail.

        The dispatch pool drains first: every in-flight batch runs to
        completion (and may keep using the shard pool while it does),
        then the shard pool is drained and torn down.
        """
        self._closed = True
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
            self._dispatch = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ShardExecutor"]
