"""Fault injection for worker processes: one harness for chaos tests.

The supervision layer in :mod:`repro.service.pool` /
:mod:`repro.service.procpool` promises that replica death is recoverable
— this module makes death *reproducible*.  A :class:`FaultPlan` is a
small set of :class:`Fault` directives ("kill worker 1 after it served 3
query requests", "delay every reply of worker 0 by 250 ms", "drop worker
2's pipe"), encoded as a compact string so it crosses the process
boundary through the environment:

* activation: set the ``REPRO_FAULTS`` environment variable **before**
  the pool spawns workers (the :func:`active` context manager and the
  ``inject_faults`` pytest fixture do the bookkeeping).  Workers read
  the variable once at process start — under both ``fork`` and ``spawn``
  start methods — and a *respawned* worker at the same index re-reads
  the same plan, so a fault like ``kill@1:after=0`` keeps firing on
  every incarnation of worker 1 until the plan is deactivated;
* spec grammar: ``;``-separated faults, each
  ``KIND@TARGET[:OPT=VALUE...]`` where ``KIND`` is ``kill`` / ``drop`` /
  ``delay`` / ``partition`` / ``garble`` / ``stall``, ``TARGET`` is a
  worker index or ``all``, and options are ``after=K`` (arm after K
  served query requests, default 0), ``ms=M`` (duration for ``delay`` /
  ``stall`` / ``partition``), and ``exit=N`` (kill exit status, default
  137 — the code a SIGKILLed process reports).
  Example: ``kill@1:after=5;delay@all:ms=30``.

Process faults (``kill``/``drop``/``delay``) apply to **query** requests
only: plan shipping, resets, pings, and the respawn path's plan
re-publication are never sabotaged, so an injected crash exercises
exactly the paths a real mid-solve crash would (and a respawned worker
still comes up spec-fed, with 0 AST compilations).

Network faults live one layer *below* the worker loop, at the framed TCP
transport of remote replica hosts (:mod:`repro.service.transport` /
:mod:`repro.service.host` — the worker never sees them):

* ``partition@TARGET[:ms=M]`` — the host relay stops reading, relaying,
  and heartbeating that worker's connection for M ms (one-shot; ``ms``
  omitted or 0 = indefinite blackhole, held until the connection dies);
* ``garble@TARGET`` — corrupt exactly one reply frame (one-shot): the
  frame arrives complete and well-delimited with a failing checksum,
  exercising the ``FrameError`` → ``ReplicaFailure(kind="transport")``
  path;
* ``stall@TARGET:ms=M`` — delay every reply frame by M ms at the
  transport layer (the worker has already answered; the wire is slow).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, MutableMapping

#: Environment variable holding the active fault spec.
REPRO_FAULTS = "REPRO_FAULTS"

#: Recognised fault kinds (process-level, then transport-level).
KINDS = ("kill", "drop", "delay", "partition", "garble", "stall")

#: The kinds honored by the remote-host transport relay, not the worker.
NETWORK_KINDS = ("partition", "garble", "stall")

#: Default kill status: what a SIGKILLed process reports (128 + 9).
KILLED = 137


@dataclass(frozen=True)
class Fault:
    """One injected fault directive.

    ``worker`` is the target worker index (``None`` = every worker);
    ``after`` arms the fault only once the worker has served that many
    query requests (so e.g. ``after=3`` lets three shards through and
    kills the fourth); ``ms`` is the per-reply delay for ``delay``
    faults; ``exit_code`` is the status a ``kill`` fault dies with.
    """

    kind: str
    worker: int | None = None
    after: int = 0
    ms: float = 0.0
    exit_code: int = KILLED

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {KINDS})")
        if self.after < 0:
            raise ValueError("after= must be >= 0")
        if self.ms < 0:
            raise ValueError("ms= must be >= 0")

    def spec(self) -> str:
        """The compact string form (inverse of :meth:`FaultPlan.parse`)."""
        target = "all" if self.worker is None else str(self.worker)
        parts = [f"{self.kind}@{target}"]
        if self.after:
            parts.append(f"after={self.after}")
        if self.kind == "delay" or (self.kind in ("stall", "partition") and self.ms):
            parts.append(f"ms={self.ms:g}")
        if self.kind == "kill" and self.exit_code != KILLED:
            parts.append(f"exit={self.exit_code}")
        return ":".join(parts)


class FaultPlan:
    """A parsed set of faults, distributable to workers by index."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: tuple[Fault, ...] = tuple(faults)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see the module doc)."""
        faults: list[Fault] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            head, *options = chunk.split(":")
            kind, _, target = head.partition("@")
            worker = None if target in ("", "all", "*") else int(target)
            after, ms, exit_code = 0, 0.0, KILLED
            for option in options:
                name, sep, value = option.partition("=")
                if not sep:
                    raise ValueError(f"malformed fault option {option!r} in {chunk!r}")
                if name == "after":
                    after = int(value)
                elif name == "ms":
                    ms = float(value)
                elif name == "exit":
                    exit_code = int(value)
                else:
                    raise ValueError(f"unknown fault option {name!r} in {chunk!r}")
            faults.append(Fault(kind.strip(), worker, after=after, ms=ms, exit_code=exit_code))
        return cls(faults)

    @classmethod
    def from_env(cls, environ: MutableMapping[str, str] = os.environ) -> "FaultPlan | None":
        """The active plan per ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        spec = environ.get(REPRO_FAULTS)
        if not spec:
            return None
        plan = cls.parse(spec)
        return plan if plan else None

    def spec(self) -> str:
        """The compact string form, suitable for ``REPRO_FAULTS``."""
        return ";".join(fault.spec() for fault in self.faults)

    def for_worker(self, index: int) -> "WorkerFaults | None":
        """The faults targeting worker ``index`` (or ``None`` when clean)."""
        mine = [f for f in self.faults if f.worker is None or f.worker == index]
        return WorkerFaults(mine) if mine else None

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r})"


class WorkerFaults:
    """Worker-side fault state, consulted from the request loop.

    ``served`` counts *query* requests this worker has answered; the
    hooks compare it against each fault's ``after`` threshold.
    """

    def __init__(self, faults: Iterable[Fault]):
        self.faults = tuple(faults)
        # One-shot bookkeeping: slots of faults that already fired
        # (partition / garble strike exactly once per incarnation).
        self._fired: set[int] = set()

    def _armed(self, kind: str, served: int) -> Fault | None:
        for fault in self.faults:
            if fault.kind == kind and served >= fault.after:
                return fault
        return None

    def _armed_once(self, kind: str, served: int) -> Fault | None:
        for slot, fault in enumerate(self.faults):
            if fault.kind == kind and served >= fault.after and slot not in self._fired:
                self._fired.add(slot)
                return fault
        return None

    def sabotage_query(self, served: int) -> str | None:
        """Pre-compute hook: die or drop the pipe *before* answering.

        Returns ``"drop"`` when the request loop should close its
        connection and exit (simulating a broken transport); a ``kill``
        fault never returns — the process exits immediately with the
        fault's exit code, mimicking a SIGKILL (no cleanup, no reply,
        no exception crossing the pipe).
        """
        fault = self._armed("kill", served)
        if fault is not None:
            os._exit(fault.exit_code)
        if self._armed("drop", served) is not None:
            return "drop"
        return None

    def delay_reply(self, served: int) -> None:
        """Post-compute hook: stall the reply (exercises the watchdog)."""
        fault = self._armed("delay", served)
        if fault is not None and fault.ms > 0:
            time.sleep(fault.ms / 1000.0)

    # -- transport-level hooks (consulted by the remote-host relay) ------------
    def partition_ms(self, served: int) -> float | None:
        """One-shot: blackhole duration in ms (``0.0`` = indefinite), or ``None``."""
        fault = self._armed_once("partition", served)
        return fault.ms if fault is not None else None

    def garble_reply(self, served: int) -> bool:
        """One-shot: whether to corrupt this reply frame's checksum."""
        return self._armed_once("garble", served) is not None

    def stall_ms(self, served: int) -> float | None:
        """Per-reply wire delay in ms (the worker already answered), or ``None``."""
        fault = self._armed("stall", served)
        return fault.ms if fault is not None and fault.ms > 0 else None


@contextmanager
def active(
    plan: "FaultPlan | str", environ: MutableMapping[str, str] = os.environ
) -> Iterator[None]:
    """Temporarily activate a fault plan via ``REPRO_FAULTS``.

    Workers read the variable at process start, so the plan must be
    active *before* the pool spawns (or respawns) the targeted worker;
    deactivation only affects workers started afterwards.
    """
    spec = plan if isinstance(plan, str) else plan.spec()
    previous = environ.get(REPRO_FAULTS)
    environ[REPRO_FAULTS] = spec
    try:
        yield
    finally:
        if previous is None:
            environ.pop(REPRO_FAULTS, None)
        else:
            environ[REPRO_FAULTS] = previous


__all__ = [
    "KILLED",
    "KINDS",
    "NETWORK_KINDS",
    "REPRO_FAULTS",
    "Fault",
    "FaultPlan",
    "WorkerFaults",
    "active",
]
