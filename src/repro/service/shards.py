"""Shard planners: partitioning a query batch for concurrent execution.

Architecture: in the **session → shards → backend** pipeline this module
decides *how a batch is cut*.  A :class:`ShardPlanner` receives the whole
coerced batch and returns :class:`Shard`\\ s — disjoint, exhaustive slices
that the session's executor runs concurrently.  Every planner must
partition the batch *exactly*: each query occurrence lands in exactly one
shard (checked by :func:`validate_partition` on every batch).

Three strategies are provided:

* :class:`ByDestinationPlanner` (``"destination"``) — one shard per
  destination.  The natural cut for the batched matrix backend: each
  shard's queries share one compiled plan and one absorption system, so a
  shard is answered by a single batched multi-RHS solve.
* :class:`ByIngressBlockPlanner` (``"ingress"`` / ``"ingress:N"``) —
  contiguous blocks of the (destination-major, ingress-ordered) query
  space, ``N`` queries per block.  Bounds the per-shard working set, so
  huge single-destination batches stream through memory block by block.
* :class:`RoundRobinPlanner` (``"round-robin"`` / ``"round-robin:N"``) —
  query *i* goes to shard ``i mod N``.  Load-balances heterogeneous
  batches across exactly ``N`` shards.

Planners also attach an **affinity hint** to every shard they emit: the
single-destination planners (``destination``, ``ingress``) tag shards
with ``("dest", dest)`` so the session's backend replica pool routes all
shards of one destination to the replica already holding that
destination's compiled plans and factorizations; ``round-robin`` shards
mix destinations and carry no affinity (any free replica serves them).

Planners are looked up by name (with an optional ``:arg`` parameter) via
:func:`get_planner`, mirroring the backend registry.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.service.results import Query


@dataclass(frozen=True)
class Shard:
    """One executable slice of a batch: an index, a label, and its queries.

    ``affinity`` is an optional hashable routing hint for the session's
    :class:`~repro.service.pool.BackendPool`: shards carrying the same
    affinity key are routed to the same backend replica (which already
    holds the corresponding compiled plans and factorizations).  Planners
    whose shards target a single destination set it to ``("dest", dest)``;
    mixed-destination shards leave it ``None`` and take any free replica.
    """

    index: int
    label: str
    queries: tuple[Query, ...]
    affinity: object = None

    def __len__(self) -> int:
        return len(self.queries)

    def dest_groups(self) -> dict[int | None, list[Query]]:
        """The shard's queries grouped by destination, in first-appearance order.

        One group corresponds to one compiled model and therefore one
        replica lease when the shard executes; single-destination shards
        (everything the ``destination``/``ingress`` planners emit) have
        exactly one group.
        """
        groups: dict[int | None, list[Query]] = {}
        for query in self.queries:
            groups.setdefault(query.dest, []).append(query)
        return groups


class ShardPlanner:
    """Base class of the pluggable sharding strategies."""

    #: Registry name of the strategy (overridden by subclasses).
    name = "base"

    def plan(self, queries: Sequence[Query]) -> list[Shard]:
        """Partition ``queries`` into shards (exact: no loss, no duplication)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ByDestinationPlanner(ShardPlanner):
    """One shard per destination, in order of first appearance.

    Each shard targets a single compiled model, so the backend answers it
    with one batched solve; distinct destinations are independent and run
    concurrently.
    """

    name = "destination"

    def plan(self, queries: Sequence[Query]) -> list[Shard]:
        groups: dict[int | None, list[Query]] = {}
        for query in queries:
            groups.setdefault(query.dest, []).append(query)
        return [
            Shard(
                index,
                f"dest={dest if dest is not None else 'default'}",
                tuple(group),
                affinity=("dest", dest),
            )
            for index, (dest, group) in enumerate(groups.items())
        ]


class ByIngressBlockPlanner(ShardPlanner):
    """Contiguous ingress blocks of at most ``block_size`` queries.

    Queries are ordered destination-major, then by ingress location, and
    chunked; blocks never span destinations, so each shard still hits a
    single compiled model.
    """

    name = "ingress"

    def __init__(self, block_size: int = 16):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size

    def plan(self, queries: Sequence[Query]) -> list[Shard]:
        groups: dict[int | None, list[Query]] = {}
        for query in queries:
            groups.setdefault(query.dest, []).append(query)
        shards: list[Shard] = []
        for dest, group in groups.items():
            ordered = sorted(
                group,
                key=lambda q: tuple(sorted(q.ingress.as_dict().items())),
            )
            for start in range(0, len(ordered), self.block_size):
                block = tuple(ordered[start : start + self.block_size])
                label = f"dest={dest if dest is not None else 'default'}/block={start // self.block_size}"
                shards.append(Shard(len(shards), label, block, affinity=("dest", dest)))
        return shards

    def __repr__(self) -> str:
        return f"{type(self).__name__}(block_size={self.block_size})"


class RoundRobinPlanner(ShardPlanner):
    """Deal queries over exactly ``shards`` shards, round-robin."""

    name = "round-robin"

    def __init__(self, shards: int = 4):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards

    def plan(self, queries: Sequence[Query]) -> list[Shard]:
        buckets: list[list[Query]] = [[] for _ in range(min(self.shards, max(1, len(queries))))]
        for position, query in enumerate(queries):
            buckets[position % len(buckets)].append(query)
        return [
            Shard(index, f"rr={index}", tuple(bucket))
            for index, bucket in enumerate(buckets)
            if bucket
        ]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shards={self.shards})"


#: Registry of planner names to planner classes (mirrors the backend registry).
PLANNERS: dict[str, type[ShardPlanner]] = {
    ByDestinationPlanner.name: ByDestinationPlanner,
    ByIngressBlockPlanner.name: ByIngressBlockPlanner,
    RoundRobinPlanner.name: RoundRobinPlanner,
}


def get_planner(spec: "ShardPlanner | str | None") -> ShardPlanner:
    """Resolve a planner spec: an instance, a name, or ``"name:arg"``.

    ``None`` yields the default :class:`ByDestinationPlanner`.  The
    optional integer argument parameterises the strategy, e.g.
    ``"ingress:32"`` (block size) or ``"round-robin:8"`` (shard count).
    """
    if spec is None:
        return ByDestinationPlanner()
    if isinstance(spec, ShardPlanner):
        return spec
    name, _, arg = str(spec).partition(":")
    try:
        planner_class = PLANNERS[name]
    except KeyError:
        known = ", ".join(sorted(PLANNERS))
        raise ValueError(f"unknown shard planner {name!r}; available: {known}") from None
    if not arg:
        return planner_class()
    try:
        value = int(arg)
    except ValueError:
        raise ValueError(f"planner argument must be an integer: {spec!r}") from None
    if planner_class is ByIngressBlockPlanner:
        return ByIngressBlockPlanner(block_size=value)
    if planner_class is RoundRobinPlanner:
        return RoundRobinPlanner(shards=value)
    raise ValueError(f"planner {name!r} takes no argument")


def validate_partition(queries: Sequence[Query], shards: Sequence[Shard]) -> None:
    """Assert that ``shards`` partition ``queries`` exactly (as multisets).

    Raises :class:`ValueError` naming the lost or duplicated queries, so a
    buggy planner fails loudly instead of silently dropping answers.
    """
    wanted = Counter(queries)
    planned = Counter(query for shard in shards for query in shard.queries)
    if wanted == planned:
        return
    lost = wanted - planned
    extra = planned - wanted
    problems = []
    if lost:
        problems.append(f"lost {sum(lost.values())} query(ies), e.g. {next(iter(lost))!r}")
    if extra:
        problems.append(
            f"duplicated {sum(extra.values())} query(ies), e.g. {next(iter(extra))!r}"
        )
    raise ValueError("shard plan is not an exact partition: " + "; ".join(problems))


__all__ = [
    "PLANNERS",
    "ByDestinationPlanner",
    "ByIngressBlockPlanner",
    "RoundRobinPlanner",
    "Shard",
    "ShardPlanner",
    "get_planner",
    "validate_partition",
]
