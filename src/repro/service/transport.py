"""Transports: the worker wire protocol over pipes and TCP sockets.

The worker protocol of :mod:`repro.service.procpool` is a sequence of
plain picklable messages (``("plan", ...)`` / ``("query", QuerySpec)`` /
``("result", ResultSpec, stats)`` ...).  Historically those messages
travelled over one duplex :class:`multiprocessing.connection.Connection`
per worker; remote replica hosts need the same conversation over TCP.
This module abstracts the carrier:

* :class:`PipeTransport` wraps today's duplex ``Pipe`` — zero framing of
  its own (the ``Connection`` already length-prefixes), it only maps the
  pipe's failure modes onto the typed :class:`TransportError` hierarchy;
* :class:`SocketTransport` speaks **length-prefixed framed messages with
  per-frame checksums** over a stream socket::

      | magic "RPF1" | length u32 | crc32 u32 | pickled payload ... |

  Big-endian header, CRC-32 over the payload bytes.  The magic makes
  stream desynchronisation detectable, the length bounds allocation
  (frames above ``max_frame_bytes`` are refused *before* reading the
  body), and the checksum catches corruption that TCP's 16-bit checksum
  misses — a garbled frame surfaces as a typed :class:`FrameError`, not
  a pickle exception deep inside the unpickler.

Failure taxonomy (what supervision keys off):

* :class:`TransportClosed` — the peer is gone (EOF at a frame boundary,
  reset, closed socket).  Subclasses :class:`EOFError` on purpose, so a
  worker loop written against a raw ``Connection`` (``except (EOFError,
  OSError)``) keeps working unmodified over any transport.
* :class:`FrameError` — the stream is *corrupt* (truncated mid-frame,
  checksum mismatch, bad magic, oversize declaration).  The connection
  is unusable after this: framing cannot be trusted to resynchronise,
  so callers tear the transport down and reconnect.
* :class:`TransportTimeout` — ``recv(timeout=...)`` expired.

All three map to ``ReplicaFailure(kind="transport")`` (or ``"crash"``
for a clean close) in the remote worker handle, so the pool's
quarantine/respawn machinery treats wire trouble exactly like local
worker death.
"""

from __future__ import annotations

import io
import pickle
import select
import socket
import struct
import threading
import time
import zlib

#: Frame header: magic, payload length, CRC-32 of the payload (big-endian).
HEADER = struct.Struct("!4sII")

#: Stream-desync canary at the start of every frame.
MAGIC = b"RPF1"

#: Default refusal bound for a single frame's payload (64 MiB).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


class TransportError(RuntimeError):
    """Base class: the transport failed (closed, corrupt, or timed out)."""


class TransportClosed(TransportError, EOFError):
    """The peer closed the connection (EOF at a frame boundary, reset)."""


class FrameError(TransportError):
    """The framed stream is corrupt; ``reason`` is one of ``"truncated"``,
    ``"checksum"``, ``"magic"``, or ``"oversize"``.  The connection cannot
    be resynchronised and must be torn down."""

    def __init__(self, message: str, *, reason: str):
        super().__init__(message)
        self.reason = reason


class TransportTimeout(TransportError):
    """``recv(timeout=...)`` expired before a complete frame arrived."""


def encode_message(message: object, *, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame: header + pickled ``message``."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_frame_bytes:
        raise FrameError(
            f"outgoing frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame bound",
            reason="oversize",
        )
    return HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_header(header: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> tuple[int, int]:
    """Validate a frame header; returns ``(payload_length, crc32)``."""
    magic, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(
            f"bad frame magic {magic!r} (stream desynchronised)", reason="magic"
        )
    if length > max_frame_bytes:
        raise FrameError(
            f"frame declares {length} bytes, above the {max_frame_bytes}-byte "
            "bound (refusing to allocate)",
            reason="oversize",
        )
    return length, crc


def decode_payload(payload: bytes, crc: int) -> object:
    """Checksum-verify and unpickle one frame payload."""
    if zlib.crc32(payload) != crc:
        raise FrameError(
            "frame checksum mismatch (payload corrupted in transit)",
            reason="checksum",
        )
    return pickle.loads(payload)


def decode_message(frame: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> object:
    """Decode one complete frame (the in-memory inverse of
    :func:`encode_message`; used by the codec tests)."""
    if len(frame) < HEADER.size:
        raise FrameError("truncated frame header", reason="truncated")
    length, crc = decode_header(frame[: HEADER.size], max_frame_bytes=max_frame_bytes)
    payload = frame[HEADER.size : HEADER.size + length]
    if len(payload) < length:
        raise FrameError(
            f"truncated frame: header declares {length} bytes, got {len(payload)}",
            reason="truncated",
        )
    return decode_payload(payload, crc)


class Transport:
    """The carrier protocol: blocking message send/recv plus liveness.

    Both implementations expose ``fileno()`` so transports can sit in
    ``select``/``multiprocessing.connection.wait`` sets next to process
    sentinels — death detection stays select-driven, never poll-driven.
    """

    kind = "abstract"

    def send(self, message: object) -> None:
        raise NotImplementedError

    def recv(self, timeout: float | None = None) -> object:
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        raise NotImplementedError

    def fileno(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """Today's duplex ``Pipe``, behind the transport surface.

    The wrapped :class:`~multiprocessing.connection.Connection` already
    frames and pickles; this class only translates its failure modes
    (``EOFError``/``OSError``/``BrokenPipeError``) into the typed
    transport errors the supervision layer switches on.
    """

    kind = "pipe"

    def __init__(self, connection):
        self.connection = connection

    def send(self, message: object) -> None:
        try:
            self.connection.send(message)
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise TransportClosed(f"pipe closed while sending: {exc}") from exc

    def recv(self, timeout: float | None = None) -> object:
        try:
            if timeout is not None and not self.connection.poll(timeout):
                raise TransportTimeout(f"no pipe message within {timeout:.3f}s")
            return self.connection.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise TransportClosed(f"pipe closed while receiving: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            return self.connection.poll(timeout)
        except (EOFError, OSError):
            return True  # readable-and-broken: let recv surface the close

    def fileno(self) -> int:
        return self.connection.fileno()

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - defensive
            pass


class SocketTransport(Transport):
    """Length-prefixed, checksummed frames over a stream socket.

    ``send`` is thread-safe (a lock serialises whole frames onto the
    stream, so a heartbeat writer and a request writer never interleave
    bytes); ``recv`` is single-consumer by design — exactly one reader
    thread owns the inbound side, mirroring the one-outstanding-request
    discipline of the pipe protocol.

    Every inbound frame is bounded by ``max_frame_bytes`` *before* its
    body is read, checksum-verified before unpickling, and magic-checked
    against stream desynchronisation; any violation raises
    :class:`FrameError` and poisons the connection (framing can no
    longer be trusted, so the owner tears it down and reconnects).
    """

    kind = "tcp"

    def __init__(self, sock: socket.socket, *, max_frame_bytes: int = DEFAULT_MAX_FRAME):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. an AF_UNIX socketpair in tests)
        self._sock = sock
        self._max_frame = max_frame_bytes
        self._send_lock = threading.Lock()
        self._closed = False

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float | None = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME,
    ) -> "SocketTransport":
        """Dial ``host:port`` and wrap the connection."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock, max_frame_bytes=max_frame_bytes)

    @property
    def max_frame_bytes(self) -> int:
        return self._max_frame

    def send(self, message: object) -> None:
        data = encode_message(message, max_frame_bytes=self._max_frame)
        self._send_bytes(data)

    def send_corrupted(self, message: object) -> None:
        """Send ``message`` with one payload byte flipped (fault injection).

        The frame header (and its declared length) stays intact, so the
        receiver reads a complete, well-delimited frame whose checksum
        does not match — exercising exactly the ``garble`` failure mode
        the CRC exists to catch.
        """
        data = bytearray(encode_message(message, max_frame_bytes=self._max_frame))
        data[HEADER.size] ^= 0xFF
        self._send_bytes(bytes(data))

    def _send_bytes(self, data: bytes) -> None:
        with self._send_lock:
            if self._closed:
                raise TransportClosed("socket transport is closed")
            try:
                self._sock.sendall(data)
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                raise TransportClosed(f"socket closed while sending: {exc}") from exc

    def recv(self, timeout: float | None = None) -> object:
        header = self._recv_exact(HEADER.size, timeout, at_boundary=True)
        length, crc = decode_header(header, max_frame_bytes=self._max_frame)
        payload = self._recv_exact(length, timeout, at_boundary=False)
        return decode_payload(payload, crc)

    def _recv_exact(self, n: int, timeout: float | None, *, at_boundary: bool) -> bytes:
        """Read exactly ``n`` bytes.

        EOF before the first byte of a frame is an orderly close
        (:class:`TransportClosed`); EOF anywhere else truncates a frame
        (:class:`FrameError`).  The timeout, when given, bounds the whole
        read.
        """
        buffer = io.BytesIO()
        got = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while got < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportTimeout(
                        f"no complete frame within {timeout:.3f}s"
                    )
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(min(n - got, 1 << 20))
            except socket.timeout as exc:
                raise TransportTimeout(
                    f"no complete frame within {timeout:.3f}s"
                ) from exc
            except (ConnectionResetError, OSError) as exc:
                raise TransportClosed(f"socket closed while receiving: {exc}") from exc
            finally:
                if deadline is not None:
                    try:
                        self._sock.settimeout(None)
                    except OSError:
                        pass
            if not chunk:
                if at_boundary and got == 0:
                    raise TransportClosed("peer closed the connection")
                raise FrameError(
                    f"truncated frame: expected {n} bytes, got {got} before EOF",
                    reason="truncated",
                )
            buffer.write(chunk)
            got += len(chunk)
        return buffer.getvalue()

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed:
            return True
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return True
        return bool(ready)

    def peer_closed(self) -> bool:
        """Whether the peer has closed, *without* consuming stream bytes.

        Used by the host relay during an injected ``partition`` (which
        must not read) to still notice an abandoned connection.
        """
        if self._closed:
            return True
        try:
            chunk = self._sock.recv(1, socket.MSG_PEEK | socket.MSG_DONTWAIT)
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            return True
        return chunk == b""

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


__all__ = [
    "DEFAULT_MAX_FRAME",
    "HEADER",
    "MAGIC",
    "FrameError",
    "PipeTransport",
    "SocketTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "decode_header",
    "decode_message",
    "decode_payload",
    "encode_message",
]
