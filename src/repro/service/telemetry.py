"""Zero-dependency tracing + metrics for the serving stack.

The service pipeline now has five layers between a client and a
``splu`` solve — coalescer, session, shard executor, pool lease, worker
process — and ad-hoc ``stats()`` dicts cannot answer "where did this
query's 50 ms go?".  This module is the observability layer threaded
through all of them:

* **Span tracing** — a :class:`Tracer` produces nested spans
  (``request → shard → lease → worker:query → phase:assemble`` /
  ``phase:factorize`` / ``phase:solve``) carrying a
  shared trace id, wall-clock start/end stamps, attributes, and point
  events.  Nesting is tracked per thread via a :class:`~contextvars.ContextVar`
  for same-thread callees, and by *explicit* :class:`SpanContext`
  hand-off where work hops threads (the shard executor) or processes
  (the worker pool — contexts travel as plain tuples on
  :class:`~repro.service.wire.QuerySpec` and finished worker spans ship
  back in the reply stats blob, re-parented into the caller's trace by
  :meth:`Tracer.ingest`).  Span timestamps are ``time.time()`` epoch
  seconds precisely so one timeline covers parent and workers.
* **Metrics** — a :class:`MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms with optional labels, rendered in Prometheus
  text exposition format by :meth:`MetricsRegistry.to_prometheus`.
* **Exporters** — Chrome trace event JSON (:meth:`Tracer.chrome_trace`,
  loadable in Perfetto / ``chrome://tracing``) and a JSON-lines sink
  (:meth:`Tracer.export_jsonl`).

Cost model, because observability must not cost what it observes:
tracing is **off by default** and the disabled fast path is a couple of
attribute checks returning the shared :data:`NOOP_SPAN` singleton — no
allocation, no lock, no timestamp.  When tracing is on, roots are
*sampled* deterministically (every ``round(1/sample)``-th root records);
an unsampled root still returns a real :class:`Span` so descendants
inherit the (negative) decision through the context var instead of
accidentally starting fresh traces, but nothing it touches is buffered.
The span buffer is bounded (``max_spans``); overflow increments a
dropped counter rather than growing without bound.

Lock note: the tracer's buffer lock and every registry lock are *leaf*
locks in the service hierarchy (dict/list ops only, never held across a
callback or another lock), so instrumentation points inside leases or
under the session state lock cannot deadlock.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from bisect import bisect_left
from contextvars import ContextVar
from typing import Callable, Iterable, NamedTuple

#: The per-thread (per-``contextvars`` context) innermost active span.
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_current_span", default=None)


class SpanContext(NamedTuple):
    """The propagatable identity of a span: plain data, picklable.

    This is what crosses thread and process boundaries — a worker
    receives the parent's context as a tuple on the wire and parents its
    own spans to ``span_id`` under ``trace_id``.  ``sampled`` carries the
    root's sampling decision, so remote children of an unsampled trace
    record nothing either.
    """

    trace_id: int
    span_id: int
    sampled: bool = True


def _coerce_parent(parent) -> SpanContext | None:
    """Accept a Span, a SpanContext, a bare wire tuple, or ``None``."""
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    if isinstance(parent, SpanContext):
        return parent
    # Wire form: a plain (trace_id, span_id[, sampled]) tuple.
    trace_id, span_id = parent[0], parent[1]
    sampled = bool(parent[2]) if len(parent) > 2 else True
    return SpanContext(int(trace_id), int(span_id), sampled)


class Span:
    """One timed operation in a trace (context manager).

    A span records its window with ``time.time()`` stamps, arbitrary
    ``set()`` attributes, and ``event()`` point annotations.  Entering
    the span makes it the thread's *current* span (children created
    without an explicit parent nest under it); exiting restores the
    previous one and, for recording spans, pushes the finished record
    into the tracer's buffer.  ``recording=False`` spans (unsampled) do
    all the context plumbing but never buffer anything.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "events",
        "recording",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        recording: bool,
        attrs: dict | None = None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.recording = recording
        self.start = time.time()
        self.end: float | None = None
        self.attrs = dict(attrs) if attrs else {}
        self.events: list[tuple[str, float, dict]] = []
        self._token = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.recording)

    def set(self, **attrs) -> "Span":
        """Attach attributes (no-op on unsampled spans)."""
        if self.recording:
            self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> "Span":
        """Attach a point-in-time annotation (no-op on unsampled spans)."""
        if self.recording:
            self.events.append((name, time.time(), attrs))
        return self

    def finish(self) -> None:
        """Close the span and (if recording) buffer its record."""
        if self.end is not None:
            return
        self.end = time.time()
        if self.recording:
            self.tracer._record(
                {
                    "type": "span",
                    "trace": self.trace_id,
                    "span": self.span_id,
                    "parent": self.parent_id,
                    "name": self.name,
                    "start": self.start,
                    "end": self.end,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "attrs": self.attrs,
                    "events": [list(entry) for entry in self.events],
                }
            )

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc is not None and self.recording:
            self.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id:x}, span={self.span_id:x},"
            f" recording={self.recording})"
        )


class _NoopSpan:
    """The do-nothing span of a *disabled* tracer (a shared singleton).

    Every method is a constant-cost no-op; it never touches the context
    var, never reads a clock, and never allocates — the whole point of
    the off-by-default contract.  (An *enabled-but-unsampled* trace uses
    real non-recording :class:`Span` objects instead, so context still
    flows to descendants.)
    """

    __slots__ = ()
    recording = False
    context = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NOOP_SPAN"


#: The shared disabled-path span: identity-comparable, allocation-free.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces, buffers, and exports spans.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled tracers hand out :data:`NOOP_SPAN` from
        every entry point after a single attribute check.
    sample:
        Fraction of *root* spans that record (default 1.0).  Sampling is
        deterministic — every ``round(1/sample)``-th root — so repeated
        runs trace the same requests.  Children always inherit their
        root's decision, locally via the context var and remotely via
        :class:`SpanContext.sampled`.
    max_spans:
        Bound on buffered finished spans; overflow is counted in
        ``dropped`` instead of growing the buffer.
    """

    def __init__(self, *, enabled: bool = False, sample: float = 1.0, max_spans: int = 100_000):
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = enabled
        self.sample = sample
        self._interval = max(1, round(1.0 / sample))
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._roots = 0
        self.dropped = 0

    # -- span creation -----------------------------------------------------
    def span(self, name: str, parent=None, **attrs):
        """Open a span (use as a context manager).

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`, a wire
        tuple, or ``None`` — ``None`` nests under the thread's current
        span, or starts a new (sampled-or-not) root when there is none.
        Disabled tracers return :data:`NOOP_SPAN`.
        """
        if not self.enabled:
            return NOOP_SPAN
        ctx = _coerce_parent(parent)
        if ctx is None:
            current = _CURRENT.get()
            if current is not None and current is not NOOP_SPAN:
                ctx = current.context
        if ctx is None:
            with self._lock:
                index = self._roots
                self._roots += 1
            recording = (index % self._interval) == 0
            trace_id = random.getrandbits(63)
            parent_id = None
        else:
            recording = ctx.sampled
            trace_id = ctx.trace_id
            parent_id = ctx.span_id
        return Span(
            self,
            name,
            trace_id,
            random.getrandbits(63),
            parent_id,
            recording,
            attrs or None,
        )

    def current_context(self) -> SpanContext | None:
        """The context of the thread's current recording span, if any."""
        if not self.enabled:
            return None
        current = _CURRENT.get()
        if current is None or not current.recording:
            return None
        return current.context

    def record_span(self, name: str, start: float, end: float, parent=None, **attrs) -> None:
        """Record an already-timed operation as a completed span.

        The hook for phase listeners (:class:`~repro.utils.timing.Stopwatch`):
        the work was measured elsewhere; this just files it under
        ``parent`` (default: the current span).  Without a recording
        parent nothing is recorded — timed phases outside any traced
        request are not worth orphan roots.
        """
        if not self.enabled:
            return
        ctx = _coerce_parent(parent)
        if ctx is None:
            ctx = self.current_context()
        if ctx is None or not ctx.sampled:
            return
        self._record(
            {
                "type": "span",
                "trace": ctx.trace_id,
                "span": random.getrandbits(63),
                "parent": ctx.span_id,
                "name": name,
                "start": start,
                "end": end,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "attrs": dict(attrs) if attrs else {},
                "events": [],
            }
        )

    def event(self, name: str, **attrs) -> None:
        """Attach a point event to the current span (drop it otherwise)."""
        if not self.enabled:
            return
        current = _CURRENT.get()
        if current is not None and current.recording:
            current.event(name, **attrs)

    def phase_listener(self) -> Callable[[str, float], None]:
        """A :class:`~repro.utils.timing.Stopwatch` listener recording phases.

        Each measured section becomes a ``phase:<name>`` span under the
        listener thread's current span (the replica lease in thread
        mode, the worker's query span in process mode).
        """

        def listen(name: str, elapsed: float) -> None:
            end = time.time()
            self.record_span(f"phase:{name}", end - elapsed, end)

        return listen

    # -- buffering -----------------------------------------------------------
    def _record(self, record: dict) -> None:
        with self._lock:
            if len(self._records) >= self._max_spans:
                self.dropped += 1
                return
            self._records.append(record)

    def ingest(self, records: Iterable[dict]) -> None:
        """Adopt finished span records produced elsewhere (worker replies).

        Worker-side spans already carry the caller's trace id and parent
        span id (propagated over the wire), so adoption is a plain
        buffer append — the re-parenting happened at creation time.
        """
        if not self.enabled:
            return
        for record in records:
            self._record(dict(record))

    def take(self) -> list[dict]:
        """Drain and return the buffered records (worker → reply shipping)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def spans(self) -> list[dict]:
        """A snapshot copy of the buffered records."""
        with self._lock:
            return [dict(record) for record in self._records]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- exporters -------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The buffered trace as Chrome trace event JSON (Perfetto-loadable).

        Spans become ``ph: "X"`` complete events (µs timestamps on the
        shared epoch clock, so parent and worker rows line up); span
        events become ``ph: "i"`` instants.
        """
        events: list[dict] = []
        for record in self.spans():
            ts = record["start"] * 1e6
            events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": "repro",
                    "ts": ts,
                    "dur": max(0.0, (record["end"] - record["start"]) * 1e6),
                    "pid": record["pid"],
                    "tid": record["tid"],
                    "args": {
                        "trace": f"{record['trace']:x}",
                        "span": f"{record['span']:x}",
                        "parent": None
                        if record["parent"] is None
                        else f"{record['parent']:x}",
                        **record["attrs"],
                    },
                }
            )
            for name, when, attrs in record["events"]:
                events.append(
                    {
                        "ph": "i",
                        "name": name,
                        "cat": "repro",
                        "ts": when * 1e6,
                        "pid": record["pid"],
                        "tid": record["tid"],
                        "s": "t",
                        "args": dict(attrs),
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event count."""
        trace = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
            handle.write("\n")
        return len(trace["traceEvents"])

    def export_jsonl(self, path: str) -> int:
        """Write one JSON record per line to ``path``; returns the line count."""
        records = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record))
                handle.write("\n")
        return len(records)


# -- metrics ---------------------------------------------------------------

#: Default histogram buckets: request latencies from 1 ms to 60 s.
LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Default histogram buckets for sizes/counts (powers of two to 1024).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


class _Child:
    """One labelled series of a family (all mutation under the family lock)."""

    __slots__ = ("_family", "value", "bucket_counts", "sum", "count")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0
        if family.kind == "histogram":
            self.bucket_counts = [0] * (len(family.buckets) + 1)
            self.sum = 0.0
            self.count = 0

    def inc(self, amount: float = 1.0) -> None:
        with self._family.lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._family.lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._family.lock:
            self.value = float(value)

    def get(self) -> float:
        with self._family.lock:
            return self.value

    def observe(self, value: float) -> None:
        family = self._family
        index = bisect_left(family.buckets, value)
        with family.lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


class _Family:
    """One named metric family: a kind, label names, and its children."""

    __slots__ = ("name", "help", "kind", "labelnames", "buckets", "lock", "children")

    def __init__(self, name: str, help_text: str, kind: str, labelnames: tuple, buckets=()):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = tuple(sorted(buckets))
        self.lock = threading.Lock()
        self.children: dict[tuple, _Child] = {}

    def labels(self, **labels) -> _Child:
        """The child series for one label-value assignment."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self.lock:
            child = self.children.get(key)
            if child is None:
                child = self.children[key] = _Child(self)
            return child

    def _default(self) -> _Child:
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} needs labels {list(self.labelnames)}")
        return self.labels()

    # Label-less convenience: family proxies straight to its only child.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def get(self) -> float:
        return self._default().get()

    def observe(self, value: float) -> None:
        self._default().observe(value)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: tuple, key: tuple, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in zip(labelnames, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms with Prometheus output.

    Instruments are created idempotently — asking twice for the same
    name returns the same family (and raises on a kind mismatch), so
    independently constructed components can share one registry without
    coordinating.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, name: str, help_text: str, kind: str, labelnames, buckets=()) -> _Family:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                return family
            family = _Family(name, help_text, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labelnames=()) -> _Family:
        """A monotonically increasing counter family."""
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames=()) -> _Family:
        """A set/inc/dec gauge family."""
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(
        self, name: str, help_text: str = "", labelnames=(), buckets=LATENCY_BUCKETS
    ) -> _Family:
        """A fixed-bucket histogram family (cumulative Prometheus buckets)."""
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            with family.lock:
                children = sorted(family.children.items())
                if family.kind == "histogram":
                    for key, child in children:
                        cumulative = 0
                        for bound, count in zip(family.buckets, child.bucket_counts):
                            cumulative += count
                            labels = _label_str(
                                family.labelnames, key, f'le="{_format_value(bound)}"'
                            )
                            lines.append(f"{family.name}_bucket{labels} {cumulative}")
                        cumulative += child.bucket_counts[-1]
                        labels = _label_str(family.labelnames, key, 'le="+Inf"')
                        lines.append(f"{family.name}_bucket{labels} {cumulative}")
                        plain = _label_str(family.labelnames, key)
                        lines.append(f"{family.name}_sum{plain} {_format_value(child.sum)}")
                        lines.append(f"{family.name}_count{plain} {child.count}")
                else:
                    for key, child in children:
                        labels = _label_str(family.labelnames, key)
                        lines.append(
                            f"{family.name}{labels} {_format_value(child.value)}"
                        )
        return "\n".join(lines) + "\n"


class Telemetry:
    """The per-session observability bundle: one tracer + one registry.

    ``Telemetry()`` is the always-safe default — tracing disabled (the
    :data:`NOOP_SPAN` fast path), metrics live.  ``Telemetry(tracing=True)``
    turns on span collection, optionally sampled.
    """

    def __init__(
        self,
        *,
        tracing: bool = False,
        sample: float = 1.0,
        max_spans: int = 100_000,
        metrics: MetricsRegistry | None = None,
    ):
        self.tracer = Tracer(enabled=tracing, sample=sample, max_spans=max_spans)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def coerce(cls, value) -> "Telemetry":
        """``None``/``False`` → disabled, ``True`` → tracing, instance → itself."""
        if isinstance(value, cls):
            return value
        if value is None or value is False:
            return cls()
        if value is True:
            return cls(tracing=True)
        raise TypeError(f"cannot interpret {value!r} as telemetry configuration")

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def summary(self) -> dict[str, object]:
        """A small introspection blob (for ``stats()`` surfaces)."""
        return {
            "tracing": self.tracer.enabled,
            "sample": self.tracer.sample,
            "spans": len(self.tracer),
            "dropped_spans": self.tracer.dropped,
        }


def span_tree(records: Iterable[dict]) -> dict[int | None, list[dict]]:
    """Group span records by parent id: ``{parent_span_id: [children]}``.

    A convenience for tests and tools walking an exported trace —
    ``tree[None]`` are the roots; recurse via each record's ``"span"``.
    """
    tree: dict[int | None, list[dict]] = {}
    for record in records:
        tree.setdefault(record.get("parent"), []).append(record)
    return tree


__all__ = [
    "LATENCY_BUCKETS",
    "NOOP_SPAN",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Telemetry",
    "Tracer",
    "span_tree",
]
