"""Manager-independent wire format for cross-process query serving.

Architecture: in the **session → shards → pool → backend** pipeline this
module defines what may *cross a process boundary*.  A
:class:`~repro.service.procpool.ProcessBackendPool` hosts full backend
replicas in worker processes; nothing manager-bound — FDD nodes, FDD
managers, compiled plans — and no policy ASTs are ever pickled.  Instead:

* **plans** travel as the ``(fields, stage_specs)`` payloads of
  :meth:`~repro.backends.matrix.MatrixBackend.plan_payload` — per-stage
  FDD node lists (plain tuples from
  :func:`~repro.core.fdd.node.node_to_spec`) plus loop domains, published
  once per (worker, plan) and rebuilt worker-side into the worker's own
  manager;
* **queries** travel as :class:`QuerySpec` values — a plan id, a kind,
  the ingress *seeds* as packet specs, and optional params;
* **answers** travel back as :class:`ResultSpec` values — per ingress
  packet spec, the output distribution as ``(outcome spec, probability)``
  pairs whose probabilities keep their exact Python type
  (:class:`~fractions.Fraction` for exact loop-free masses, ``float`` for
  ``splu``-solved loop masses), so exact results survive the boundary
  bit-for-bit.

A *packet spec* is the canonical ``tuple(sorted((field, value), ...))``
of the packet's fields; the outcome spec ``None`` encodes the drop
outcome.  Everything in this module is plain immutable Python data
(tuples, strings, ints, floats, Fractions), picklable by construction
and independent of any FDD manager, so one long-lived worker can serve
payloads for arbitrarily many destinations and loop bodies over its
lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.distributions import Dist
from repro.core.interpreter import Outcome
from repro.core.packet import DROP, Packet, _DropType

#: A packet on the wire: canonical sorted (field, value) tuples.
PacketSpec = tuple
#: An outcome on the wire: a packet spec, or ``None`` for drop.
OutcomeSpec = PacketSpec | None
#: A distribution on the wire: ((outcome spec, probability), ...).
DistSpec = tuple

# -- streaming error contract --------------------------------------------------
# Stable error codes of the JSON-lines front end (repro.service.server).
# A reply's {"error": {"code", "message", "retry"}} carries one of these;
# `retry` tells the client whether resending the SAME query can succeed.
ERROR_BAD_REQUEST = "bad-request"
ERROR_OVERLOADED = "overloaded"
ERROR_UNAVAILABLE = "unavailable"
ERROR_DEADLINE_EXCEEDED = "deadline-exceeded"
ERROR_SHUTTING_DOWN = "shutting-down"
ERROR_INTERNAL = "internal"
# Not retryable: resending the same oversized line fails identically
# (the server refuses it before parsing; raise the server's
# max_line_bytes instead).
ERROR_TOO_LARGE = "too-large"

#: Codes a client should retry after backing off: transient conditions
#: (admission queue full; replica pool healing after a worker crash) —
#: as opposed to semantic errors, which would fail identically again.
RETRYABLE_ERROR_CODES = frozenset({ERROR_OVERLOADED, ERROR_UNAVAILABLE})


def error_payload(code: str, message: str, retry: bool | None = None) -> dict:
    """The standard body of a wire error reply (the ``"error"`` object).

    ``retry`` defaults to the code's class: transient codes
    (:data:`RETRYABLE_ERROR_CODES`) are retryable, everything else is
    terminal.
    """
    if retry is None:
        retry = code in RETRYABLE_ERROR_CODES
    return {"code": code, "message": message, "retry": bool(retry)}


def packet_to_spec(packet: Packet) -> PacketSpec:
    """The canonical picklable spec of a concrete packet."""
    return tuple(sorted(packet.as_dict().items()))


def packet_from_spec(spec: Iterable[tuple[str, int]]) -> Packet:
    """Rebuild a packet from its :func:`packet_to_spec` spec."""
    return Packet(dict(spec))


def outcome_to_spec(outcome: Outcome) -> OutcomeSpec:
    """The wire spec of an outcome (``None`` encodes drop)."""
    if isinstance(outcome, _DropType):
        return None
    return packet_to_spec(outcome)


def outcome_from_spec(spec: OutcomeSpec) -> Outcome:
    """Rebuild an outcome from its wire spec."""
    if spec is None:
        return DROP
    return packet_from_spec(spec)


def dist_to_spec(dist: Dist[Outcome]) -> DistSpec:
    """Serialize an outcome distribution, preserving exact probabilities.

    Probabilities are passed through untouched — ``Fraction`` stays
    ``Fraction``, ``float`` stays ``float`` — so a loop-free exact answer
    is still exact after the round trip.
    """
    return tuple(
        (outcome_to_spec(outcome), prob) for outcome, prob in dist.items()
    )


def dist_from_spec(spec: DistSpec | Iterable[tuple]) -> Dist[Outcome]:
    """Rebuild an outcome distribution from its wire spec."""
    return Dist(
        {outcome_from_spec(entry): prob for entry, prob in spec}, check=False
    )


@dataclass(frozen=True)
class QuerySpec:
    """One shard-shaped unit of cross-process work.

    Attributes
    ----------
    plan:
        The id of a plan previously shipped to the worker (the worker
        rejects unknown ids — plans are registered explicitly, never
        compiled on demand worker-side).
    kind:
        What to compute.  ``"distributions"`` — the only kind workers
        need today — asks for the per-ingress output distributions; the
        richer query kinds (delivery probability, expected hops) are
        *derived from distributions in the parent*, which keeps delivered
        predicates (ASTs) out of the wire format.
    ingress:
        The ingress seed packets, as canonical packet specs.
    params:
        Optional ``(name, value)`` pairs parameterising the computation;
        reserved for future kinds (must be picklable plain data).
    trace:
        Optional trace propagation context as a plain
        ``(trace_id, span_id, sampled)`` tuple (see
        :class:`~repro.service.telemetry.SpanContext`).  When present,
        the worker traces its side of the query — plan adoption and
        solver phases — parented under ``span_id``, and ships the
        finished span records back in the reply's stats blob.  ``None``
        (the default) keeps the untraced path entirely telemetry-free.
    """

    plan: int
    kind: str
    ingress: tuple
    params: tuple = ()
    trace: tuple | None = None

    @classmethod
    def distributions(
        cls, plan: int, packets: Iterable[Packet], trace: tuple | None = None
    ) -> "QuerySpec":
        """The distribution query over concrete ingress packets."""
        return cls(
            plan,
            "distributions",
            tuple(packet_to_spec(pk) for pk in packets),
            trace=trace,
        )

    def ingress_packets(self) -> list[Packet]:
        """The concrete ingress packets (worker-side decode)."""
        return [packet_from_spec(entry) for entry in self.ingress]


@dataclass(frozen=True)
class ResultSpec:
    """The worker's answer to one :class:`QuerySpec`.

    ``entries`` maps each requested ingress packet spec to its output
    distribution spec, in the request's ingress order.  Only plain data:
    decoding on the parent side rebuilds real :class:`Packet` /
    :class:`~repro.core.distributions.Dist` values.
    """

    plan: int
    entries: tuple

    @classmethod
    def from_distributions(
        cls, plan: int, dists: Mapping[Packet, Dist[Outcome]]
    ) -> "ResultSpec":
        """Encode a worker's ``{packet: distribution}`` answer."""
        return cls(
            plan,
            tuple(
                (packet_to_spec(packet), dist_to_spec(dist))
                for packet, dist in dists.items()
            ),
        )

    def to_distributions(self) -> dict[Packet, Dist[Outcome]]:
        """Decode into concrete packets and distributions (parent side)."""
        return {
            packet_from_spec(packet_spec): dist_from_spec(dist_spec)
            for packet_spec, dist_spec in self.entries
        }


__all__ = [
    "ERROR_BAD_REQUEST",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_INTERNAL",
    "ERROR_OVERLOADED",
    "ERROR_SHUTTING_DOWN",
    "ERROR_TOO_LARGE",
    "ERROR_UNAVAILABLE",
    "RETRYABLE_ERROR_CODES",
    "DistSpec",
    "OutcomeSpec",
    "PacketSpec",
    "QuerySpec",
    "ResultSpec",
    "error_payload",
    "dist_from_spec",
    "dist_to_spec",
    "outcome_from_spec",
    "outcome_to_spec",
    "packet_from_spec",
    "packet_to_spec",
]
