"""repro.service — a persistent, sharded, concurrent analysis engine.

The paper's scalability story is *compile once, query many times*; this
subsystem is that story turned into a serving layer.  Where the
functions in :mod:`repro.analysis` historically re-entered module-level
code with per-call engine setup, a :class:`AnalysisSession` holds
compiled state for as long as you keep it open and answers arbitrary
streams of queries against it.

Architecture (**session → shards → backend**):

* :mod:`repro.service.session` — the :class:`AnalysisSession`: one
  shared backend (one FDD manager, one family of ``splu``
  factorizations, one worker pool), one compiled model per destination,
  and a canonical-FDD-keyed result cache;
* :mod:`repro.service.shards` — pluggable :class:`ShardPlanner`
  strategies (by destination, by ingress block, round-robin) that cut a
  batch into exact partitions;
* :mod:`repro.service.executor` — the persistent :class:`ShardExecutor`
  running shards concurrently;
* :mod:`repro.service.results` — :class:`Query`, :class:`ResultSet`,
  and per-shard reports;
* :mod:`repro.service.cli` — ``python -m repro.service``, serving a
  batch query file against a topology + routing scheme.

Quick start::

    from repro.service import AnalysisSession, Query

    session = AnalysisSession(model_factory=lambda dest: build_model(...))
    batch = [Query.delivery((sw, pt), dest) for ...]
    results = session.query_batch(batch)       # sharded, cached, concurrent
    session.close()

Sessions also satisfy the analysis engine protocol, so every
``repro.analysis`` entry point accepts ``session=`` (or the session as
``backend=``) and gains the session's caches transparently.
"""

from repro.service.executor import ShardExecutor
from repro.service.results import (
    QUERY_KINDS,
    Query,
    QueryResult,
    ResultSet,
    ShardReport,
)
from repro.service.session import AnalysisSession
from repro.service.shards import (
    PLANNERS,
    ByDestinationPlanner,
    ByIngressBlockPlanner,
    RoundRobinPlanner,
    Shard,
    ShardPlanner,
    get_planner,
    validate_partition,
)

__all__ = [
    "PLANNERS",
    "QUERY_KINDS",
    "AnalysisSession",
    "ByDestinationPlanner",
    "ByIngressBlockPlanner",
    "Query",
    "QueryResult",
    "ResultSet",
    "RoundRobinPlanner",
    "Shard",
    "ShardExecutor",
    "ShardPlanner",
    "ShardReport",
    "get_planner",
    "validate_partition",
]
