"""repro.service — a persistent, sharded, concurrent analysis engine.

The paper's scalability story is *compile once, query many times*; this
subsystem is that story turned into a serving layer.  Where the
functions in :mod:`repro.analysis` historically re-entered module-level
code with per-call engine setup, a :class:`AnalysisSession` holds
compiled state for as long as you keep it open and answers arbitrary
streams of queries against it.

Architecture (**session → shards → pool → backend**):

* :mod:`repro.service.session` — the :class:`AnalysisSession`: one
  compiled model per destination, a canonical-spec-keyed result cache,
  and a pool of backend replicas;
* :mod:`repro.service.pool` — the :class:`BackendPool`: N independent
  backend replicas (own FDD manager, plan caches, and ``splu``
  factorizations each; only immutable compiled-plan specs are shared),
  leased exclusively per shard with destination affinity routing and
  work-stealing — the layer that makes sharded execution genuinely
  parallel instead of serialising on one session-wide solver lock;
* :mod:`repro.service.procpool` — the :class:`ProcessBackendPool`:
  the same lease protocol, but every replica lives in its own worker
  process fed by the manager-independent wire format of
  :mod:`repro.service.wire`, so the GIL-bound compile-rebuild and
  matrix-assembly phases parallelise too (``pool_mode="process"``);
* :mod:`repro.service.shards` — pluggable :class:`ShardPlanner`
  strategies (by destination, by ingress block, round-robin) that cut a
  batch into exact partitions and tag shards with affinity hints;
* :mod:`repro.service.executor` — the persistent :class:`ShardExecutor`
  running shards concurrently;
* :mod:`repro.service.results` — :class:`Query`, :class:`ResultSet`,
  and per-shard reports;
* :mod:`repro.service.cli` — ``python -m repro.service``, serving a
  batch query file against a topology + routing scheme;
* :mod:`repro.service.coalesce` — the :class:`BatchCoalescer`: an
  admission window that merges queries arriving from *different*
  clients into one coalesced batch, with bounded-queue backpressure,
  per-query deadlines, and poisoned-batch isolation;
* :mod:`repro.service.server` — the :class:`QueryServer`:
  ``python -m repro.service serve``, an asyncio JSON-lines-over-TCP
  streaming front end with per-reply correlation ids, graceful lossless
  drain, and a queue-depth :class:`PoolAutoscaler`;
* :mod:`repro.service.transport` — the :class:`Transport` abstraction
  under process-hosted replicas: :class:`PipeTransport` wraps today's
  duplex pipe, :class:`SocketTransport` speaks length-prefixed,
  CRC-checksummed frames over TCP, with typed failures
  (:class:`TransportClosed`, :class:`FrameError`) instead of hangs or
  pickle errors;
* :mod:`repro.service.host` — the worker-host daemon
  (``python -m repro.service host``): serves locally-supervised worker
  replicas over TCP to a :class:`RemoteBackendPool`
  (``pool_mode="remote"``), which runs the *same* lease/affinity/steal
  protocol across machines with heartbeat-based partition detection,
  reconnect with exponential backoff, and transparent host failover;
* :mod:`repro.service.faults` — the :class:`FaultPlan` fault-injection
  harness (``REPRO_FAULTS``): deterministic worker kills, reply delays,
  dropped pipes, and transport-level network faults (partitions,
  garbled frames, stalls) for chaos-testing the supervision layer;
* :mod:`repro.service.telemetry` — zero-dependency observability: a
  :class:`Tracer` producing one span tree per request (``request →
  shard → lease → worker:query → phase:*``, propagated across the
  process boundary and re-parented on return), a
  :class:`MetricsRegistry` of counters/gauges/histograms, and
  exporters for Perfetto (Chrome trace JSON), JSONL, and Prometheus
  text exposition — all off by default with a constant-cost disabled
  path.

Fault tolerance: replica failure is supervised and recoverable — a
crashed or hung worker is quarantined, respawned in place (plans
re-shipped as specs), and its shard transparently retried on a healthy
replica (:class:`ReplicaFailure` → bounded retry →
:class:`PoolUnavailable`); streamed clients see at most a retryable
``unavailable`` error (:class:`Unavailable`).

Quick start::

    from repro.service import AnalysisSession, Query

    session = AnalysisSession(model_factory=lambda dest: build_model(...))
    batch = [Query.delivery((sw, pt), dest) for ...]
    results = session.query_batch(batch)       # sharded, cached, concurrent
    session.close()

Sessions also satisfy the analysis engine protocol, so every
``repro.analysis`` entry point accepts ``session=`` (or the session as
``backend=``) and gains the session's caches transparently.
"""

from repro.service.coalesce import (
    BatchCoalescer,
    CoalescedAnswer,
    DeadlineExceeded,
    Overloaded,
    QueryRejected,
    ShuttingDown,
    Unavailable,
)
from repro.service.executor import ShardExecutor
from repro.service.faults import Fault, FaultPlan
from repro.service.host import HostServer
from repro.service.pool import (
    BackendPool,
    PoolUnavailable,
    Replica,
    ReplicaFailure,
)
from repro.service.procpool import (
    ProcessBackendPool,
    RemoteBackendPool,
    RemoteWorkerHandle,
    ReplicaClient,
    WorkerHandle,
)
from repro.service.results import (
    QUERY_KINDS,
    Query,
    QueryResult,
    ResultSet,
    ShardReport,
)
from repro.service.server import PoolAutoscaler, QueryServer, StreamClient
from repro.service.session import AnalysisSession
from repro.service.shards import (
    PLANNERS,
    ByDestinationPlanner,
    ByIngressBlockPlanner,
    RoundRobinPlanner,
    Shard,
    ShardPlanner,
    get_planner,
    validate_partition,
)
from repro.service.telemetry import (
    MetricsRegistry,
    SpanContext,
    Telemetry,
    Tracer,
    span_tree,
)
from repro.service.transport import (
    FrameError,
    PipeTransport,
    SocketTransport,
    Transport,
    TransportClosed,
    TransportError,
)
from repro.service.wire import QuerySpec, ResultSpec

__all__ = [
    "PLANNERS",
    "QUERY_KINDS",
    "AnalysisSession",
    "BackendPool",
    "BatchCoalescer",
    "ByDestinationPlanner",
    "ByIngressBlockPlanner",
    "CoalescedAnswer",
    "DeadlineExceeded",
    "Fault",
    "FaultPlan",
    "FrameError",
    "HostServer",
    "MetricsRegistry",
    "Overloaded",
    "PipeTransport",
    "PoolAutoscaler",
    "PoolUnavailable",
    "ProcessBackendPool",
    "Query",
    "QueryRejected",
    "QueryResult",
    "QuerySpec",
    "QueryServer",
    "RemoteBackendPool",
    "RemoteWorkerHandle",
    "Replica",
    "ReplicaClient",
    "ReplicaFailure",
    "ResultSet",
    "ResultSpec",
    "RoundRobinPlanner",
    "Shard",
    "ShardExecutor",
    "ShardPlanner",
    "ShardReport",
    "ShuttingDown",
    "SocketTransport",
    "SpanContext",
    "StreamClient",
    "Telemetry",
    "Tracer",
    "Transport",
    "TransportClosed",
    "TransportError",
    "Unavailable",
    "WorkerHandle",
    "get_planner",
    "span_tree",
    "validate_partition",
]
