"""Asyncio streaming front end: JSON lines over TCP, coalesced serving.

Architecture: the streaming pipeline is **connections → coalescer →
session → shards → pool**.  A :class:`QueryServer` accepts any number of
concurrent client connections speaking newline-delimited JSON; every
query line is admitted into the shared
:class:`~repro.service.coalesce.BatchCoalescer`, whose admission window
merges queries *across clients* into batches that travel the existing
sharded pipeline (planner → replica pool → multi-RHS solves).  Replies
stream back the moment their shard completes — per query, correlated by
the client's own ``id``, in completion order, over the connection that
asked.

Wire protocol (one JSON object per line, both directions)::

    → {"id": 7, "kind": "delivery", "ingress": [1, 10], "dest": 2}
    ← {"id": 7, "kind": "delivery", "value": 0.9994, "cached": false,
       "batched": 28}

    → {"id": 8, "ingress": [3, 10], "dest": 99, "deadline_ms": 50}
    ← {"id": 8, "error": {"code": "deadline-exceeded",
       "message": "...", "retry": false}}

    → {"op": "stats", "id": 9}
    ← {"id": 9, "stats": {...}}

``kind`` defaults to ``"delivery"``; ``deadline_ms`` is a per-query
relative deadline; error codes (see :mod:`repro.service.wire`) are
``bad-request``, ``overloaded`` (retryable — the backpressure
slow-down), ``unavailable`` (retryable — a backend replica crashed and
the pool is respawning it), ``deadline-exceeded``, ``shutting-down``,
``too-large`` (non-retryable — the request line exceeded the server's
``max_line_bytes``; the line is discarded and the connection survives),
and ``internal``.  :meth:`StreamClient.request` honours ``retry: true``
with exponential backoff + full jitter when asked to
(``retries=N``).  Control ops: ``ping``, ``stats``, ``metrics`` (the
session's counters and histograms in Prometheus text exposition
format, as one JSON string field).

Shutdown is a lossless drain: :meth:`QueryServer.stop` stops accepting
connections and admissions, flushes the pending admission window, waits
for every in-flight answer to be *written to its client*, and only then
closes connections (and the session, when the server owns it).

A :class:`PoolAutoscaler` rides along: it watches the coalescer's queue
depth and grows/shrinks the session's backend replica pool
(:meth:`~repro.service.session.AnalysisSession.resize_pool`) between a
configured floor and ceiling — in process mode that is literally
starting and stopping worker processes under load.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import random
import time
from typing import Callable

from repro.service.coalesce import (
    BatchCoalescer,
    QueryRejected,
    classify_failure,
    coerce_stream_query,
)
from repro.service.results import _json_value
from repro.service.wire import error_payload


class PoolAutoscaler:
    """Grow/shrink the session's replica pool from admission-queue depth.

    Sizing rule: the desired replica count is ``ceil(depth /
    target_depth)`` clamped to ``[min_size, max_size]`` — one replica per
    ``target_depth`` outstanding queries.  Growth applies immediately
    (queues hurt now); shrinking waits for ``patience`` consecutive
    observations wanting a smaller pool (hysteresis, so a gap between
    bursts does not thrash worker processes).  Resizes run on a worker
    thread because shrinking blocks until the retired replicas' leases
    drain.
    """

    def __init__(
        self,
        session,
        depth_fn: Callable[[], int],
        *,
        min_size: int = 1,
        max_size: int = 4,
        target_depth: int = 32,
        interval: float = 0.05,
        patience: int = 4,
    ):
        if min_size < 1 or max_size < min_size:
            raise ValueError("need 1 <= min_size <= max_size")
        if target_depth < 1:
            raise ValueError("target_depth must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self._session = session
        self._depth_fn = depth_fn
        self.min_size = min_size
        self.max_size = max_size
        self.target_depth = target_depth
        self.interval = interval
        self.patience = patience
        self._shrink_votes = 0
        self._grow_events = 0
        self._shrink_events = 0
        self._task: asyncio.Task | None = None

    def plan(self, depth: int) -> int | None:
        """The next pool size for ``depth`` outstanding queries, or ``None``.

        Pure decision logic (the async loop just applies it), so the
        grow-now/shrink-later hysteresis is unit-testable without a
        server.
        """
        size = self._session.pool_size
        desired = max(self.min_size, min(self.max_size, math.ceil(depth / self.target_depth)))
        if desired > size:
            self._shrink_votes = 0
            return desired
        if desired < size:
            self._shrink_votes += 1
            if self._shrink_votes >= self.patience:
                self._shrink_votes = 0
                return desired
            return None
        self._shrink_votes = 0
        return None

    async def _apply(self, size: int) -> None:
        loop = asyncio.get_running_loop()
        before = self._session.pool_size
        await loop.run_in_executor(None, self._session.resize_pool, size)
        if size > before:
            self._grow_events += 1
        elif size < before:
            self._shrink_events += 1

    async def run(self) -> None:
        """The periodic observe → plan → resize loop (cancelled on stop)."""
        while True:
            await asyncio.sleep(self.interval)
            desired = self.plan(self._depth_fn())
            if desired is not None:
                await self._apply(desired)

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def stats(self) -> dict[str, object]:
        return {
            "pool_size": self._session.pool_size,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "target_depth": self.target_depth,
            "grow_events": self._grow_events,
            "shrink_events": self._shrink_events,
        }


#: Transport write-buffer size above which a sender awaits ``drain()``.
#: Below it, writes just buffer: one reply per drain would serialise the
#: reply path on kernel round-trips and dominate per-query latency.
_DRAIN_THRESHOLD = 64 * 1024

#: Default bound on one JSON line, both directions (server request lines
#: and client reply lines).  asyncio's StreamReader default is 64 KiB,
#: which a legitimate large batch request (or a distribution reply) can
#: exceed — and past it ``readline``/``readuntil`` *raise*, killing the
#: connection.  1 MiB admits any realistic query line; genuinely
#: oversized lines are refused in-protocol with a non-retryable
#: ``too-large`` error instead of a dropped connection.
DEFAULT_MAX_LINE = 1024 * 1024

#: :meth:`QueryServer._read_line` sentinel: an oversized line was
#: consumed and refused; the connection lives on.
_OVERSIZE = object()


class _Connection:
    """One client connection: its writer, a write lock, and its tasks."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()

    async def send(self, payload: dict) -> None:
        """Write one JSON line; drain only under genuine buffer pressure."""
        data = json.dumps(payload).encode("utf-8") + b"\n"
        self.writer.write(data)
        if self.writer.transport.get_write_buffer_size() > _DRAIN_THRESHOLD:
            async with self.lock:
                await self.writer.drain()


class QueryServer:
    """The asyncio JSON-lines front end over one ``AnalysisSession``.

    Parameters
    ----------
    session:
        The serving session (its planner, replica pool, and result cache
        do the actual work).
    host / port:
        Listen address; ``port=0`` picks a free port (see :attr:`port`).
    window / max_batch / max_pending:
        Admission-window knobs, passed to the
        :class:`~repro.service.coalesce.BatchCoalescer`.
    default_deadline:
        Optional default per-query deadline in seconds, applied when a
        query carries no ``deadline_ms`` of its own.
    autoscale_max:
        Enable the :class:`PoolAutoscaler` with this ceiling (the floor
        is the session's starting pool size).  ``None`` disables
        autoscaling.
    autoscale_target / autoscale_interval / autoscale_patience:
        Autoscaler tuning (queries per replica, observation period,
        shrink hysteresis).
    owns_session:
        Close the session when the server stops (the CLI sets this; an
        embedding application managing its own session does not).
    max_line_bytes:
        Bound on one request line (default 1 MiB).  A longer line is
        answered with a non-retryable ``too-large`` error and discarded;
        the connection — and every other in-flight query on it — keeps
        working.
    """

    def __init__(
        self,
        session,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = 0.004,
        max_batch: int = 256,
        max_pending: int = 1024,
        default_deadline: float | None = None,
        autoscale_max: int | None = None,
        autoscale_target: int = 32,
        autoscale_interval: float = 0.05,
        autoscale_patience: int = 4,
        owns_session: bool = False,
        max_line_bytes: int = DEFAULT_MAX_LINE,
    ):
        if max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")
        self.session = session
        self.host = host
        self._requested_port = port
        self.max_line_bytes = max_line_bytes
        self._oversize_refused = 0
        self.default_deadline = default_deadline
        self._owns_session = owns_session
        self.coalescer = BatchCoalescer(
            session,
            window=window,
            max_batch=max_batch,
            max_pending=max_pending,
            telemetry=getattr(session, "telemetry", None),
        )
        self.autoscaler: PoolAutoscaler | None = None
        if autoscale_max is not None:
            self.autoscaler = PoolAutoscaler(
                session,
                lambda: self.coalescer.depth,
                min_size=session.pool_size,
                max_size=max(autoscale_max, session.pool_size),
                target_depth=autoscale_target,
                interval=autoscale_interval,
                patience=autoscale_patience,
            )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._stopped = asyncio.Event()
        self._stopping = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queries_admitted = 0
        self._connections_served = 0

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind the listener (and the autoscaler); returns ``self``."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_client, self.host, self._requested_port,
            limit=self.max_line_bytes,
        )
        if self.autoscaler is not None:
            self.autoscaler.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Ask the serve loop to stop (thread-safe; used by signal/CLI)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stopped.set)

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or :meth:`stop`) is called."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful, lossless shutdown (idempotent).

        Ordered drain: (1) stop accepting connections; (2) stop the
        autoscaler; (3) close the coalescer — new submissions are refused
        with ``shutting-down``, the pending admission window flushes
        immediately, and every in-flight query runs to its answer;
        (4) wait until each of those answers has been *written* to its
        client; (5) close the connections; (6) close the session if this
        server owns it (off the event loop — session close drains its own
        executor and pool).
        """
        self._stopping = True
        self._stopped.set()
        if self._server is not None:
            self._server.close()  # stops accepting; existing sockets live on
        if self.autoscaler is not None:
            await self.autoscaler.stop()
        await self.coalescer.aclose()
        pending = [task for conn in self._connections for task in conn.tasks]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for conn in list(self._connections):
            await self._close_connection(conn)
        if self._server is not None:
            # Only after the drain: wait_closed blocks until every client
            # transport is gone, so awaiting it earlier would deadlock
            # against the connections the drain still needs to answer.
            await self._server.wait_closed()
        if self._owns_session:
            await asyncio.get_running_loop().run_in_executor(None, self.session.close)

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _close_connection(self, conn: _Connection) -> None:
        self._connections.discard(conn)
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- connection handling ---------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self._connections_served += 1
        try:
            while True:
                line = await self._read_line(conn, reader)
                if line is _OVERSIZE:
                    continue  # refused in-protocol; the connection lives on
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(conn, line)
                )
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        except (ConnectionError, OSError):
            pass
        finally:
            # Replies for everything this client asked are flushed before
            # its connection closes, even on a half-closed stream.
            if conn.tasks:
                await asyncio.gather(*list(conn.tasks), return_exceptions=True)
            if not self._stopping:
                await self._close_connection(conn)

    async def _read_line(self, conn: _Connection, reader: asyncio.StreamReader):
        """One request line, ``b""`` at EOF, or :data:`_OVERSIZE`.

        ``readline`` past the stream limit *raises* (asyncio buffers the
        partial line and ``LimitOverrunError``/``ValueError`` escapes),
        which historically killed the whole connection at the default
        64 KiB limit.  Here the limit is ``max_line_bytes`` (via
        ``start_server(limit=...)``), and a line that still exceeds it is
        handled in-protocol: answer a non-retryable ``too-large`` error,
        discard bytes until the line's newline goes by, and keep serving
        the connection.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            return exc.partial  # unterminated final line (or b"" at EOF)
        except asyncio.LimitOverrunError as exc:
            self._oversize_refused += 1
            await self._send_error(
                conn,
                None,
                "too-large",
                f"request line exceeds {self.max_line_bytes} bytes; "
                "it was discarded (raise the server's max_line_bytes "
                "to admit larger lines)",
            )
            overrun = exc.consumed
            while True:
                # Drain the buffered prefix, then look for the newline
                # again; a very long line may overrun several times.
                while overrun > 0:
                    chunk = await reader.read(min(overrun, 1 << 16))
                    if not chunk:
                        return b""
                    overrun -= len(chunk)
                try:
                    await reader.readuntil(b"\n")
                    return _OVERSIZE
                except asyncio.IncompleteReadError:
                    return b""
                except asyncio.LimitOverrunError as exc:
                    overrun = exc.consumed

    async def _serve_line(self, conn: _Connection, line: bytes) -> None:
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            await self._send_error(conn, None, "bad-request", f"invalid JSON: {exc}")
            return
        if not isinstance(message, dict):
            await self._send_error(
                conn, None, "bad-request", "each line must be a JSON object"
            )
            return
        qid = message.get("id")
        op = message.get("op")
        if op is not None:
            await self._serve_op(conn, qid, op)
            return
        try:
            query = coerce_stream_query(message)
        except (TypeError, ValueError, KeyError) as exc:
            await self._send_error(conn, qid, "bad-request", str(exc))
            return
        deadline = self._deadline_for(message)
        try:
            answer = await self.coalescer.submit(query, deadline=deadline)
        except QueryRejected as exc:
            await self._send_error(conn, qid, exc.code, str(exc), retry=exc.retryable)
            return
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            # Belt to the coalescer's classification braces: a raw replica
            # failure that reached this boundary is still a retryable
            # infrastructure condition, not an "internal" dead end.
            mapped = classify_failure(exc)
            if isinstance(mapped, QueryRejected):
                await self._send_error(
                    conn, qid, mapped.code, str(mapped), retry=mapped.retryable
                )
            else:
                await self._send_error(
                    conn, qid, "internal", f"{type(exc).__name__}: {exc}"
                )
            return
        self._queries_admitted += 1
        await self._send(
            conn,
            {
                "id": qid,
                "kind": query.kind,
                "value": _json_value(answer.result.value),
                "cached": answer.result.cached,
                "batched": answer.batch,
            },
        )

    async def _serve_op(self, conn: _Connection, qid, op) -> None:
        if op == "ping":
            await self._send(conn, {"id": qid, "pong": True})
        elif op == "stats":
            await self._send(conn, {"id": qid, "stats": self.stats()})
        elif op == "metrics":
            # Prometheus text exposition over the query socket: one line
            # of JSON carrying the whole scrape body, so a sidecar can
            # poll metrics without a second listener.
            metrics_fn = getattr(self.session, "metrics_text", None)
            if metrics_fn is None:
                await self._send_error(
                    conn, qid, "bad-request", "session does not expose metrics"
                )
                return
            await self._send(conn, {"id": qid, "metrics": metrics_fn()})
        else:
            await self._send_error(conn, qid, "bad-request", f"unknown op {op!r}")

    def _deadline_for(self, message: dict) -> float | None:
        deadline_ms = message.get("deadline_ms")
        if deadline_ms is not None:
            return time.monotonic() + float(deadline_ms) / 1000.0
        if self.default_deadline is not None:
            return time.monotonic() + self.default_deadline
        return None

    async def _send(self, conn: _Connection, payload: dict) -> None:
        try:
            await conn.send(payload)
        except (ConnectionError, OSError):
            pass  # client went away; its answer has nowhere to go

    async def _send_error(
        self, conn: _Connection, qid, code: str, message: str, *, retry: bool = False
    ) -> None:
        await self._send(conn, {"id": qid, "error": error_payload(code, message, retry)})

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Server + coalescer + pool counters (the ``stats`` op's payload).

        The ``pool`` block carries the supervision counters (failures,
        restarts, per-replica health) and ``retried_shards`` counts the
        crashes the session absorbed without any client noticing.
        """
        pool = self.session.pool.stats()
        return {
            "connections": len(self._connections),
            "connections_served": self._connections_served,
            "queries_answered": self._queries_admitted,
            "oversize_refused": self._oversize_refused,
            "coalescer": self.coalescer.stats(),
            "pool": {
                "mode": pool["mode"],
                "size": pool["size"],
                "steals": pool["steals"],
                "failures": pool["failures"],
                "restarts": pool["restarts"],
                "health": pool["health"],
            },
            "retried_shards": getattr(self.session, "retried_shards", 0),
            "autoscaler": self.autoscaler.stats() if self.autoscaler else None,
        }


class StreamClient:
    """A minimal asyncio client for the JSON-lines protocol (tests, demos).

    One background task reads the connection and resolves each reply to
    the future of its correlation id, so any number of requests can be in
    flight concurrently — exactly how a real client would recover the
    latency the admission window spends.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count()
        self._waiting: dict[object, asyncio.Future] = {}
        #: How many requests were resent after a retryable error reply.
        self.retries = 0
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, limit: int = DEFAULT_MAX_LINE
    ) -> "StreamClient":
        # Same raised line limit as the server: distribution replies (and
        # metrics scrapes) can legitimately exceed asyncio's 64 KiB
        # default, and past it the reader raises instead of returning.
        reader, writer = await asyncio.open_connection(host, port, limit=limit)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                future = self._waiting.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, OSError, json.JSONDecodeError) as exc:
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ConnectionError(f"stream broke: {exc}"))
            self._waiting.clear()
        finally:
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))
            self._waiting.clear()

    async def send(self, message: dict) -> asyncio.Future:
        """Send one message (auto-assigning ``id``); returns the reply future."""
        if self._reader_task.done() or self._writer.is_closing():
            # The read loop is gone: nothing will ever resolve a new
            # future, so fail fast instead of returning one that hangs.
            raise ConnectionError("connection closed")
        payload = dict(message)
        if "id" not in payload:
            payload["id"] = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiting[payload["id"]] = future
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        if self._writer.transport.get_write_buffer_size() > _DRAIN_THRESHOLD:
            await self._writer.drain()
        return future

    async def request(
        self,
        message: dict,
        *,
        retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> dict:
        """Send one message and await its reply, optionally retrying.

        With ``retries > 0``, a reply carrying a *retryable* error
        (``error.retry == true`` — the ``overloaded`` backpressure signal
        or ``unavailable`` while the pool respawns a crashed worker) is
        resent up to ``retries`` times with capped exponential backoff
        and full jitter (each delay is uniform in ``[0, min(max_backoff,
        backoff * 2**attempt)]``, so synchronized clients de-correlate
        instead of re-stampeding the server).  The final attempt's reply
        is returned either way; non-retryable errors return immediately.
        Each attempt sends a fresh copy of ``message`` (a new ``id`` is
        assigned unless the caller pinned one).
        """
        attempt = 0
        while True:
            reply = await (await self.send(dict(message)))
            error = reply.get("error")
            if not error or not error.get("retry") or attempt >= retries:
                return reply
            delay = min(max_backoff, backoff * (2**attempt)) * random.random()
            attempt += 1
            self.retries += 1
            await asyncio.sleep(delay)

    async def query(
        self, kind: str, ingress, dest: int | None = None, *, retries: int = 0, **extra
    ) -> dict:
        """Convenience: send one query and await its reply.

        ``retries`` enables the backoff-and-resend behaviour of
        :meth:`request` for transient (``retry: true``) errors.
        """
        message = {"kind": kind, "ingress": list(ingress), "dest": dest, **extra}
        return await self.request(message, retries=retries)

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass


__all__ = ["PoolAutoscaler", "QueryServer", "StreamClient"]
