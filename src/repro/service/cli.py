"""Command-line front end of the analysis service.

``python -m repro.service`` loads a topology and a routing scheme,
builds one network model per requested destination, opens an
:class:`~repro.service.session.AnalysisSession` over them, and serves a
batch query file — the same entry point the benchmarks and examples
drive, so measured serving numbers reflect what a user would see.

Batch files are JSON: either a bare list of queries or an object with a
``"queries"`` list, each query shaped like::

    {"kind": "delivery", "ingress": [sw, pt], "dest": 1}

(``kind`` defaults to ``"delivery"``; kinds: ``delivery``,
``distribution``, ``hops``).  Alternatively ``--all-pairs`` generates
the full (ingress × destination) delivery batch for the given
destinations.

Example::

    python -m repro.service --topology fattree:4 --scheme ecmp \\
        --dest 1 --dest 2 --all-pairs --planner destination \\
        --workers 4 --pool-size 4 --output results.json

``python -m repro.service serve ...`` instead starts the asyncio
streaming front end (:mod:`repro.service.server`): newline-delimited
JSON queries over TCP, coalesced across concurrent clients by an
admission window — see ``serve --help`` and the README's "Serving
streams" section.

``python -m repro.service host ...`` runs a worker-host daemon
(:mod:`repro.service.host`): it serves replica capacity over TCP to
sessions started elsewhere with ``--pool-mode remote --remote-host
HOST:PORT`` — see ``host --help`` and the README's "Remote replica
hosts" section.
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from typing import Callable, Sequence

from repro.network.model import NetworkModel
from repro.service.results import Query
from repro.service.session import AnalysisSession
from repro.service.shards import PLANNERS


def _add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """Topology/scheme/session flags shared by batch and serve modes."""
    parser.add_argument(
        "--topology",
        default="fattree:4",
        help="topology spec: fattree:P or abfattree:P (default fattree:4)",
    )
    parser.add_argument(
        "--scheme",
        default="ecmp",
        choices=("ecmp", "f10_0", "f10_3", "f10_3_5"),
        help="routing scheme (default ecmp)",
    )
    parser.add_argument(
        "--dest",
        type=int,
        action="append",
        default=None,
        help="destination switch (repeatable; default: the queries' dests, "
        "or switch 1 with --all-pairs)",
    )
    parser.add_argument(
        "--failure-prob",
        type=float,
        default=None,
        help="per-link failure probability (default: none for ecmp, 1/1000 "
        "for f10 schemes)",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help="bound k on concurrent failures (f10 schemes; default unbounded)",
    )
    parser.add_argument(
        "--count-hops",
        action="store_true",
        help="build models with a hop counter (required by 'hops' queries)",
    )
    parser.add_argument(
        "--backend",
        default="matrix",
        help="query backend registry name (default matrix)",
    )
    parser.add_argument(
        "--planner",
        default="destination",
        help="shard planner: %s, optionally name:arg" % ", ".join(sorted(PLANNERS)),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard executor threads (default: CPU count, capped)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="independent backend replicas; shards lease one each, so "
        "N>1 enables true parallel solves (default 1; remote mode "
        "defaults to two replicas per host)",
    )
    parser.add_argument(
        "--pool-mode",
        default="thread",
        choices=("thread", "process", "remote"),
        help="replica hosting: 'thread' shares the process (parallel in the "
        "GIL-releasing splu phase); 'process' gives every replica its own "
        "worker process fed by spec shipping, parallelising plan rebuild + "
        "matrix assembly + solve end-to-end; 'remote' leases replicas from "
        "worker-host daemons over TCP (needs --remote-host) (default thread)",
    )
    parser.add_argument(
        "--remote-host",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="worker-host daemon to lease replicas from (repeatable; "
        "remote mode only — start daemons with `python -m repro.service "
        "host --bind HOST:PORT`)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard wall-clock watchdog in seconds (process pools): a "
        "worker that does not answer in time is killed, respawned, and the "
        "shard retried on a healthy replica (default: no watchdog)",
    )
    parser.add_argument(
        "--shard-attempts",
        type=int,
        default=2,
        help="replicas a shard may be attempted on across crashes before "
        "failing with PoolUnavailable (default 2: original + one retry)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="enable span tracing and write the collected trace to FILE on "
        "exit as Chrome trace JSON (open in Perfetto / chrome://tracing); "
        "a .jsonl suffix writes raw span records instead",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of requests to trace when --trace-out is set "
        "(deterministic 1-in-round(1/RATE) sampling; default 1.0: all)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the session's metrics in Prometheus text exposition "
        "format on exit (counters, histograms, per-phase gauges)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a batch of network-analysis queries from one "
        "persistent, sharded session.",
    )
    _add_session_arguments(parser)
    parser.add_argument(
        "--queries",
        help="JSON batch file ({'queries': [...]} or a bare list)",
    )
    parser.add_argument(
        "--all-pairs",
        action="store_true",
        help="generate delivery queries for every (ingress, dest) pair",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="serve the batch N times (repeats exercise the result cache)",
    )
    parser.add_argument("--output", help="write the ResultSet JSON to this path")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="Run the asyncio streaming front end: newline-delimited "
        "JSON queries over TCP, coalesced across clients by an admission "
        "window into the sharded session.",
    )
    _add_session_arguments(parser)
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default 0: pick a free port and print it)",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=4.0,
        help="admission window in milliseconds; queries arriving within one "
        "window coalesce into one batch (0 disables coalescing; default 4)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="dispatch a window early once it holds this many queries",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="bound on outstanding queries before admissions are refused "
        "with a retryable 'overloaded' error (backpressure)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-query deadline in milliseconds (queries may carry "
        "their own 'deadline_ms'; default: none)",
    )
    parser.add_argument(
        "--autoscale-max",
        type=int,
        default=None,
        help="enable the queue-depth pool autoscaler with this replica "
        "ceiling (floor is --pool-size; default: autoscaling off)",
    )
    parser.add_argument(
        "--autoscale-target",
        type=int,
        default=32,
        help="autoscaler target of outstanding queries per replica",
    )
    parser.add_argument(
        "--max-line-kib",
        type=int,
        default=1024,
        help="bound on one request line in KiB (default 1024); longer "
        "lines get a non-retryable 'too-large' error instead of a "
        "dropped connection",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="pre-solve each --dest before accepting connections",
    )
    return parser


def load_topology(spec: str):
    """Build a topology from a ``kind:param`` spec."""
    kind, _, arg = spec.partition(":")
    try:
        size = int(arg) if arg else 4
    except ValueError:
        raise SystemExit(f"invalid topology parameter in {spec!r}") from None
    if kind == "fattree":
        from repro.topology import fat_tree

        return fat_tree(size)
    if kind == "abfattree":
        from repro.topology import ab_fat_tree

        return ab_fat_tree(size)
    raise SystemExit(f"unknown topology {kind!r}; use fattree:P or abfattree:P")


def model_factory(
    topology, args: argparse.Namespace
) -> Callable[[int], NetworkModel]:
    """The per-destination model builder for the chosen scheme."""
    if args.scheme == "ecmp":
        from repro.failure.models import independent_failure_program
        from repro.network.model import build_model
        from repro.routing import downward_failable_ports, ecmp_policy

        probability = args.failure_prob
        failable = downward_failable_ports(topology) if probability else None

        def build(dest: int) -> NetworkModel:
            failure = (
                independent_failure_program(failable, probability)
                if probability
                else None
            )
            return build_model(
                topology,
                routing=ecmp_policy(topology, dest),
                dest=dest,
                failure=failure,
                failable=failable,
                count_hops=args.count_hops,
            )

        return build

    from repro.routing import f10_model

    probability = args.failure_prob if args.failure_prob is not None else Fraction(1, 1000)

    def build(dest: int) -> NetworkModel:
        return f10_model(
            topology,
            dest,
            scheme=args.scheme,
            failure_probability=probability,
            max_failures=args.max_failures,
            count_hops=args.count_hops,
        )

    return build


def load_queries(args: argparse.Namespace, topology) -> list[Query]:
    """The batch: from the JSON file, --all-pairs generation, or both."""
    batch: list[Query] = []
    if args.queries:
        with open(args.queries, encoding="utf-8") as handle:
            payload = json.load(handle)
        raw = payload["queries"] if isinstance(payload, dict) else payload
        batch.extend(Query.coerce(entry) for entry in raw)
    if args.all_pairs:
        dests = args.dest or [1]
        for dest in dests:
            for switch, port in topology.ingress_locations(exclude=[dest]):
                batch.append(Query.delivery((switch, port), dest))
    if not batch:
        raise SystemExit("no queries: pass --queries FILE and/or --all-pairs")
    return batch


def build_session(args: argparse.Namespace, topology) -> AnalysisSession:
    """Open the session both entry points (batch and serve) share."""
    if args.pool_size is not None and args.pool_size < 1:
        raise SystemExit("--pool-size must be >= 1")
    if args.pool_mode == "remote" and not args.remote_host:
        raise SystemExit("--pool-mode remote needs at least one --remote-host")
    if args.remote_host and args.pool_mode != "remote":
        raise SystemExit("--remote-host only makes sense with --pool-mode remote")
    if args.shard_attempts < 1:
        raise SystemExit("--shard-attempts must be >= 1")
    if not 0.0 < args.trace_sample <= 1.0:
        raise SystemExit("--trace-sample must be in (0, 1]")
    from repro.service.telemetry import Telemetry

    telemetry = Telemetry(
        tracing=args.trace_out is not None, sample=args.trace_sample
    )
    return AnalysisSession(
        model_factory=model_factory(topology, args),
        backend=args.backend,
        pool_size=args.pool_size,
        pool_mode=args.pool_mode,
        hosts=args.remote_host,
        planner=args.planner,
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        max_attempts=args.shard_attempts,
        telemetry=telemetry,
    )


def export_telemetry(session: AnalysisSession, args: argparse.Namespace) -> None:
    """Write ``--trace-out`` / print ``--metrics`` output on the way out."""
    if args.trace_out:
        tracer = session.telemetry.tracer
        if args.trace_out.endswith(".jsonl"):
            count = tracer.export_jsonl(args.trace_out)
        else:
            count = tracer.export_chrome(args.trace_out)
        print(f"trace written to {args.trace_out} ({count} span(s))")
    if args.metrics:
        print(session.metrics_text(), end="")


def serve_main(
    argv: Sequence[str] | None = None,
    started_cb: Callable[[object], None] | None = None,
) -> int:
    """Entry point of ``python -m repro.service serve``.

    ``started_cb(server)`` — if given — fires from inside the event loop
    once the listener is bound, before serving; tests use it to learn the
    ephemeral port and to hold a stop handle.
    """
    import asyncio

    args = build_serve_parser().parse_args(argv)
    if args.window_ms < 0:
        raise SystemExit("--window-ms must be >= 0")
    if args.autoscale_max is not None and args.autoscale_max < (args.pool_size or 1):
        raise SystemExit("--autoscale-max must be >= --pool-size")
    return asyncio.run(_run_server(args, started_cb))


async def _run_server(args: argparse.Namespace, started_cb=None) -> int:
    import asyncio
    import signal

    from repro.service.server import QueryServer

    topology = load_topology(args.topology)
    session = build_session(args, topology)
    for dest in args.dest or [1]:
        if args.warm:
            session.warm(dest)
        else:
            session.model_for(dest)  # register so dest-less queries fail fast
    server = QueryServer(
        session,
        host=args.host,
        port=args.port,
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        default_deadline=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        autoscale_max=args.autoscale_max,
        autoscale_target=args.autoscale_target,
        max_line_bytes=args.max_line_kib * 1024,
        owns_session=True,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGINT", "SIGTERM"):
        try:
            loop.add_signal_handler(getattr(signal, signame), server.request_stop)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # e.g. not the main thread (tests), or unsupported platform
    print(
        f"serving {args.topology}/{args.scheme} on {server.host}:{server.port} "
        f"(window {args.window_ms}ms, pool {session.pool_size} "
        f"{session.pool_mode}-hosted replica(s))",
        flush=True,
    )
    if started_cb is not None:
        started_cb(server)
    await server.serve_until_stopped()
    await server.stop()
    stats = server.stats()
    coalescer = stats["coalescer"]
    print(
        f"served {coalescer['answered']} queries in {coalescer['batches']} "
        f"coalesced batch(es) (mean batch {coalescer['batch_mean']:.2f}, "
        f"{coalescer['deadline_exceeded']} deadline-exceeded, "
        f"{coalescer['overloaded']} overloaded)"
    )
    pool = stats["pool"]
    if pool["failures"] or stats["retried_shards"]:
        print(
            f"supervision: {pool['failures']} replica failure(s), "
            f"{pool['restarts']} worker restart(s), "
            f"{stats['retried_shards']} shard(s) transparently retried"
        )
    export_telemetry(session, args)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(list(argv[1:]))
    if argv and argv[0] == "host":
        from repro.service.host import host_main

        return host_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.repeat < 1:
        raise SystemExit("--repeat must be >= 1")
    topology = load_topology(args.topology)
    batch = load_queries(args, topology)
    if any(query.kind == "hops" for query in batch) and not args.count_hops:
        args.count_hops = True  # hop queries need the counter in the model

    with build_session(args, topology) as session:
        # Default-destination queries need a registered default model.
        if any(query.dest is None for query in batch):
            default_dest = (args.dest or [1])[0]
            session.add_model(session.model_for(default_dest), default=True)
        result = session.query_batch(batch)
        for _ in range(args.repeat - 1):
            result = session.query_batch(batch)

        print(
            f"served {len(result)} queries in {result.seconds:.3f}s "
            f"({result.queries_per_second:.1f} q/s), "
            f"{len(result.shards)} shard(s), {result.cache_hits} cache hit(s)"
        )
        for report in result.shards:
            if report.replicas:
                where = "replica " + ",".join(str(i) for i in report.replicas)
            else:
                where = "cache"
            print(
                f"  shard {report.index:>3} [{report.label}] "
                f"{report.queries:>4} queries  {report.seconds:.3f}s  "
                f"{report.cache_hits} hit(s)  ({where})"
            )
        stats = session.stats()
        pool = stats["pool"]
        if pool["size"] > 1 or pool["mode"] != "thread":
            workers = ",".join(str(pid) for pid in pool["workers"])
            print(
                f"pool: {pool['size']} {pool['mode']}-hosted replicas "
                f"(pids {workers}), leases {pool['leases']}, "
                f"{pool['steals']} steal(s), {pool['restarts']} restart(s)"
            )
        if pool["mode"] == "remote":
            placement = ",".join(
                f"{host}/{transport}"
                for host, transport in zip(pool["hosts"], pool["transports"])
            )
            print(
                f"hosts: {placement} — {pool.get('failovers', 0)} failover(s), "
                f"{pool.get('remote_reconnects', 0)} reconnect(s), "
                f"{sum(pool['heartbeat_misses'])} heartbeat miss(es)"
            )
        if pool["failures"] or stats["retried_shards"]:
            print(
                f"supervision: {pool['failures']} replica failure(s), "
                f"{pool['restarts']} worker restart(s), "
                f"{stats['retried_shards']} shard(s) transparently retried"
            )
        timings = stats["backend_timings"]
        if timings:
            phases = ", ".join(f"{name}={value:.3f}s" for name, value in sorted(timings.items()))
            print(f"backend phases: {phases}")
        solver = stats.get("backend_solver") or {}
        if solver:
            print(
                f"solver: {solver.get('factorizations', 0)} factorization(s), "
                f"{solver.get('schur_updates', 0)} Schur update(s), "
                f"{solver.get('assembly_rows', 0)} row(s) assembled"
            )

        if args.output:
            result.dump(args.output)
            print(f"results written to {args.output}")
        export_telemetry(session, args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
