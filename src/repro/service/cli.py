"""Command-line front end of the analysis service.

``python -m repro.service`` loads a topology and a routing scheme,
builds one network model per requested destination, opens an
:class:`~repro.service.session.AnalysisSession` over them, and serves a
batch query file — the same entry point the benchmarks and examples
drive, so measured serving numbers reflect what a user would see.

Batch files are JSON: either a bare list of queries or an object with a
``"queries"`` list, each query shaped like::

    {"kind": "delivery", "ingress": [sw, pt], "dest": 1}

(``kind`` defaults to ``"delivery"``; kinds: ``delivery``,
``distribution``, ``hops``).  Alternatively ``--all-pairs`` generates
the full (ingress × destination) delivery batch for the given
destinations.

Example::

    python -m repro.service --topology fattree:4 --scheme ecmp \\
        --dest 1 --dest 2 --all-pairs --planner destination \\
        --workers 4 --pool-size 4 --output results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from typing import Callable, Sequence

from repro.network.model import NetworkModel
from repro.service.results import Query
from repro.service.session import AnalysisSession
from repro.service.shards import PLANNERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a batch of network-analysis queries from one "
        "persistent, sharded session.",
    )
    parser.add_argument(
        "--topology",
        default="fattree:4",
        help="topology spec: fattree:P or abfattree:P (default fattree:4)",
    )
    parser.add_argument(
        "--scheme",
        default="ecmp",
        choices=("ecmp", "f10_0", "f10_3", "f10_3_5"),
        help="routing scheme (default ecmp)",
    )
    parser.add_argument(
        "--dest",
        type=int,
        action="append",
        default=None,
        help="destination switch (repeatable; default: the queries' dests, "
        "or switch 1 with --all-pairs)",
    )
    parser.add_argument(
        "--queries",
        help="JSON batch file ({'queries': [...]} or a bare list)",
    )
    parser.add_argument(
        "--all-pairs",
        action="store_true",
        help="generate delivery queries for every (ingress, dest) pair",
    )
    parser.add_argument(
        "--failure-prob",
        type=float,
        default=None,
        help="per-link failure probability (default: none for ecmp, 1/1000 "
        "for f10 schemes)",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help="bound k on concurrent failures (f10 schemes; default unbounded)",
    )
    parser.add_argument(
        "--count-hops",
        action="store_true",
        help="build models with a hop counter (required by 'hops' queries)",
    )
    parser.add_argument(
        "--backend",
        default="matrix",
        help="query backend registry name (default matrix)",
    )
    parser.add_argument(
        "--planner",
        default="destination",
        help="shard planner: %s, optionally name:arg" % ", ".join(sorted(PLANNERS)),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard executor threads (default: CPU count, capped)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=1,
        help="independent backend replicas; shards lease one each, so "
        "N>1 enables true parallel solves (default 1)",
    )
    parser.add_argument(
        "--pool-mode",
        default="thread",
        choices=("thread", "process"),
        help="replica hosting: 'thread' shares the process (parallel in the "
        "GIL-releasing splu phase); 'process' gives every replica its own "
        "worker process fed by spec shipping, parallelising plan rebuild + "
        "matrix assembly + solve end-to-end (default thread)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="serve the batch N times (repeats exercise the result cache)",
    )
    parser.add_argument("--output", help="write the ResultSet JSON to this path")
    return parser


def load_topology(spec: str):
    """Build a topology from a ``kind:param`` spec."""
    kind, _, arg = spec.partition(":")
    try:
        size = int(arg) if arg else 4
    except ValueError:
        raise SystemExit(f"invalid topology parameter in {spec!r}") from None
    if kind == "fattree":
        from repro.topology import fat_tree

        return fat_tree(size)
    if kind == "abfattree":
        from repro.topology import ab_fat_tree

        return ab_fat_tree(size)
    raise SystemExit(f"unknown topology {kind!r}; use fattree:P or abfattree:P")


def model_factory(
    topology, args: argparse.Namespace
) -> Callable[[int], NetworkModel]:
    """The per-destination model builder for the chosen scheme."""
    if args.scheme == "ecmp":
        from repro.failure.models import independent_failure_program
        from repro.network.model import build_model
        from repro.routing import downward_failable_ports, ecmp_policy

        probability = args.failure_prob
        failable = downward_failable_ports(topology) if probability else None

        def build(dest: int) -> NetworkModel:
            failure = (
                independent_failure_program(failable, probability)
                if probability
                else None
            )
            return build_model(
                topology,
                routing=ecmp_policy(topology, dest),
                dest=dest,
                failure=failure,
                failable=failable,
                count_hops=args.count_hops,
            )

        return build

    from repro.routing import f10_model

    probability = args.failure_prob if args.failure_prob is not None else Fraction(1, 1000)

    def build(dest: int) -> NetworkModel:
        return f10_model(
            topology,
            dest,
            scheme=args.scheme,
            failure_probability=probability,
            max_failures=args.max_failures,
            count_hops=args.count_hops,
        )

    return build


def load_queries(args: argparse.Namespace, topology) -> list[Query]:
    """The batch: from the JSON file, --all-pairs generation, or both."""
    batch: list[Query] = []
    if args.queries:
        with open(args.queries, encoding="utf-8") as handle:
            payload = json.load(handle)
        raw = payload["queries"] if isinstance(payload, dict) else payload
        batch.extend(Query.coerce(entry) for entry in raw)
    if args.all_pairs:
        dests = args.dest or [1]
        for dest in dests:
            for switch, port in topology.ingress_locations(exclude=[dest]):
                batch.append(Query.delivery((switch, port), dest))
    if not batch:
        raise SystemExit("no queries: pass --queries FILE and/or --all-pairs")
    return batch


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.repeat < 1:
        raise SystemExit("--repeat must be >= 1")
    topology = load_topology(args.topology)
    batch = load_queries(args, topology)
    if any(query.kind == "hops" for query in batch) and not args.count_hops:
        args.count_hops = True  # hop queries need the counter in the model

    if args.pool_size < 1:
        raise SystemExit("--pool-size must be >= 1")
    with AnalysisSession(
        model_factory=model_factory(topology, args),
        backend=args.backend,
        pool_size=args.pool_size,
        pool_mode=args.pool_mode,
        planner=args.planner,
        workers=args.workers,
    ) as session:
        # Default-destination queries need a registered default model.
        if any(query.dest is None for query in batch):
            default_dest = (args.dest or [1])[0]
            session.add_model(session.model_for(default_dest), default=True)
        result = session.query_batch(batch)
        for _ in range(args.repeat - 1):
            result = session.query_batch(batch)

        print(
            f"served {len(result)} queries in {result.seconds:.3f}s "
            f"({result.queries_per_second:.1f} q/s), "
            f"{len(result.shards)} shard(s), {result.cache_hits} cache hit(s)"
        )
        for report in result.shards:
            if report.replicas:
                where = "replica " + ",".join(str(i) for i in report.replicas)
            else:
                where = "cache"
            print(
                f"  shard {report.index:>3} [{report.label}] "
                f"{report.queries:>4} queries  {report.seconds:.3f}s  "
                f"{report.cache_hits} hit(s)  ({where})"
            )
        stats = session.stats()
        pool = stats["pool"]
        if pool["size"] > 1 or pool["mode"] != "thread":
            workers = ",".join(str(pid) for pid in pool["workers"])
            print(
                f"pool: {pool['size']} {pool['mode']}-hosted replicas "
                f"(pids {workers}), leases {pool['leases']}, "
                f"{pool['steals']} steal(s)"
            )
        timings = stats["backend_timings"]
        if timings:
            phases = ", ".join(f"{name}={value:.3f}s" for name, value in sorted(timings.items()))
            print(f"backend phases: {phases}")

        if args.output:
            result.dump(args.output)
            print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
