"""Backend replica pools: per-destination solver instances, leased per shard.

Architecture: in the **session → shards → pool → backend** pipeline this
module owns the *replicas*.  Before the pool existed, every shard of a
batch funnelled through one backend instance guarded by a session-wide
lock — sharded "concurrency" was cooperative scheduling, because all
shards shared one FDD manager and one family of ``splu`` factorizations.
A :class:`BackendPool` instead owns N independent backend replicas
(created with ``backend.fork()``: each replica has its own manager, plan
caches, and factorizations, sharing only the immutable
:class:`~repro.backends.matrix.PlanSpecStore` of compiled plan specs) and
leases exactly one replica to each shard for the duration of its
execution.  Shards leasing *different* replicas never contend on any
solver state, so they genuinely run in parallel wherever the work
releases the GIL (SciPy's ``splu`` factorizations and solves do).

Routing is **affinity first, work-stealing second**: a lease request
carries an optional affinity key (the shard's destination, set by the
planners), and

* an unassigned affinity is routed to a free replica with the fewest
  affinities (spreading destinations evenly over the pool);
* an assigned affinity sticks to the replica that already holds that
  destination's factorizations — as long as that replica is free;
* when the preferred replica is busy but another replica is idle, the
  idle replica *steals* the shard (rebuilding the destination's state
  from the shared plan specs) rather than queueing behind a busy solver
  — but the affinity binding stays with the original replica, so
  overflow work runs one-off on spare capacity while subsequent shards
  keep routing to the warm replica;
* only when every replica is busy does the request wait.

Supervision: replica failure is a *recoverable* event, not a
session-killing one.  Every replica carries a health state::

    healthy ──(ReplicaFailure in a lease)──▶ suspect
    suspect ──(probe succeeds: transient)──▶ healthy
    suspect ──(probe fails / no probe)─────▶ restarting ──▶ healthy
    restarting ──(respawn impossible)──────▶ dead  (permanent)

A lease body that raises :class:`ReplicaFailure` (worker crash, hung
worker killed by the watchdog, broken pipe) quarantines its replica: the
replica is marked suspect, probed once (backends with a ``ping`` — a
transient transport blip on a live backend recovers in place), and on a
failed probe a background thread respawns the backend *in place at the
same index* — so the affinity map and ``lease_replica`` indices stay
valid and the destination bindings transparently re-attach to the fresh
backend.  Process pools re-publish the dead worker's adopted plans from
the parent-side plan directory during respawn (see
:class:`~repro.service.procpool.ProcessBackendPool`), so respawned
workers never recompile.  Only when respawn is impossible (no healthy
replica to fork from, or the pool is closing) does a replica go
permanently ``dead``: its affinities are unbound and, once *every*
replica is dead, lease requests fail with :class:`PoolUnavailable`
instead of waiting forever.

Lock hierarchy (strict, never nested the other way around)::

    replica lease (pool condition + per-replica lock)
        > session state lock (result cache, counters, model registry)
        > plan-spec store lock (leaf: dict ops only)

A thread may take the session state lock or the spec-store lock *while
holding* a replica lease (that is how computed distributions enter the
shared result cache), but never acquires a lease while holding either of
the inner locks, and never holds two leases at once.  This makes the
hierarchy acyclic, so the pool cannot deadlock.  Respawn threads touch
only the pool condition and the dead/fresh backends — never a session
lock — so they sit at the top of the same hierarchy.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

#: Replica health states (see the supervision diagram in the module doc).
HEALTHY = "healthy"
SUSPECT = "suspect"
RESTARTING = "restarting"
DEAD = "dead"


class ReplicaFailure(RuntimeError):
    """A replica's backend failed mid-lease (crash, hang, broken transport).

    This is the *structured* crash signal the supervision layer acts on:
    raising it out of a lease body quarantines the replica (probe →
    respawn) instead of silently leaving a corpse in the pool.  Queries
    are pure, so callers retry the failed shard on a healthy replica
    (see ``AnalysisSession``); exhausted retries surface as
    :class:`PoolUnavailable`.

    Attributes
    ----------
    replica:
        Index of the failed replica, when known.
    kind:
        ``"crash"`` (process died / transport broke) or ``"timeout"``
        (hung worker killed by the per-shard watchdog).
    exit_code:
        The dead worker's exit code, when known (negative = signal).
    """

    def __init__(
        self,
        message: str,
        *,
        replica: int | None = None,
        kind: str = "crash",
        exit_code: int | None = None,
    ):
        super().__init__(message)
        self.replica = replica
        self.kind = kind
        self.exit_code = exit_code


class PoolUnavailable(RuntimeError):
    """No healthy replica can serve: retries exhausted or every replica dead.

    The typed terminal error of the supervision layer — callers that see
    it know the *pool* (not their query) is the problem, so the streaming
    front end maps it to the retryable ``unavailable`` wire error rather
    than a non-retryable per-query failure.
    """


class Replica:
    """One pooled backend instance plus its lease + health bookkeeping.

    ``lock`` is the replica's solver lock: it is held exactly while the
    replica is leased, so all raw backend access happens under it.  The
    pool's condition variable guarantees the lock is only ever acquired
    uncontended (a replica is picked only when free), which means a shard
    never *blocks* on another replica's solver lock — it either gets a
    free replica or waits for pool capacity.
    """

    __slots__ = (
        "index",
        "backend",
        "lock",
        "busy",
        "leases",
        "affinities",
        "health",
        "failures",
        "restarts",
        "exit_code",
        "last_error",
    )

    def __init__(self, index: int, backend: object):
        self.index = index
        self.backend = backend
        self.lock = threading.Lock()
        self.busy = False
        #: Total leases granted (introspection / load balancing tiebreak).
        self.leases = 0
        #: Affinity keys currently bound to this replica.
        self.affinities: set[object] = set()
        #: Supervision state: healthy / suspect / restarting / dead.
        self.health = HEALTHY
        #: How many times this replica slot has failed.
        self.failures = 0
        #: How many times this slot's backend was respawned in place.
        self.restarts = 0
        #: Exit code of the last dead backend (process pools; negative = signal).
        self.exit_code: int | None = None
        #: Short description of the last failure (for reports).
        self.last_error: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self.busy else "free"
        return f"Replica(#{self.index}, {state}, {self.health}, leases={self.leases})"


class BackendPool:
    """N independent backend replicas with affinity-routed exclusive leases.

    Parameters
    ----------
    backend:
        The base backend (replica 0).  Additional replicas are created
        with ``backend.fork()``; a backend without ``fork`` support (the
        native family) degrades to a single-replica pool, which behaves
        exactly like the historical session-wide solver lock.
    size:
        Requested number of replicas (≥ 1).  Clamped to 1 when the
        backend cannot fork.
    owns_base:
        Whether closing the pool should also close replica 0 (forked
        replicas are always pool-owned and closed with it).
    telemetry:
        Optional :class:`~repro.service.telemetry.Telemetry` bundle.
        When present, supervision transitions (quarantine, revive,
        respawn) update its metrics and attach span events to whatever
        span is current on the failing lease's thread; when tracing is
        on, thread-hosted replica backends get a stopwatch listener so
        solver phases appear as spans.  ``None`` keeps the pool entirely
        telemetry-free (the historical behaviour).
    """

    #: How replicas are hosted: ``"thread"`` replicas share the process
    #: (parallelism where work releases the GIL), ``"process"`` replicas
    #: (see :class:`~repro.service.procpool.ProcessBackendPool`) each live
    #: in their own worker process (full-pipeline parallelism).
    mode = "thread"

    def __init__(
        self,
        backend: object,
        size: int = 1,
        *,
        owns_base: bool = False,
        telemetry=None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._owns_base = owns_base
        self._closed = False
        self._cv = threading.Condition()
        # affinity key -> index of the replica holding that key's state.
        self._affinity: dict[object, int] = {}
        self._steals = 0
        self._failures = 0
        self._restarts = 0
        # In-flight respawn threads (joined by close()).
        self._respawns: list[threading.Thread] = []
        self._telemetry = telemetry
        self._failure_counter = None
        self._restart_counter = None
        if telemetry is not None:
            self._failure_counter = telemetry.metrics.counter(
                "repro_replica_failures_total",
                "Replica failures absorbed by pool supervision",
                labelnames=("kind",),
            )
            self._restart_counter = telemetry.metrics.counter(
                "repro_replica_restarts_total",
                "Replica backends respawned in place",
            )
        self.replicas: list[Replica] = self._create_replicas(backend, size)
        for replica in self.replicas:
            self._instrument_backend(replica.backend)

    def _create_replicas(self, backend: object, size: int) -> list[Replica]:
        """Build the replica list (subclass hook: process pools spawn here).

        The base pool keeps ``backend`` as replica 0 and forks the rest;
        a backend without ``fork`` support degrades to a single replica.
        """
        fork = getattr(backend, "fork", None)
        if fork is None:
            size = 1
        replicas = [Replica(0, backend)]
        for index in range(1, size):
            replicas.append(Replica(index, fork()))
        return replicas

    def _instrument_backend(self, backend: object) -> object:
        """Attach a phase-span listener to a backend's stopwatch (if traced).

        Thread-hosted replicas are instrumented in the parent: each
        measured backend section (``compile``/``build``/``solve``/...)
        becomes a ``phase:<name>`` span under whatever span is current on
        the leasing thread.  Process-hosted replicas are
        :class:`~repro.service.procpool.WorkerHandle` objects without a
        stopwatch — their phases are traced worker-side and shipped back,
        so this hook is a no-op for them.
        """
        telemetry = self._telemetry
        if telemetry is None or not telemetry.tracer.enabled:
            return backend
        watch = getattr(backend, "watch", None)
        if watch is not None and hasattr(watch, "listener"):
            watch.listener = telemetry.tracer.phase_listener()
        return backend

    @property
    def size(self) -> int:
        return len(self.replicas)

    @property
    def steals(self) -> int:
        """How many leases were served by stealing from a busy preferred replica."""
        return self._steals

    @property
    def restarts(self) -> int:
        """How many dead replicas were respawned in place."""
        return self._restarts

    @property
    def failures(self) -> int:
        """How many replica failures the supervision layer has absorbed."""
        return self._failures

    # -- leasing ---------------------------------------------------------------
    @contextmanager
    def lease(self, affinity: object | None = None) -> Iterator[Replica]:
        """Exclusively lease one replica (affinity-routed; blocks when full).

        A lease body raising :class:`ReplicaFailure` quarantines the
        replica (probe, then in-place respawn on a background thread)
        before the failure propagates — so the pool self-heals while the
        caller retries the shard on a healthy replica.
        """
        replica = self._acquire(affinity)
        try:
            yield replica
        except ReplicaFailure as failure:
            self._quarantine(replica, failure)
            raise
        finally:
            self._release(replica)

    @contextmanager
    def lease_replica(self, index: int) -> Iterator[Replica]:
        """Exclusively lease a *specific* replica (used by pool-wide warmup).

        The replica is re-fetched by index on every wake-up, so a
        concurrent :meth:`resize` that retires and replaces pool tails
        can never hand out a lease on a replica that already left the
        pool — a request for an index the pool no longer has fails
        loudly instead.  A permanently dead replica raises
        :class:`ReplicaFailure` (callers walking the pool skip it); a
        suspect/restarting replica is waited for, so warmup lands on the
        respawned backend.
        """
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is closed")
                if index >= len(self.replicas):
                    raise RuntimeError(
                        f"replica {index} is not in the pool (size {len(self.replicas)})"
                    )
                replica = self.replicas[index]
                if replica.health == DEAD:
                    raise ReplicaFailure(
                        f"replica {index} is dead ({replica.last_error})",
                        replica=index,
                        exit_code=replica.exit_code,
                    )
                if not replica.busy and replica.health == HEALTHY:
                    break
                self._cv.wait()
            self._grant(replica)
        try:
            yield replica
        except ReplicaFailure as failure:
            self._quarantine(replica, failure)
            raise
        finally:
            self._release(replica)

    def lease_each(self) -> Iterator[Replica]:
        """Lease every live replica in turn (sequentially, one at a time).

        This is the warmup path: pre-planning must reach each replica's
        private caches, and taking the ordinary lease path (instead of
        touching backends directly) is what makes warmup safe against
        concurrent ``query_batch`` traffic on the same destination.  The
        pool size is re-read per step, so a concurrent :meth:`resize`
        shrink simply ends the walk early rather than leasing a retired
        replica; permanently dead replicas are skipped.
        """
        index = 0
        while index < len(self.replicas):
            try:
                with self.lease_replica(index) as replica:
                    yield replica
            except ReplicaFailure:
                pass  # dead slot: skip it, keep walking the live ones
            index += 1

    def _acquire(self, affinity: object | None) -> Replica:
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is closed")
                replica = self._select(affinity)
                if replica is not None:
                    self._grant(replica)
                    if affinity is not None:
                        bound = self._affinity.get(affinity)
                        if bound is None:
                            self._affinity[affinity] = replica.index
                            replica.affinities.add(affinity)
                        elif bound != replica.index:
                            # Stolen: the overflow shard runs one-off on the
                            # idle replica, but the binding *stays* with the
                            # warm replica — otherwise concurrent shards of
                            # one destination (the ingress planner emits
                            # several) would ping-pong the binding and every
                            # replica would rebuild the same factorizations.
                            self._steals += 1
                    return replica
                if not any(r.health != DEAD for r in self.replicas):
                    raise PoolUnavailable(
                        f"all {len(self.replicas)} replica(s) are dead and "
                        "cannot be respawned"
                    )
                self._cv.wait()

    def _select(self, affinity: object | None) -> Replica | None:
        """Pick a free healthy replica for ``affinity``, or ``None`` to wait.

        Preference order: the replica already bound to the affinity if it
        is free; otherwise any idle replica (work stealing — for a bound
        affinity this trades a state rebuild for not waiting); otherwise
        wait.  Unbound requests go to the free replica with the fewest
        affinities, then fewest leases, spreading load evenly.  Only
        healthy replicas are candidates: an affinity bound to a dead or
        restarting replica transparently falls through to the steal path
        until its home replica is healthy again.
        """
        if affinity is not None:
            bound = self._affinity.get(affinity)
            if bound is not None:
                preferred = self.replicas[bound]
                if not preferred.busy and preferred.health == HEALTHY:
                    return preferred
        free = [
            replica
            for replica in self.replicas
            if not replica.busy and replica.health == HEALTHY
        ]
        if not free:
            return None
        return min(free, key=lambda r: (len(r.affinities), r.leases, r.index))

    def _grant(self, replica: Replica) -> None:
        # Guaranteed uncontended: ``busy`` excludes concurrent grants, so
        # this acquire never blocks (asserted, not assumed).
        acquired = replica.lock.acquire(blocking=False)
        assert acquired, "replica lock held outside a lease"
        replica.busy = True
        replica.leases += 1

    def _release(self, replica: Replica) -> None:
        with self._cv:
            replica.busy = False
            replica.lock.release()
            self._cv.notify_all()

    # -- supervision -----------------------------------------------------------
    def _quarantine(self, replica: Replica, failure: ReplicaFailure) -> None:
        """Handle a failed lease: probe the replica, then respawn or revive.

        Runs on the failing lease's thread *while it still holds the
        lease* (exclusive access makes the probe safe).  The replica goes
        ``suspect``; a backend with a working ``ping`` recovers in place
        (transient transport blip), anything else goes ``restarting`` and
        a daemon thread respawns the backend at the same index.
        """
        kind = getattr(failure, "kind", "crash")
        with self._cv:
            if replica.health != HEALTHY:
                return  # already quarantined (double failure on one lease)
            replica.health = SUSPECT
            replica.failures += 1
            replica.exit_code = getattr(failure, "exit_code", None)
            replica.last_error = str(failure)
            self._failures += 1
            self._cv.notify_all()
        if self._telemetry is not None:
            self._failure_counter.labels(kind=kind).inc()
            # Runs on the failing lease's thread, so the event lands on
            # the caller's current (shard) span when tracing is on.
            self._telemetry.tracer.event(
                "replica-quarantined",
                replica=replica.index,
                kind=kind,
                exit_code=replica.exit_code,
            )
        alive = False
        if kind != "timeout":  # a watchdog-killed worker is dead by design
            probe = getattr(replica.backend, "ping", None)
            if probe is not None:
                try:
                    probe()
                    alive = True
                except Exception:  # noqa: BLE001 - any probe failure = dead
                    alive = False
        with self._cv:
            if alive:
                replica.health = HEALTHY
                self._cv.notify_all()
                if self._telemetry is not None:
                    self._telemetry.tracer.event(
                        "replica-revived", replica=replica.index
                    )
                return
            replica.health = DEAD if self._closed else RESTARTING
            self._cv.notify_all()
            if self._closed:
                return
            thread = threading.Thread(
                target=self._respawn,
                args=(replica,),
                name=f"repro-respawn-{replica.index}",
                daemon=True,
            )
            self._respawns.append(thread)
        thread.start()

    def _respawn(self, replica: Replica) -> None:
        """Background thread: replace a dead replica's backend in place.

        The fresh backend is installed at the *same index*, so the
        affinity map and ``lease_replica`` indices stay valid and bound
        destinations re-attach transparently.  When the slot was retired
        (resize shrink) or the pool closed mid-respawn, the fresh backend
        is torn down instead of installed; when no backend can be built
        (every peer dead, or an unforkable base), the replica goes
        permanently dead and its affinities are unbound so future leases
        re-route.
        """
        try:
            backend = self._respawn_backend(replica.index, replica.backend)
        except Exception:  # noqa: BLE001 - a failed respawn = permanent death
            backend = None
        old = replica.backend
        close_old = False
        close_new = False
        with self._cv:
            current = (
                replica.index < len(self.replicas)
                and self.replicas[replica.index] is replica
            )
            if backend is None or self._closed or not current:
                replica.health = DEAD
                for key in replica.affinities:
                    self._affinity.pop(key, None)
                replica.affinities.clear()
                close_new = backend is not None
                close_old = current and self._owns_replica(replica)
            else:
                replica.backend = self._instrument_backend(backend)
                replica.health = HEALTHY
                replica.restarts += 1
                self._restarts += 1
                if self._restart_counter is not None:
                    self._restart_counter.inc()
                close_old = self._owns_replica(replica)
            self._cv.notify_all()
        if close_new:
            self._close_replica_backend(backend)
        if close_old:
            self._close_replica_backend(old)

    def _respawn_backend(self, index: int, dead: object) -> object | None:
        """Build a replacement backend for slot ``index`` (subclass hook).

        The base pool forks from any healthy replica; process pools spawn
        a fresh worker and re-publish the dead worker's plans.  Returns
        ``None`` when no replacement can be built (permanent death).
        """
        return self._fork_healthy()

    def _fork_healthy(self) -> object | None:
        """Fork a new backend from any healthy replica (under its lease)."""
        with self._cv:
            candidates = [
                replica.index
                for replica in self.replicas
                if replica.health == HEALTHY
            ]
        for index in candidates:
            try:
                with self.lease_replica(index) as source:
                    fork = getattr(source.backend, "fork", None)
                    if fork is None:
                        return None
                    return fork()
            except (ReplicaFailure, RuntimeError):
                continue  # that replica died / pool closed; try the next
        return None

    # -- elasticity ------------------------------------------------------------
    def _spawn_backend(self, index: int) -> object | None:
        """Create the backend of a new replica ``index`` (subclass hook).

        The base pool forks from a healthy replica *under its lease*, so
        growth never races an in-flight solve.  Returns ``None`` when the
        backend cannot fork (the pool then stays at its current size,
        mirroring the constructor's degradation rule).
        """
        return self._fork_healthy()

    def resize(self, size: int) -> int:
        """Grow or shrink the pool to ``size`` replicas; returns the new size.

        Growth appends fresh replicas (forked in thread mode, spawned
        worker processes in process mode) and makes them leasable
        immediately.  Shrinking retires replicas from the *tail* of the
        pool — replica indices are positions in the replica list, so the
        affinity map and ``lease_replica`` stay valid throughout — and
        waits for a busy tail replica's lease to finish before closing
        its backend, so downsizing never rips state out from under an
        in-flight solve.  A dead or restarting tail is retired without
        waiting (its respawn thread notices the retired slot and discards
        the fresh backend).  Affinities bound to a retired replica are
        unbound; the next query for such a destination re-routes (and
        rebuilds from the shared plan specs) like any unassigned key.

        Unforkable backends (the native family) stay at one replica, and
        the pool never shrinks below one.  Safe to call concurrently with
        leasing; concurrent ``resize`` calls serialise on the pool lock.
        """
        if size < 1:
            raise ValueError("pool size must be >= 1")
        # Grow: spawn outside the condition variable (forking may itself
        # lease a replica; process workers take real time to start).
        while True:
            with self._cv:
                if self._closed:
                    raise RuntimeError("pool is closed")
                current = len(self.replicas)
            if current >= size:
                break
            backend = self._spawn_backend(current)
            if backend is None:
                break  # cannot fork: degrade exactly like the constructor
            with self._cv:
                if self._closed:
                    self._close_replica_backend(backend)
                    raise RuntimeError("pool is closed")
                self.replicas.append(
                    Replica(len(self.replicas), self._instrument_backend(backend))
                )
                self._cv.notify_all()
        # Shrink: retire tails once their leases drain (never replica 0).
        retired: list[Replica] = []
        with self._cv:
            while len(self.replicas) > max(size, 1):
                tail = self.replicas[-1]
                while tail.busy:
                    if self._closed:
                        return len(self.replicas)
                    self._cv.wait()
                if self._closed:
                    return len(self.replicas)
                if self.replicas[-1] is not tail:  # concurrent resize moved it
                    continue
                self.replicas.pop()
                for key in tail.affinities:
                    self._affinity.pop(key, None)
                tail.affinities.clear()
                retired.append(tail)
            self._cv.notify_all()
        for replica in retired:
            # Closing a dead backend is a cheap no-op-ish reap (handles are
            # idempotent), so retiring a crashed tail neither hangs nor
            # double-joins.
            self._close_replica_backend(replica.backend)
        return self.size

    def _close_replica_backend(self, backend: object) -> None:
        """Tear down one retired (always pool-owned, index > 0) backend."""
        closer = getattr(backend, "close", None)
        if closer is not None:
            closer()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Close pool-owned replicas (idempotent); pending leases error out.

        Waiting lease requests fail with ``RuntimeError``; leases already
        *held* (e.g. an engine-protocol call mid-solve on another thread)
        are drained first — backends are only torn down once every
        replica is free, so ``close()`` never rips a worker pool or
        factorization out from under an in-flight solve.  In-flight
        respawn threads are joined (a respawn finishing after the close
        began discards its fresh backend).  Forked replicas (index ≥ 1)
        are always owned by the pool; the base backend is closed only
        when ``owns_base`` was set (the session passes its usual
        ownership rule through).
        """
        if not self._drain():
            return
        for thread in self._join_respawns():
            thread.join(timeout=30.0)
        for replica in self.replicas:
            if not self._owns_replica(replica):
                continue
            closer = getattr(replica.backend, "close", None)
            if closer is not None:
                closer()
        self._close_base()

    def _join_respawns(self) -> list[threading.Thread]:
        with self._cv:
            threads = list(self._respawns)
            self._respawns.clear()
        return threads

    def _drain(self) -> bool:
        """Mark the pool closed and wait for every held lease to finish.

        Returns ``False`` when the pool was already closed (teardown must
        not run twice).  After the drain no replica is busy and no new
        lease can be granted, so backends can be torn down safely.  Dead
        and restarting replicas are never busy, so a crashed worker can
        not hang the drain.
        """
        with self._cv:
            if self._closed:
                return False
            self._closed = True
            self._cv.notify_all()
            for replica in self.replicas:
                while replica.busy:
                    self._cv.wait()
        return True

    def _owns_replica(self, replica: Replica) -> bool:
        """Whether closing the pool should close this replica's backend."""
        return replica.index > 0 or self._owns_base

    def _close_base(self) -> None:
        """Subclass hook: tear down non-replica base state after the drain."""

    def clear_caches(self, keep_plans: bool = False) -> None:
        """Clear every live replica's backend caches (under its lease).

        With ``keep_plans`` replicas that support it only reset their
        solver state (``reset_solutions``: row caches, absorption
        solutions, ``splu`` factorizations) and keep compiled plans.  A
        replica that dies mid-clear is quarantined and skipped — its
        respawned backend starts with empty caches anyway.
        """
        if self._closed:
            return
        index = 0
        while index < len(self.replicas):
            try:
                with self.lease_replica(index) as replica:
                    backend = replica.backend
                    if keep_plans:
                        resetter = getattr(backend, "reset_solutions", None)
                        if resetter is not None:
                            resetter()
                            index += 1
                            continue
                    clearer = getattr(backend, "clear_caches", None)
                    if clearer is not None:
                        clearer()
            except ReplicaFailure:
                pass  # quarantined; the respawn starts from empty caches
            except RuntimeError:
                return  # pool closed (or shrank past index) mid-walk
            index += 1

    # -- introspection ---------------------------------------------------------
    def worker_reports(self) -> list[dict]:
        """Per-replica introspection snapshots, uniform across pool modes.

        Thread-hosted replicas are sampled in-process under their lease:
        each report carries ``index``, ``health``, ``pid``, the backend's
        phase ``timings`` and — for backends that expose it — the
        ``solver`` counter dict (``factorizations`` / ``schur_updates`` /
        ``assembly_rows``).  Process and remote pools override this with
        a wire probe that returns the same shape, so CLI stats and tests
        read one format regardless of where replicas live.
        """
        reports: list[dict] = []
        index = 0
        while True:
            with self._cv:
                if index >= len(self.replicas):
                    break
            report: dict = {"health": DEAD}
            try:
                with self.lease_replica(index) as replica:
                    backend = replica.backend
                    report = {
                        "health": replica.health,
                        "pid": self.worker_id(index),
                        "host": getattr(backend, "host", "local"),
                        "transport": getattr(backend, "transport_kind", "inproc"),
                        "reconnects": getattr(backend, "reconnects", 0),
                        "heartbeat_misses": getattr(backend, "heartbeat_misses", 0),
                    }
                    timer = getattr(backend, "timings", None)
                    if timer is not None:
                        report["timings"] = timer()
                    solver = getattr(backend, "solver_stats", None)
                    if solver is not None:
                        report["solver"] = solver()
            except ReplicaFailure:
                pass  # quarantined under the probe; report the bare health
            except RuntimeError:
                break  # pool closed (or shrank past index) mid-walk
            report["index"] = index
            reports.append(report)
            index += 1
        return reports

    def worker_id(self, index: int) -> int:
        """The OS pid hosting replica ``index``.

        Thread-hosted replicas all live in the current process; a
        process-hosted replica reports its worker's pid, so benchmark
        artifacts carry direct evidence of cross-process execution.
        """
        pid = getattr(self.replicas[index].backend, "pid", None)
        return os.getpid() if pid is None else pid

    def stats(self) -> dict[str, object]:
        """Pool shape, health, per-replica lease counts, and the affinity map.

        The per-replica ``hosts`` / ``transports`` / ``reconnects`` /
        ``heartbeat_misses`` columns are uniform across pool modes:
        thread replicas report ``local``/``inproc`` and zeros, process
        replicas ``local``/``pipe``, and remote replicas their
        ``HOST:PORT`` and wire-liveness counters — so dashboards and the
        CLI read one shape regardless of where replicas live.
        """
        with self._cv:
            return {
                "mode": self.mode,
                "size": self.size,
                "steals": self._steals,
                "failures": self._failures,
                "restarts": self._restarts,
                "health": [replica.health for replica in self.replicas],
                "leases": [replica.leases for replica in self.replicas],
                "workers": [self.worker_id(i) for i in range(len(self.replicas))],
                "hosts": [
                    getattr(replica.backend, "host", "local")
                    for replica in self.replicas
                ],
                "transports": [
                    getattr(replica.backend, "transport_kind", "inproc")
                    for replica in self.replicas
                ],
                "reconnects": [
                    getattr(replica.backend, "reconnects", 0)
                    for replica in self.replicas
                ],
                "heartbeat_misses": [
                    getattr(replica.backend, "heartbeat_misses", 0)
                    for replica in self.replicas
                ],
                "affinities": {
                    key: index for key, index in sorted(
                        self._affinity.items(), key=lambda item: repr(item[0])
                    )
                },
            }


__all__ = [
    "DEAD",
    "HEALTHY",
    "RESTARTING",
    "SUSPECT",
    "BackendPool",
    "PoolUnavailable",
    "Replica",
    "ReplicaFailure",
]
