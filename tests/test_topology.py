"""Tests for topologies: the graph class, FatTrees, AB FatTrees, DOT/GML, zoo."""

import pytest

from repro.core.interpreter import Interpreter
from repro.core.packet import DROP, Packet
from repro.topology import (
    FatTreeShape,
    Topology,
    ab_fat_tree,
    aggregation_switches,
    chain_topology,
    core_switches,
    edge_switches,
    fat_tree,
    pod_type,
    zoo,
)
from repro.topology.dot import from_dot, to_dot
from repro.topology.zoo import from_gml, to_gml


class TestTopologyGraph:
    def make_line(self):
        topo = Topology("line")
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_host("h1")
        topo.add_link(1, 2)
        topo.add_link(2, "h1")
        return topo

    def test_ports_are_allocated_and_symmetric(self):
        topo = self.make_line()
        port_12 = topo.port_to(1, 2)
        peer, peer_port = topo.peer(1, port_12)
        assert peer == 2
        assert topo.peer(2, peer_port) == (1, port_12)

    def test_switches_and_hosts_partition_nodes(self):
        topo = self.make_line()
        assert set(topo.switches()) == {1, 2}
        assert topo.hosts() == ["h1"]
        assert topo.is_host("h1") and topo.is_switch(1)

    def test_duplicate_port_rejected(self):
        topo = self.make_line()
        with pytest.raises(ValueError):
            topo.add_link(1, 2, port_a=topo.port_to(1, 2))

    def test_link_requires_existing_nodes(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(KeyError):
            topo.add_link(1, 99)

    def test_switch_links_exclude_hosts(self):
        topo = self.make_line()
        assert all(topo.is_switch(link.peer) for link in topo.switch_links())

    def test_ingress_locations(self):
        topo = self.make_line()
        assert topo.ingress_locations() == [(2, topo.port_to(2, "h1"))]
        assert topo.ingress_locations(exclude=[2]) == []

    def test_program_moves_packets_over_links(self):
        topo = self.make_line()
        program = topo.program()
        interp = Interpreter()
        port = topo.port_to(1, 2)
        out = interp.run_packet(program, Packet({"sw": 1, "pt": port}))
        (packet,) = out.support()
        assert packet["sw"] == 2

    def test_program_drops_at_unknown_locations(self):
        topo = self.make_line()
        out = Interpreter().run_packet(topo.program(), Packet({"sw": 1, "pt": 99}))
        assert out.support() == frozenset({DROP})

    def test_program_respects_failable_guard(self):
        topo = self.make_line()
        port = topo.port_to(1, 2)
        program = topo.program(failable={1: [port]})
        interp = Interpreter()
        down = interp.run_packet(program, Packet({"sw": 1, "pt": port, f"up{port}": 0}))
        up = interp.run_packet(program, Packet({"sw": 1, "pt": port, f"up{port}": 1}))
        assert down.support() == frozenset({DROP})
        assert next(iter(up.support()))["sw"] == 2

    def test_program_requires_integer_switch_ids(self):
        topo = Topology()
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_link("a", "b")
        with pytest.raises(TypeError):
            topo.program()


class TestFatTree:
    def test_shape_counts(self):
        shape = FatTreeShape(4)
        assert shape.switch_count == 20
        assert shape.core_count == 4
        assert shape.host_count == 16

    def test_odd_p_rejected(self):
        with pytest.raises(ValueError):
            FatTreeShape(5)

    @pytest.mark.parametrize("p", [4, 6])
    def test_switch_and_host_counts(self, p):
        topo = fat_tree(p)
        shape = FatTreeShape(p)
        assert len(topo.switches()) == shape.switch_count
        assert len(topo.hosts()) == shape.host_count

    def test_level_partition(self):
        topo = fat_tree(4)
        assert len(edge_switches(topo)) == 8
        assert len(aggregation_switches(topo)) == 8
        assert len(core_switches(topo)) == 4

    def test_every_core_connects_to_every_pod(self):
        topo = fat_tree(4)
        for core in core_switches(topo):
            pods = {topo.attributes(peer)["pod"] for peer in topo.neighbors(core)}
            assert pods == {0, 1, 2, 3}

    def test_standard_fattree_has_single_subtree_type(self):
        topo = fat_tree(4)
        assert {topo.attributes(sw)["subtree"] for sw in aggregation_switches(topo)} == {"A"}


class TestAbFatTree:
    def test_same_size_as_fattree(self):
        assert len(ab_fat_tree(4).switches()) == len(fat_tree(4).switches())

    def test_pod_types_alternate(self):
        topo = ab_fat_tree(4)
        assert pod_type(topo, 1) == "A"  # edge switch of pod 0
        assert {pod_type(topo, sw) for sw in aggregation_switches(topo)} == {"A", "B"}

    def test_core_reaches_both_subtree_types(self):
        topo = ab_fat_tree(4)
        for core in core_switches(topo):
            types = {topo.attributes(peer)["subtree"] for peer in topo.neighbors(core)}
            assert types == {"A", "B"}

    def test_detour_property(self):
        """Opposite-type aggregation switches reach the destination pod via a
        different aggregation switch than the core they detour around."""
        topo = ab_fat_tree(4)
        dest_pod = 0
        for core in core_switches(topo):
            dest_agg = next(
                peer for peer in topo.neighbors(core)
                if topo.attributes(peer).get("pod") == dest_pod
            )
            for agg in topo.neighbors(core):
                attrs = topo.attributes(agg)
                if attrs.get("pod") in (dest_pod, None) or attrs.get("subtree") == "A":
                    continue
                other_cores = [c for c in topo.neighbors(agg) if c != core
                               and topo.attributes(c).get("level") == "core"]
                for other in other_cores:
                    reached = next(
                        peer for peer in topo.neighbors(other)
                        if topo.attributes(peer).get("pod") == dest_pod
                    )
                    assert reached != dest_agg

    def test_pod_type_unavailable_for_core(self):
        topo = ab_fat_tree(4)
        with pytest.raises(KeyError):
            pod_type(topo, core_switches(topo)[0])


class TestChainTopology:
    def test_switch_count(self):
        assert len(chain_topology(3).switches()) == 12

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            chain_topology(0)

    def test_roles_assigned(self):
        topo = chain_topology(2)
        roles = [topo.attributes(sw)["role"] for sw in sorted(topo.switches())]
        assert roles[:4] == ["split", "upper", "lower", "join"]


class TestSerialisation:
    def test_dot_roundtrip(self):
        topo = fat_tree(4)
        recovered = from_dot(to_dot(topo))
        assert len(recovered.switches()) == len(topo.switches())
        assert len(recovered.hosts()) == len(topo.hosts())
        assert recovered.link_count() == topo.link_count()

    def test_dot_preserves_port_numbers(self):
        topo = chain_topology(1)
        recovered = from_dot(to_dot(topo))
        assert recovered.port_to(1, 2) == topo.port_to(1, 2)

    def test_gml_roundtrip(self):
        topo = zoo.load("abilene")
        recovered = from_gml(to_gml(topo))
        assert len(recovered.switches()) == len(topo.switches())
        assert recovered.link_count() == topo.link_count()


class TestZoo:
    def test_available_topologies(self):
        assert set(zoo.available_topologies()) == {"abilene", "nsfnet", "geant-lite"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            zoo.load("does-not-exist")

    @pytest.mark.parametrize("name", ["abilene", "nsfnet", "geant-lite"])
    def test_topologies_are_connected(self, name):
        import networkx as nx

        topo = zoo.load(name)
        assert nx.is_connected(topo.switch_graph())

    def test_hosts_optional(self):
        assert zoo.load("abilene", with_hosts=False).hosts() == []
