"""Tests for routing schemes, failure models, and the network model builder."""

from fractions import Fraction

import pytest

from repro.core.interpreter import Interpreter, eval_predicate
from repro.core.packet import DROP, Packet
from repro.failure.models import (
    bounded_failure_program,
    failure_free,
    failure_program,
    independent_failure_program,
)
from repro.network.model import build_model
from repro.routing import (
    downward_failable_ports,
    ecmp_policy,
    f10_policy,
    shortest_path_ports,
    static_policy,
    teleport_policy,
)
from repro.routing.f10 import F10_SCHEMES
from repro.topology import ab_fat_tree, zoo


@pytest.fixture(scope="module")
def abft():
    return ab_fat_tree(4)


class TestShortestPaths:
    def test_edge_switch_has_two_upward_choices(self, abft):
        ports = shortest_path_ports(abft, 1)
        # Edge switch 3 (pod 1) reaches switch 1 via either aggregation switch.
        assert len(ports[3]) == 2

    def test_core_has_unique_downward_port(self, abft):
        ports = shortest_path_ports(abft, 1)
        for core in (17, 18, 19, 20):
            assert len(ports[core]) == 1

    def test_destination_has_no_next_hop(self, abft):
        assert shortest_path_ports(abft, 1)[1] == []

    def test_unknown_destination_rejected(self, abft):
        with pytest.raises(KeyError):
            shortest_path_ports(abft, 999)


class TestEcmpAndStatic:
    def test_ecmp_splits_uniformly(self, abft):
        policy = ecmp_policy(abft, 1)
        dist = Interpreter().run_packet(policy, Packet({"sw": 3, "pt": 0}))
        assert len(dist.support()) == 2
        assert all(float(p) == pytest.approx(0.5) for _, p in dist.items())

    def test_ecmp_drops_at_destination_branch_default(self, abft):
        policy = ecmp_policy(abft, 1)
        dist = Interpreter().run_packet(policy, Packet({"sw": 1, "pt": 0}))
        assert dist.support() == frozenset({DROP})

    def test_static_is_deterministic(self, abft):
        policy = static_policy(abft, 1)
        dist = Interpreter().run_packet(policy, Packet({"sw": 3, "pt": 0}))
        assert len(dist.support()) == 1

    def test_ecmp_on_wan_topology(self):
        topo = zoo.load("abilene")
        policy = ecmp_policy(topo, 1)
        dist = Interpreter().run_packet(policy, Packet({"sw": 5, "pt": 0}))
        assert DROP not in dist.support()

    def test_teleport_policy(self):
        policy = teleport_policy(7)
        (packet,) = Interpreter().run_packet(policy, Packet({"sw": 1, "pt": 3})).support()
        assert packet["sw"] == 7 and packet["pt"] == 0


class TestFailureModels:
    FAILABLE = {17: [1, 2], 18: [1]}

    def test_failure_free_sets_all_flags(self):
        program = failure_free(self.FAILABLE)
        (packet,) = Interpreter().run_packet(program, Packet({"sw": 17})).support()
        assert packet["up1"] == 1 and packet["up2"] == 1

    def test_failure_free_skips_other_switches(self):
        program = failure_free(self.FAILABLE)
        (packet,) = Interpreter().run_packet(program, Packet({"sw": 5})).support()
        assert "up1" not in packet

    def test_independent_failure_probability(self):
        program = independent_failure_program(self.FAILABLE, Fraction(1, 4))
        dist = Interpreter(exact=True).run_packet(program, Packet({"sw": 18}))
        assert dist.prob_of(lambda p: p["up1"] == 0) == Fraction(1, 4)

    def test_bounded_model_never_exceeds_budget(self):
        program = bounded_failure_program(self.FAILABLE, Fraction(1, 2), max_failures=1)
        dist = Interpreter(exact=True).run_packet(program, Packet({"sw": 17, "fails": 0}))
        assert all(
            (p["up1"] == 0) + (p["up2"] == 0) <= 1 for p in dist.support()
        )

    def test_bounded_model_increments_counter(self):
        program = bounded_failure_program(self.FAILABLE, Fraction(1, 2), max_failures=2)
        dist = Interpreter(exact=True).run_packet(program, Packet({"sw": 17, "fails": 0}))
        assert dist.prob_of(lambda p: p["fails"] == 2) == Fraction(1, 4)

    def test_exhausted_budget_means_no_failures(self):
        program = bounded_failure_program(self.FAILABLE, Fraction(1, 2), max_failures=1)
        dist = Interpreter(exact=True).run_packet(program, Packet({"sw": 17, "fails": 1}))
        assert all(p["up1"] == 1 and p["up2"] == 1 for p in dist.support())

    def test_zero_budget_equals_failure_free(self):
        program = failure_program(self.FAILABLE, Fraction(1, 2), max_failures=0)
        dist = Interpreter(exact=True).run_packet(program, Packet({"sw": 17}))
        assert all(p["up1"] == 1 and p["up2"] == 1 for p in dist.support())

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            bounded_failure_program(self.FAILABLE, Fraction(1, 2), max_failures=-1)


class TestF10Policies:
    def test_unknown_scheme_rejected(self, abft):
        with pytest.raises(ValueError):
            f10_policy(abft, 1, scheme="f10_42")

    def test_schemes_tuple(self):
        assert F10_SCHEMES == ("f10_0", "f10_3", "f10_3_5")

    def test_non_edge_destination_rejected(self, abft):
        with pytest.raises(ValueError):
            f10_policy(abft, 17)

    def test_downward_failable_ports_cover_all_cores(self, abft):
        failable = downward_failable_ports(abft)
        assert set(failable) == {17, 18, 19, 20}
        assert all(len(ports) == 4 for ports in failable.values())

    def test_f10_0_is_failure_oblivious(self, abft):
        policy = f10_policy(abft, 1, scheme="f10_0")
        assert not any(field.startswith("up") for field in policy.fields())

    def test_f10_3_reroutes_on_failed_primary(self, abft):
        policy = f10_policy(abft, 1, scheme="f10_3")
        failable = downward_failable_ports(abft)
        core = 17
        primary = shortest_path_ports(abft, 1)[core][0]
        flags = {f"up{port}": 1 for port in failable[core]}
        flags[f"up{primary}"] = 0
        dist = Interpreter().run_packet(policy, Packet({"sw": core, "pt": 0, **flags}))
        # Rerouted uniformly to the two opposite-type aggregation switches.
        assert DROP not in dist.support()
        assert len(dist.support()) == 2

    def test_f10_3_drops_when_no_opposite_candidate(self, abft):
        policy = f10_policy(abft, 1, scheme="f10_3")
        failable = downward_failable_ports(abft)
        core = 17
        flags = {f"up{port}": 0 for port in failable[core]}
        dist = Interpreter().run_packet(policy, Packet({"sw": core, "pt": 0, **flags}))
        assert dist.support() == frozenset({DROP})

    def test_f10_3_5_marks_five_hop_detours(self, abft):
        policy = f10_policy(abft, 1, scheme="f10_3_5")
        failable = downward_failable_ports(abft)
        core = 17
        primary = shortest_path_ports(abft, 1)[core][0]
        flags = {f"up{port}": 0 for port in failable[core]}
        # Only the same-type candidate stays up.
        info_same_up = dict(flags)
        same_type_port = next(
            port for port in failable[core]
            if abft.attributes(abft.peer(core, port)[0]).get("subtree") == "A"
            and abft.attributes(abft.peer(core, port)[0]).get("pod") != 0
        )
        info_same_up[f"up{same_type_port}"] = 1
        dist = Interpreter().run_packet(
            policy, Packet({"sw": core, "pt": 0, "detour": 0, **info_same_up})
        )
        (packet,) = dist.support()
        assert packet["detour"] == 2
        assert packet["pt"] == same_type_port
        assert primary != same_type_port


class TestBuildModel:
    def test_requires_an_ingress(self, abft):
        with pytest.raises(ValueError):
            build_model(abft, ecmp_policy(abft, 1), dest=1, ingress=[])

    def test_default_ingress_excludes_destination(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1)
        assert all(packet["sw"] != 1 for packet in model.ingress_packets)
        # 7 non-destination ToR switches x 2 host ports each.
        assert len(model.ingress_packets) == 14

    def test_failure_free_model_always_delivers(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1)
        assert model.certainly_delivers()
        assert model.delivery_probability() == pytest.approx(1.0)

    def test_delivery_probabilities_per_ingress(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1)
        probabilities = model.delivery_probabilities()
        assert len(probabilities) == len(model.ingress_packets)
        assert all(value == pytest.approx(1.0) for value in probabilities.values())

    def test_hop_counter_records_path_length(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1, count_hops=True)
        outputs = model.output_distributions()
        same_pod = Packet({"sw": 2, "pt": model.ingress_packets[0]["pt"]})
        dist = outputs[same_pod]
        assert all(packet["hops"] == 2 for packet in dist.support())

    def test_teleport_program_delivers_immediately(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1)
        dist = Interpreter().run_packet(model.teleport, model.ingress_packets[0])
        (packet,) = dist.support()
        assert eval_predicate(model.delivered, packet)

    def test_ingress_predicate_rejects_other_locations(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1)
        dist = Interpreter().run_packet(model.policy, Packet({"sw": 99, "pt": 1}))
        assert dist.support() == frozenset({DROP})
