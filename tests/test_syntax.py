"""Unit tests for the ProbNetKAT AST and its smart constructors."""

from fractions import Fraction

import pytest

from repro.core import syntax as s


class TestProbabilities:
    def test_float_probabilities_become_exact(self):
        assert s.as_prob(0.25) == Fraction(1, 4)
        assert s.as_prob(0.1) == Fraction(1, 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            s.as_prob(1.5)
        with pytest.raises(ValueError):
            s.as_prob(-0.1)

    def test_booleans_rejected(self):
        with pytest.raises(TypeError):
            s.as_prob(True)


class TestSmartConstructors:
    def test_seq_flattens_and_drops_skip(self):
        p = s.seq(s.skip(), s.assign("f", 1), s.seq(s.assign("g", 2), s.skip()))
        assert isinstance(p, s.Seq)
        assert len(p.parts) == 2

    def test_seq_short_circuits_on_drop(self):
        assert s.seq(s.assign("f", 1), s.drop(), s.assign("g", 2)) == s.drop()

    def test_empty_seq_is_skip(self):
        assert s.seq() == s.skip()

    def test_union_of_predicates_is_disjunction(self):
        p = s.union(s.test("f", 1), s.test("f", 2))
        assert isinstance(p, s.Or)

    def test_union_drops_false(self):
        assert s.union(s.drop(), s.test("f", 1)) == s.test("f", 1)

    def test_conj_identity(self):
        assert s.conj() == s.skip()
        assert s.conj(s.test("f", 1)) == s.test("f", 1)

    def test_neg_involution(self):
        t = s.test("f", 1)
        assert s.neg(s.neg(t)) == t
        assert s.neg(s.skip()) == s.drop()
        assert s.neg(s.drop()) == s.skip()

    def test_choice_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            s.choice((s.skip(), 0.5), (s.drop(), 0.25))

    def test_choice_merges_identical_branches(self):
        p = s.choice((s.assign("f", 1), 0.5), (s.assign("f", 1), 0.5))
        assert p == s.assign("f", 1)

    def test_choice_removes_zero_probability_branches(self):
        p = s.choice((s.assign("f", 1), 1), (s.assign("f", 2), 0))
        assert p == s.assign("f", 1)

    def test_uniform(self):
        p = s.uniform(s.assign("f", 1), s.assign("f", 2))
        assert isinstance(p, s.Choice)
        assert all(prob == Fraction(1, 2) for _, prob in p.branches)

    def test_ite_simplifies_constant_guards(self):
        assert s.ite(s.skip(), s.assign("f", 1), s.drop()) == s.assign("f", 1)
        assert s.ite(s.drop(), s.assign("f", 1), s.drop()) == s.drop()

    def test_while_false_guard_is_skip(self):
        assert s.while_do(s.drop(), s.assign("f", 1)) == s.skip()

    def test_case_to_ite(self):
        c = s.case(
            [(s.test("sw", 1), s.assign("pt", 1)), (s.test("sw", 2), s.assign("pt", 2))],
            s.drop(),
        )
        expanded = s.case_to_ite(c)
        assert isinstance(expanded, s.IfThenElse)
        assert expanded.guard == s.test("sw", 1)

    def test_case_skips_false_guards(self):
        c = s.case([(s.drop(), s.assign("pt", 1))], s.skip())
        assert c == s.skip()

    def test_test_all_and_assign_all(self):
        assert isinstance(s.test_all({"sw": 1, "pt": 2}), s.And)
        assert isinstance(s.assign_all({"sw": 1, "pt": 2}), s.Seq)

    def test_operators(self):
        p = s.test("f", 1) >> s.assign("g", 2)
        assert isinstance(p, s.Seq)
        q = s.test("f", 1) | s.test("f", 2)
        assert isinstance(q, s.Or)
        assert isinstance(~s.test("f", 1), s.Not)
        assert isinstance(s.test("f", 1) & s.test("g", 1), s.And)


class TestStructuralHelpers:
    def test_fields_collects_tests_and_assignments(self):
        p = s.seq(s.test("sw", 1), s.assign("pt", 2))
        assert p.fields() == frozenset({"sw", "pt"})

    def test_field_values(self):
        p = s.seq(s.test("f", 1), s.assign("f", 2), s.test("g", 3))
        assert p.field_values() == {"f": frozenset({1, 2}), "g": frozenset({3})}

    def test_size_counts_nodes(self):
        p = s.ite(s.test("f", 1), s.assign("g", 2), s.drop())
        assert p.size() == 4

    def test_is_guarded(self):
        guarded = s.while_do(s.test("f", 0), s.assign("f", 1))
        assert guarded.is_guarded()
        assert not s.star(s.assign("f", 1)).is_guarded()
        assert not s.Union((s.assign("f", 1), s.assign("f", 2))).is_guarded()
        assert s.union(s.test("f", 1), s.test("f", 2)).is_guarded()

    def test_nodes_are_hashable_and_comparable(self):
        a = s.ite(s.test("f", 1), s.assign("g", 2), s.drop())
        b = s.ite(s.test("f", 1), s.assign("g", 2), s.drop())
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
