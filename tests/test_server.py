"""Tests for the streaming front end: admission coalescing
(``repro.service.coalesce``), the asyncio JSON-lines server
(``repro.service.server``), the pool autoscaler, and the CLI ``serve``
subcommand."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.analysis.queries import delivery_probability
from repro.network.model import build_model
from repro.routing import ecmp_policy
from repro.service import (
    AnalysisSession,
    BatchCoalescer,
    DeadlineExceeded,
    Overloaded,
    PoolAutoscaler,
    Query,
    QueryServer,
    ShuttingDown,
    StreamClient,
)
from repro.service.cli import serve_main
from repro.topology import edge_switches, fat_tree


def ecmp_model(topo, dest: int):
    return build_model(topo, routing=ecmp_policy(topo, dest), dest=dest)


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def models(topo):
    return {dest: ecmp_model(topo, dest) for dest in edge_switches(topo)[:2]}


@pytest.fixture(scope="module")
def all_pairs(models):
    return [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]


@pytest.fixture(scope="module")
def per_call_values(models, all_pairs):
    return [
        delivery_probability(models[query.dest], inputs=[query.ingress])
        for query in all_pairs
    ]


@pytest.fixture()
def session(models):
    with AnalysisSession(models=models.values(), workers=4, pool_size=2) as session:
        yield session


def wire(query: Query) -> dict:
    """The JSON-lines message for one query (the CLI batch-file shape)."""
    return {
        "kind": query.kind,
        "ingress": [query.ingress["sw"], query.ingress["pt"]],
        "dest": query.dest,
    }


# ---------------------------------------------------------------------------
# BatchCoalescer: the admission window, in-process
# ---------------------------------------------------------------------------
class TestCoalescer:
    def test_window_coalesces_across_submitters(self, session, all_pairs, per_call_values):
        """Concurrent single submissions within one window become one batch."""

        async def run():
            coalescer = BatchCoalescer(session, window=0.05)
            answers = await asyncio.gather(
                *[coalescer.submit(query) for query in all_pairs]
            )
            await coalescer.aclose()
            return answers, coalescer.stats()

        answers, stats = asyncio.run(run())
        assert stats["batches"] == 1
        assert stats["batch_mean"] == len(all_pairs)
        assert all(answer.batch == len(all_pairs) for answer in answers)
        for answer, expected in zip(answers, per_call_values):
            assert answer.value == pytest.approx(expected, abs=1e-9)

    def test_window_zero_disables_coalescing(self, session, all_pairs, per_call_values):
        async def run():
            coalescer = BatchCoalescer(session, window=0.0)
            answers = [await coalescer.submit(query) for query in all_pairs[:6]]
            await coalescer.aclose()
            return answers, coalescer.stats()

        answers, stats = asyncio.run(run())
        assert stats["batches"] == 6
        assert stats["batch_mean"] == 1.0
        assert all(answer.batch == 1 for answer in answers)
        for answer, expected in zip(answers, per_call_values):
            assert answer.value == pytest.approx(expected, abs=1e-9)

    def test_max_batch_dispatches_early(self, session, all_pairs):
        async def run():
            coalescer = BatchCoalescer(session, window=30.0, max_batch=4)
            answers = await asyncio.gather(
                *[coalescer.submit(query) for query in all_pairs[:8]]
            )
            await coalescer.aclose()
            return answers, coalescer.stats()

        answers, stats = asyncio.run(run())
        # A 30 s window never fires in-test: only the max_batch early
        # dispatch can have answered, in two full batches of four.
        assert stats["batches"] == 2
        assert all(answer.batch == 4 for answer in answers)

    def test_pre_expired_deadline_rejected_at_admission(self, session, all_pairs):
        async def run():
            coalescer = BatchCoalescer(session, window=0.05)
            with pytest.raises(DeadlineExceeded):
                await coalescer.submit(all_pairs[0], deadline=time.monotonic() - 1)
            await coalescer.aclose()
            return coalescer.stats()

        stats = asyncio.run(run())
        assert stats["deadline_exceeded"] == 1
        assert stats["outstanding"] == 0

    def test_deadline_expires_inside_window(self, session, all_pairs):
        """A deadline shorter than the window fails at dispatch, not silently."""

        async def run():
            coalescer = BatchCoalescer(session, window=0.2)
            doomed = coalescer.submit_nowait(
                all_pairs[0], deadline=time.monotonic() + 0.01
            )
            alive = coalescer.submit_nowait(all_pairs[1])
            with pytest.raises(DeadlineExceeded):
                await doomed
            answer = await alive
            await coalescer.aclose()
            return answer, coalescer.stats()

        answer, stats = asyncio.run(run())
        assert answer.batch == 1  # the doomed entry never reached dispatch
        assert stats["deadline_exceeded"] == 1
        assert stats["answered"] == 1
        assert stats["outstanding"] == 0

    def test_backpressure_bounds_outstanding(self, session, all_pairs):
        async def run():
            coalescer = BatchCoalescer(session, window=0.5, max_pending=2)
            first = coalescer.submit_nowait(all_pairs[0])
            second = coalescer.submit_nowait(all_pairs[1])
            with pytest.raises(Overloaded) as excinfo:
                coalescer.submit_nowait(all_pairs[2])
            assert excinfo.value.retryable
            await coalescer.aclose()  # flushes and answers the two admitted
            return await first, await second, coalescer.stats()

        first, second, stats = asyncio.run(run())
        assert first.batch == second.batch == 2
        assert stats["overloaded"] == 1
        assert stats["outstanding"] == 0

    def test_poisoned_batch_is_isolated(self, session, all_pairs, per_call_values):
        """One unknown-destination query must not take down its window."""
        poison = Query.delivery((1, 1), 99)  # dest 99: no model, no factory

        async def run():
            coalescer = BatchCoalescer(session, window=0.05)
            good = [coalescer.submit_nowait(query) for query in all_pairs[:3]]
            bad = coalescer.submit_nowait(poison)
            answers = await asyncio.gather(*good)
            with pytest.raises(KeyError, match="99"):
                await bad
            await coalescer.aclose()
            return answers, coalescer.stats()

        answers, stats = asyncio.run(run())
        assert stats["isolation_retries"] == 1
        assert stats["outstanding"] == 0
        for answer, expected in zip(answers, per_call_values):
            assert answer.value == pytest.approx(expected, abs=1e-9)
            assert answer.batch == 1  # answered by the per-query retry pass

    def test_aclose_drains_then_refuses(self, session, all_pairs):
        async def run():
            coalescer = BatchCoalescer(session, window=5.0)
            pending = [coalescer.submit_nowait(query) for query in all_pairs[:4]]
            await coalescer.aclose()  # flushes the un-fired 5 s window
            answers = [await future for future in pending]
            with pytest.raises(ShuttingDown):
                coalescer.submit_nowait(all_pairs[0])
            return answers

        answers = asyncio.run(run())
        assert len(answers) == 4
        assert all(answer.batch == 4 for answer in answers)


# ---------------------------------------------------------------------------
# QueryServer over TCP, thread- and process-hosted pools
# ---------------------------------------------------------------------------
class TestServer:
    @pytest.mark.parametrize("pool_mode", ["thread", "process"])
    def test_concurrent_clients_agree_with_per_call(
        self, models, all_pairs, per_call_values, pool_mode
    ):
        """Streamed queries from many clients match ``repro.analysis``
        per-call results within 1e-9, and coalesce across clients."""
        n_clients = 4

        async def client(port, share):
            conn = await StreamClient.connect("127.0.0.1", port)
            replies = await asyncio.gather(
                *[conn.request(wire(query)) for query in share]
            )
            await conn.aclose()
            return replies

        async def run(session):
            async with QueryServer(session, window=0.05) as server:
                shares = [all_pairs[i::n_clients] for i in range(n_clients)]
                return await asyncio.gather(
                    *[client(server.port, share) for share in shares]
                )

        with AnalysisSession(
            models=models.values(), workers=4, pool_size=2, pool_mode=pool_mode
        ) as session:
            outcomes = asyncio.run(run(session))

        expected = {
            id(query): value for query, value in zip(all_pairs, per_call_values)
        }
        batched = []
        for share, replies in zip(
            [all_pairs[i::n_clients] for i in range(n_clients)], outcomes
        ):
            for query, reply in zip(share, replies):
                assert "error" not in reply, reply
                assert reply["value"] == pytest.approx(
                    expected[id(query)], abs=1e-9
                )
                batched.append(reply["batched"])
        # Cross-client coalescing: replies carry multi-query batch sizes.
        assert max(batched) > 1

    def test_deadline_backpressure_and_bad_request(self, session, all_pairs):
        async def run():
            async with QueryServer(
                session, window=0.3, max_pending=3
            ) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                first = await conn.send(wire(all_pairs[0]))
                second = await conn.send(wire(all_pairs[1]))
                # Deadline: admitted, but expires inside the long window.
                doomed = await conn.send({**wire(all_pairs[3]), "deadline_ms": 1})
                # Backpressure: the fourth in-window query overflows
                # max_pending and is refused with a retryable error.
                overloaded = await conn.request(wire(all_pairs[2]))
                assert overloaded["error"]["code"] == "overloaded"
                assert overloaded["error"]["retry"] is True
                # Bad requests answer immediately, before the window fires.
                missing = await conn.request({"kind": "delivery", "dest": 1})
                assert missing["error"]["code"] == "bad-request"
                unknown_op = await conn.request({"op": "nope"})
                assert unknown_op["error"]["code"] == "bad-request"
                replies = await asyncio.gather(first, second, doomed)
                await conn.aclose()
                return replies

        first, second, doomed = asyncio.run(run())
        assert "error" not in first and "error" not in second
        assert doomed["error"]["code"] == "deadline-exceeded"
        assert doomed["error"]["retry"] is False

    def test_ping_and_stats_ops(self, session, all_pairs):
        async def run():
            async with QueryServer(session, window=0.01) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                pong = await conn.request({"op": "ping"})
                await conn.request(wire(all_pairs[0]))
                stats = (await conn.request({"op": "stats"}))["stats"]
                await conn.aclose()
                return pong, stats

        pong, stats = asyncio.run(run())
        assert pong["pong"] is True
        assert stats["queries_answered"] >= 1
        assert stats["coalescer"]["answered"] >= 1
        assert stats["pool"]["mode"] == "thread"
        assert stats["autoscaler"] is None

    def test_midstream_shutdown_drains_inflight_replies(self, models, all_pairs):
        """stop() during an open admission window loses no admitted query."""

        async def run(session):
            server = QueryServer(session, window=5.0, owns_session=True)
            await server.start()
            conn = await StreamClient.connect("127.0.0.1", server.port)
            # Admitted into a 5 s window that will never fire on its own:
            # only the shutdown drain can flush and answer these.
            pending = [await conn.send(wire(query)) for query in all_pairs[:6]]
            await asyncio.sleep(0.05)  # let the server read every line
            await server.stop()
            replies = await asyncio.gather(*pending)
            # The drained connection is closed once its replies are out:
            # a later request fails loudly instead of hanging forever.
            with pytest.raises(ConnectionError):
                await conn.request(wire(all_pairs[6]))
            await conn.aclose()
            return replies

        session = AnalysisSession(models=models.values(), workers=2, pool_size=1)
        replies = asyncio.run(run(session))
        assert session._closed  # owns_session: drained, then closed
        for reply in replies:
            assert "error" not in reply, reply
            assert reply["batched"] == 6

    def test_stop_is_idempotent_and_unowned_session_survives(self, session):
        async def run():
            server = QueryServer(session, window=0.01)
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(run())
        assert not session._closed


# ---------------------------------------------------------------------------
# PoolAutoscaler: sizing decisions and end-to-end resizing
# ---------------------------------------------------------------------------
class TestAutoscaler:
    def make(self, session, **kwargs):
        kwargs.setdefault("min_size", 1)
        kwargs.setdefault("max_size", 4)
        kwargs.setdefault("target_depth", 10)
        kwargs.setdefault("patience", 2)
        return PoolAutoscaler(session, lambda: 0, **kwargs)

    def test_grow_is_immediate_shrink_needs_patience(self, models):
        with AnalysisSession(
            models=models.values(), workers=4, pool_size=1
        ) as session:
            scaler = self.make(session)
            # Depth 35 over target 10 -> ceil = 4 replicas, immediately.
            assert scaler.plan(35) == 4
            session.resize_pool(4)
            # Depth back to 0 wants 1, but only after `patience` votes.
            assert scaler.plan(0) is None
            assert scaler.plan(0) == 1
            session.resize_pool(1)
            # A grow burst resets the shrink hysteresis.
            session.resize_pool(2)
            assert scaler.plan(0) is None
            assert scaler.plan(25) == 3  # grow interrupts the shrink streak
            session.resize_pool(3)
            assert scaler.plan(0) is None  # the streak starts over
            assert scaler.plan(0) == 1

    def test_plan_clamps_to_bounds(self, models):
        with AnalysisSession(
            models=models.values(), workers=4, pool_size=2
        ) as session:
            scaler = self.make(session, min_size=2, max_size=3)
            assert scaler.plan(1000) == 3  # clamped to the ceiling
            session.resize_pool(3)
            assert scaler.plan(0) is None
            assert scaler.plan(0) == 2  # clamped to the floor, not min 1
            assert scaler.plan(25) is None  # desired == current size: no-op

    def test_validation(self, models):
        with AnalysisSession(models=models.values(), workers=1) as session:
            with pytest.raises(ValueError, match="min_size"):
                PoolAutoscaler(session, lambda: 0, min_size=0)
            with pytest.raises(ValueError, match="target_depth"):
                PoolAutoscaler(session, lambda: 0, target_depth=0)
            with pytest.raises(ValueError, match="patience"):
                PoolAutoscaler(session, lambda: 0, patience=0)

    def test_autoscaler_grows_pool_under_load(self, models, all_pairs):
        """End to end: queue depth grows the pool through the event loop."""

        async def run(session):
            server = QueryServer(
                session,
                window=0.15,
                autoscale_max=3,
                autoscale_target=4,
                autoscale_interval=0.02,
            )
            await server.start()
            conn = await StreamClient.connect("127.0.0.1", server.port)
            # Hold >= 2*target queries inside the long admission window so
            # several autoscaler observations see the queue depth.
            pending = [await conn.send(wire(query)) for query in all_pairs[:12]]
            await asyncio.sleep(0.1)
            grown_size = session.pool_size
            replies = await asyncio.gather(*pending)
            await conn.aclose()
            await server.stop()
            return grown_size, replies, server.autoscaler.stats()

        with AnalysisSession(
            models=models.values(), workers=4, pool_size=1
        ) as session:
            grown_size, replies, stats = asyncio.run(run(session))
        assert grown_size == 3  # ceil(12 / 4) = 3, clamped by autoscale_max
        assert stats["grow_events"] >= 1
        assert all("error" not in reply for reply in replies)


# ---------------------------------------------------------------------------
# CLI: python -m repro.service serve
# ---------------------------------------------------------------------------
class TestServeCommand:
    def test_serve_end_to_end(self, capsys):
        holder: dict[str, object] = {}
        ready = threading.Event()

        def started(server):
            holder["server"] = server
            ready.set()

        thread = threading.Thread(
            target=serve_main,
            args=(
                [
                    "--topology",
                    "fattree:4",
                    "--dest",
                    "1",
                    "--pool-size",
                    "2",
                    "--window-ms",
                    "10",
                    "--deadline-ms",
                    "30000",
                ],
                started,
            ),
        )
        thread.start()
        try:
            assert ready.wait(timeout=60), "serve did not start"
            server = holder["server"]

            async def drive():
                conn = await StreamClient.connect("127.0.0.1", server.port)
                topo = fat_tree(4)
                queries = [
                    {"ingress": [sw, pt], "dest": 1}
                    for sw, pt in topo.ingress_locations(exclude=[1])
                ]
                replies = await asyncio.gather(
                    *[conn.request(message) for message in queries]
                )
                await conn.aclose()
                return replies

            replies = asyncio.run(drive())
            assert all("error" not in reply for reply in replies)
            assert all(0.0 <= reply["value"] <= 1.0 for reply in replies)
            assert max(reply["batched"] for reply in replies) > 1
        finally:
            holder["server"].request_stop()
            thread.join(timeout=60)
        assert not thread.is_alive()

    def test_serve_flag_validation(self):
        with pytest.raises(SystemExit):
            serve_main(["--window-ms", "-1"])
        with pytest.raises(SystemExit):
            serve_main(["--pool-size", "2", "--autoscale-max", "1"])

    def test_main_dispatches_serve(self, monkeypatch):
        from repro.service import cli

        seen: dict[str, object] = {}

        def fake_serve_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(cli, "serve_main", fake_serve_main)
        assert cli.main(["serve", "--port", "7"]) == 0
        assert seen["argv"] == ["--port", "7"]


# ---------------------------------------------------------------------------
# Session async surface
# ---------------------------------------------------------------------------
class TestAsyncSubmission:
    def test_submit_batch_returns_future(self, session, all_pairs, per_call_values):
        handle = session.submit_batch(all_pairs[:4])
        results = handle.result(timeout=60)
        for result, expected in zip(results.results, per_call_values):
            assert result.value == pytest.approx(expected, abs=1e-9)

    def test_query_batch_async(self, session, all_pairs, per_call_values):
        async def run():
            return await session.query_batch_async(all_pairs[:4])

        results = asyncio.run(run())
        for result, expected in zip(results.results, per_call_values):
            assert result.value == pytest.approx(expected, abs=1e-9)

    def test_submit_batch_on_closed_session_raises(self, models):
        session = AnalysisSession(models=models.values(), workers=1)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit_batch([])


# ---------------------------------------------------------------------------
# Replica-failure classification and client-side retry backoff
# ---------------------------------------------------------------------------
class TestFailureClassification:
    def test_replica_failures_classify_retryable(self):
        from repro.service.coalesce import Unavailable, classify_failure
        from repro.service.pool import PoolUnavailable, ReplicaFailure

        for error in (
            ReplicaFailure("worker 1 (pid 7) died while serving 'query'"),
            PoolUnavailable("shard failed on 2 replica(s); retries exhausted"),
        ):
            mapped = classify_failure(error)
            assert isinstance(mapped, Unavailable)
            assert mapped.retryable is True
            assert mapped.code == "unavailable"
            assert mapped.__cause__ is error
        # Semantic failures pass through untouched: retrying cannot help.
        semantic = KeyError("99")
        assert classify_failure(semantic) is semantic

    def test_pool_failure_fails_batch_retryable(self, session, all_pairs, monkeypatch):
        """A poisoned batch whose cause is the *pool* (not a query) fails
        every entry with the retryable Unavailable, not a terminal error."""
        from repro.service import Unavailable
        from repro.service.pool import PoolUnavailable

        def doomed(*args, **kwargs):
            raise PoolUnavailable("all replicas dead")

        monkeypatch.setattr(session, "query_batch", doomed)

        async def run():
            coalescer = BatchCoalescer(session, window=0.01)
            with pytest.raises(Unavailable) as excinfo:
                await coalescer.submit(all_pairs[0])
            await coalescer.aclose()
            return excinfo.value, coalescer.stats()

        error, stats = asyncio.run(run())
        assert error.retryable is True
        assert stats["unavailable"] == 1
        assert stats["outstanding"] == 0

    def test_server_maps_pool_failure_to_unavailable_wire_error(
        self, session, all_pairs, monkeypatch
    ):
        from repro.service.pool import PoolUnavailable

        def doomed(*args, **kwargs):
            raise PoolUnavailable("pool is healing")

        monkeypatch.setattr(session, "query_batch", doomed)

        async def run():
            async with QueryServer(session, window=0.01) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                reply = await conn.request(wire(all_pairs[0]))
                await conn.aclose()
                return reply

        reply = asyncio.run(run())
        assert reply["error"]["code"] == "unavailable"
        assert reply["error"]["retry"] is True

    def test_stats_expose_supervision_counters(self, session):
        async def run():
            async with QueryServer(session, window=0.01) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                stats = (await conn.request({"op": "stats"}))["stats"]
                await conn.aclose()
                return stats

        stats = asyncio.run(run())
        assert stats["pool"]["failures"] == 0
        assert stats["pool"]["restarts"] == 0
        assert stats["pool"]["health"] == ["healthy", "healthy"]
        assert stats["retried_shards"] == 0


class TestClientBackoff:
    """StreamClient.request(retries=...) against a scripted fake server."""

    @staticmethod
    def _scripted_server(script):
        """An asyncio JSON-lines server answering per the scripted replies.

        ``script`` maps the 1-based attempt number to either the string
        ``"ok"`` (answer with a value) or an error code (answer with that
        wire error).  Later attempts reuse the last entry.
        """
        import json

        from repro.service.wire import error_payload

        attempts: list[dict] = []

        async def handle(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = json.loads(line)
                attempts.append(message)
                action = script[min(len(attempts), len(script)) - 1]
                if action == "ok":
                    body = {"id": message["id"], "value": 1.0}
                else:
                    body = {
                        "id": message["id"],
                        "error": error_payload(action, f"scripted {action}"),
                    }
                writer.write(json.dumps(body).encode("utf-8") + b"\n")
                await writer.drain()
            writer.close()

        return handle, attempts

    def _drive(self, script, retries):
        async def run():
            handle, attempts = self._scripted_server(script)
            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            conn = await StreamClient.connect("127.0.0.1", port)
            reply = await conn.request(
                {"kind": "delivery"}, retries=retries, backoff=0.001
            )
            client_retries = conn.retries
            await conn.aclose()
            server.close()
            await server.wait_closed()
            return reply, client_retries, attempts

        return asyncio.run(run())

    def test_retryable_errors_resent_until_success(self):
        reply, retries, attempts = self._drive(
            ["unavailable", "overloaded", "ok"], retries=5
        )
        assert reply["value"] == 1.0
        assert retries == 2
        assert len(attempts) == 3
        # Every attempt is a fresh request with its own correlation id.
        assert len({message["id"] for message in attempts}) == 3

    def test_retries_exhausted_returns_last_error(self):
        reply, retries, attempts = self._drive(["unavailable"], retries=2)
        assert reply["error"]["code"] == "unavailable"
        assert retries == 2
        assert len(attempts) == 3

    def test_terminal_errors_are_not_retried(self):
        reply, retries, attempts = self._drive(["bad-request"], retries=5)
        assert reply["error"]["code"] == "bad-request"
        assert retries == 0
        assert len(attempts) == 1


# ---------------------------------------------------------------------------
# Line limits: large requests served, oversize refused in-protocol
# ---------------------------------------------------------------------------
class TestLineLimits:
    def test_request_line_over_64k_is_served(
        self, session, all_pairs, per_call_values
    ):
        """Regression: a >64 KiB request line must be served, not dropped.

        asyncio's default StreamReader limit is 64 KiB and ``readline``
        *raises* past it, which used to kill the connection for any
        large-but-valid line; the server now raises the stream limit to
        ``max_line_bytes`` (default 1 MiB).
        """
        message = wire(all_pairs[0])
        message["pad"] = "x" * (128 * 1024)  # ignored extra field
        assert len(str(message)) > 64 * 1024

        async def run():
            async with QueryServer(session, window=0.0) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                reply = await conn.request(message)
                await conn.aclose()
                return reply

        reply = asyncio.run(run())
        assert "error" not in reply
        assert reply["value"] == pytest.approx(per_call_values[0], abs=1e-9)

    def test_oversize_line_refused_without_dropping_connection(
        self, session, all_pairs, per_call_values
    ):
        """Past ``max_line_bytes`` the server answers a non-retryable
        ``too-large`` error and keeps serving the same connection."""
        import json

        query = wire(all_pairs[0])

        async def run():
            async with QueryServer(
                session, window=0.0, max_line_bytes=4096
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                big = dict(query, id=1, pad="x" * (64 * 1024))
                writer.write(json.dumps(big).encode() + b"\n")
                await writer.drain()
                refused = json.loads(await reader.readline())
                # The same connection still serves ordinary queries.
                writer.write(json.dumps(dict(query, id=2)).encode() + b"\n")
                await writer.drain()
                served = json.loads(await reader.readline())
                stats = server.stats()
                writer.close()
                await writer.wait_closed()
                return refused, served, stats

        refused, served, stats = asyncio.run(run())
        assert refused["error"]["code"] == "too-large"
        assert refused["error"]["retry"] is False
        assert served["id"] == 2
        assert served["value"] == pytest.approx(per_call_values[0], abs=1e-9)
        assert stats["oversize_refused"] == 1

    def test_max_line_bytes_is_validated(self, session):
        with pytest.raises(ValueError, match="max_line_bytes"):
            QueryServer(session, max_line_bytes=100)
