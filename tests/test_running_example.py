"""Integration tests: the §2 running example, end to end.

These tests check exactly the claims made in the paper's overview:

* without failures both schemes are equivalent to teleportation;
* the resilient scheme is 1-resilient (equivalent to teleportation under
  ``f1``) while the naive scheme is not;
* under ``f2`` the naive scheme delivers 80% of packets and the resilient
  scheme 96%, and the naive scheme strictly refines the resilient one.
"""

from fractions import Fraction

import pytest

from repro.core import sugar
from repro.core.equivalence import fdd_equivalent, output_equivalent, strictly_refines
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP
from repro.network import running_example as ex


@pytest.fixture(scope="module")
def bundle():
    return ex.build()


@pytest.fixture(scope="module")
def teleport_spec():
    return sugar.locals_in([("up2", 1), ("up3", 1)], ex.teleport())


def delivery(model, packet):
    out = Interpreter(exact=True).run_packet(model, packet)
    return out.prob_of(lambda o: o is not DROP and o.get("sw") == 2 and o.get("pt") == 2)


class TestWithoutFailures:
    def test_both_schemes_equal_teleport(self, bundle, teleport_spec):
        assert output_equivalent(
            bundle.models_naive["f0"], teleport_spec, [bundle.ingress_packet], exact=True
        )
        assert output_equivalent(
            bundle.models_resilient["f0"], teleport_spec, [bundle.ingress_packet], exact=True
        )

    def test_full_fdd_equivalence_without_failures(self, bundle, teleport_spec):
        assert fdd_equivalent(bundle.models_naive["f0"], teleport_spec, exact=True)


class TestOneFailure:
    def test_resilient_scheme_is_1_resilient(self, bundle, teleport_spec):
        assert output_equivalent(
            bundle.models_resilient["f1"], teleport_spec, [bundle.ingress_packet], exact=True
        )
        assert fdd_equivalent(bundle.models_resilient["f1"], teleport_spec, exact=True)

    def test_naive_scheme_is_not_1_resilient(self, bundle, teleport_spec):
        assert not output_equivalent(
            bundle.models_naive["f1"], teleport_spec, [bundle.ingress_packet], exact=True
        )
        assert delivery(bundle.models_naive["f1"], bundle.ingress_packet) == Fraction(3, 4)


class TestTwoFailures:
    def test_naive_delivers_80_percent(self, bundle):
        assert delivery(bundle.models_naive["f2"], bundle.ingress_packet) == Fraction(4, 5)

    def test_resilient_delivers_96_percent(self, bundle):
        assert delivery(bundle.models_resilient["f2"], bundle.ingress_packet) == Fraction(24, 25)

    def test_naive_strictly_refines_resilient(self, bundle):
        assert strictly_refines(
            bundle.models_naive["f2"],
            bundle.models_resilient["f2"],
            [bundle.ingress_packet],
            exact=True,
        )

    def test_resilient_not_equivalent_to_teleport(self, bundle, teleport_spec):
        assert not output_equivalent(
            bundle.models_resilient["f2"], teleport_spec, [bundle.ingress_packet], exact=True
        )


class TestStructuralChecks:
    def test_certain_outcomes_under_f0(self, bundle):
        interp = Interpreter()
        outcomes, diverge = interp.certain_outcomes(
            bundle.models_resilient["f0"], bundle.ingress_packet
        )
        assert not diverge
        assert all(o is not DROP and o["sw"] == 2 for o in outcomes)

    def test_naive_scheme_can_drop_under_f1(self, bundle):
        interp = Interpreter()
        outcomes, _ = interp.certain_outcomes(
            bundle.models_naive["f1"], bundle.ingress_packet
        )
        assert DROP in outcomes
